"""Benchmarks regenerating Fig. 3 — Metis vs the optima on SUB-B4.

Panels: 3a service profit, 3b accepted requests, 3c link utilization.
Shape under test (paper §V-B.1): OPT(SPM) >= Metis and OPT(SPM) >=
OPT(RL-SPM) in profit; OPT(RL-SPM) accepts everything while the
profit-aware solutions decline; OPT(SPM) runs at higher average
utilization than OPT(RL-SPM).
"""

import math

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig3 import run_fig3
from repro.workload.value_models import FlatRateValueModel


def fig3_config(request_counts=(30, 60)):
    return ExperimentConfig(
        topology="sub-b4",
        request_counts=request_counts,
        theta=15,
        maa_rounds=3,
        time_limit=300.0,
        value_model=FlatRateValueModel(0.6),
    )


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(fig3_config())


def by_solution(result, num_requests):
    return {
        row[1]: row
        for row in result.filtered(requests=num_requests)
        if not math.isnan(row[2])
    }


def test_fig3a_profit(benchmark, fig3_result):
    """Fig. 3a: profit ordering OPT(SPM) >= {Metis, OPT(RL-SPM)}."""
    result = benchmark.pedantic(
        lambda: run_fig3(fig3_config(request_counts=(30,))),
        rounds=1,
        iterations=1,
    )
    print("\n" + fig3_result.to_table())
    for num_requests in (30, 60):
        rows = by_solution(fig3_result, num_requests)
        assert rows["OPT(SPM)"][2] >= rows["Metis"][2] - 1e-6
        assert rows["OPT(SPM)"][2] >= rows["OPT(RL-SPM)"][2] - 1e-6
    assert result.rows, "benchmarked run produced rows"


def test_fig3b_accepted_requests(benchmark, fig3_result):
    """Fig. 3b: OPT(RL-SPM) accepts all; profit-aware solutions may decline."""

    def check():
        for num_requests in (30, 60):
            rows = by_solution(fig3_result, num_requests)
            assert rows["OPT(RL-SPM)"][3] == num_requests
            assert rows["Metis"][3] <= num_requests
            assert rows["OPT(SPM)"][3] <= num_requests
        return True

    assert benchmark(check)


def test_fig3c_link_utilization(benchmark, fig3_result):
    """Fig. 3c: OPT(SPM) runs hotter than accept-everything OPT(RL-SPM)."""

    def check():
        for num_requests in (30, 60):
            rows = by_solution(fig3_result, num_requests)
            util_opt = rows["OPT(SPM)"][8]
            util_rl = rows["OPT(RL-SPM)"][8]
            assert util_opt >= util_rl - 0.05, (
                f"K={num_requests}: OPT(SPM) mean utilization {util_opt:.3f} "
                f"should not trail OPT(RL-SPM) {util_rl:.3f}"
            )
        return True

    assert benchmark(check)
