"""Benchmarks regenerating Fig. 5 — Metis vs EcoFlow on B4.

Panels: 5a service profit, 5b accepted requests, 5c average link
utilization.  Shape under test (paper §V-B.3): Metis matches or beats the
greedy at moderate load and clearly beats it at scale; EcoFlow accepts far
fewer requests; Metis runs the purchased links hotter.
"""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig5 import run_fig5


@pytest.fixture(scope="module")
def fig5_result():
    cfg = ExperimentConfig(
        topology="b4", request_counts=(150, 300), theta=20, maa_rounds=3
    )
    return run_fig5(cfg)


def test_fig5a_service_profit(benchmark, fig5_result):
    """Fig. 5a: Metis' profit beats EcoFlow at scale."""

    def check():
        last = fig5_result.rows[-1]
        metis_profit, eco_profit = last[1], last[2]
        assert metis_profit >= eco_profit - 1e-6, (
            f"Metis {metis_profit:.2f} should beat EcoFlow {eco_profit:.2f} "
            "at the loaded end of the sweep"
        )
        return metis_profit / max(eco_profit, 1e-9)

    ratio = benchmark(check)
    print("\n" + fig5_result.to_table())
    print(f"profit ratio Metis/EcoFlow at peak K: {ratio:.3f}")


def test_fig5b_accepted_requests(benchmark, fig5_result):
    """Fig. 5b: EcoFlow's myopic greedy declines far more requests."""

    def check():
        for row in fig5_result.rows:
            assert row[3] >= row[4], (
                f"K={row[0]}: Metis accepted {row[3]} vs EcoFlow {row[4]}"
            )
        last = fig5_result.rows[-1]
        return last[4] / max(last[3], 1)

    eco_share = benchmark(check)
    assert eco_share < 0.9, "EcoFlow accepts a clearly smaller share at scale"


def test_fig5c_average_utilization(benchmark, fig5_result):
    """Fig. 5c: Metis uses its purchased bandwidth more fully."""

    def check():
        last = fig5_result.rows[-1]
        metis_util, eco_util = last[5], last[6]
        assert metis_util >= eco_util - 0.05
        return metis_util, eco_util

    metis_util, eco_util = benchmark(check)
    print(f"\nmean utilization at peak K: Metis={metis_util:.3f} EcoFlow={eco_util:.3f}")
