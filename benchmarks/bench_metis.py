"""Benchmark of the array-native Metis hot loop.

Pins the speedups of the per-instance formulation compiler, the
vectorized pessimistic-estimator kernel, and the zero-copy ``restrict``
over their expression-layer / reference counterparts, and times one
end-to-end ``Metis.solve`` on the fast path.  Every timed comparison
first asserts the fast path is *bitwise identical* to the reference (the
property the fuzz suite checks at small scale, re-checked here at
benchmark scale).

Set ``REPRO_BENCH_SMOKE=1`` to run a shrunken configuration (CI smoke):
same equivalence assertions, relaxed speedup floors.
"""

import math
import os
import time

import numpy as np
import pytest

from repro.core.fastform import FormulationCompiler
from repro.core.formulations import build_bl_spm, build_rl_spm
from repro.core.instance import SPMInstance
from repro.core.metis import Metis
from repro.core.taa import _build_estimator, _build_estimator_fast
from repro.experiments.common import ExperimentConfig, make_instance
from repro.lp.solvers import solve_compiled_raw

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_NUM_REQUESTS = 30 if _SMOKE else 200

_CFG = ExperimentConfig(
    topology="sub-b4" if _SMOKE else "b4",
    request_counts=(_NUM_REQUESTS,),
    time_limit=240.0,
)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CFG, _NUM_REQUESTS)


@pytest.fixture(scope="module")
def capacities(instance):
    """Charged bandwidth of the accept-everything schedule (Metis round 0)."""
    from repro.core.maa import solve_maa

    return {
        key: int(units)
        for key, units in solve_maa(instance, rng=0).schedule.charged.items()
    }


def best_of(fn, rounds):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_formulation_compile_speedup(benchmark, instance, capacities):
    """RL-SPM + BL-SPM assembly: compiler vs expression layer, from cold.

    One round = a fresh :class:`FormulationCompiler` (no structure cache)
    assembling both relaxations, against the expression layer building and
    compiling the same two models.  The floor is 5x at K=200 on B4 (2x in
    smoke mode, where tiny models shrink the expression path's per-term
    disadvantage); the warm-cache numbers — what Metis rounds 2..theta
    actually pay — are printed alongside.
    """
    ref_rl = build_rl_spm(instance).model.compile()
    ref_bl = build_bl_spm(instance, capacities).model.compile()
    compiler = FormulationCompiler(instance)
    fast_rl = compiler.compile_rl_spm(instance).compiled
    fast_bl = compiler.compile_bl_spm(instance, capacities).compiled
    for ref, fast in ((ref_rl, fast_rl), (ref_bl, fast_bl)):
        ref_a = ref.a_matrix.tocsr()
        ref_a.sum_duplicates()
        assert ref.c.tobytes() == fast.c.tobytes()
        assert ref.row_upper.tobytes() == fast.row_upper.tobytes()
        assert ref_a.data.tobytes() == fast.a_matrix.data.tobytes()
        assert np.array_equal(ref_a.indices, fast.a_matrix.indices)

    def assemble_expr():
        build_rl_spm(instance).model.compile()
        build_bl_spm(instance, capacities).model.compile()

    def assemble_cold():
        fresh = FormulationCompiler(instance)
        fresh.compile_rl_spm(instance)
        fresh.compile_bl_spm(instance, capacities)

    def assemble_warm():
        compiler.compile_rl_spm(instance)
        compiler.compile_bl_spm(instance, capacities)

    rounds = 3 if _SMOKE else 5
    assemble_expr(), assemble_cold(), assemble_warm()  # warm-up
    t_expr = best_of(assemble_expr, rounds)
    t_cold = best_of(assemble_cold, rounds)
    t_warm = best_of(assemble_warm, rounds)
    benchmark.pedantic(assemble_cold, rounds=rounds, iterations=1)

    speedup = t_expr / t_cold
    print(
        f"\nRL+BL assembly at K={_NUM_REQUESTS}: expression {t_expr * 1e3:.1f} ms, "
        f"compiler cold {t_cold * 1e3:.2f} ms ({speedup:.0f}x), "
        f"warm {t_warm * 1e3:.3f} ms ({t_expr / t_warm:.0f}x)"
    )
    floor = 2.0 if _SMOKE else 5.0
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = floor
    assert speedup >= floor, (
        f"compiler assembled only {speedup:.1f}x faster than the expression "
        f"path (floor {floor}x)"
    )


def test_estimator_speedup(benchmark, instance, capacities):
    """Estimator build + walk: vectorized kernel vs the reference.

    Same LP weights and tilt parameters feed both builders; the kernel's
    ``initial_log_value``/``walk`` must match the reference exactly (the
    bitwise contract) and run at least 3x faster end to end at K=200 on
    B4 (1.5x in smoke mode).
    """
    formulation = instance.formulation_compiler().compile_bl_spm(
        instance, capacities
    )
    raw = solve_compiled_raw(formulation.compiled, time_limit=_CFG.time_limit)
    weights = FormulationCompiler.weights_from_raw(formulation, raw.x)
    requests = instance.requests.requests
    kwargs = dict(
        mu=0.5,
        t0=0.7,
        t_cap=math.log(2.0),
        rate_max=max(r.rate for r in requests),
        value_max=max(r.value for r in requests),
        revenue_floor_norm=0.3,
    )

    ref = _build_estimator(instance, weights, capacities, **kwargs)
    fast = _build_estimator_fast(
        instance, weights, capacities, formulation=formulation, **kwargs
    )
    assert ref.log_phi.tobytes() == fast.log_phi.tobytes()
    assert ref.initial_log_value() == fast.initial_log_value()
    ref_choices, ref_final = ref.walk()
    fast_choices, fast_final = fast.walk()
    assert ref_choices == fast_choices
    assert ref_final == fast_final

    def run_ref():
        est = _build_estimator(instance, weights, capacities, **kwargs)
        est.initial_log_value()
        est.walk()

    def run_fast():
        est = _build_estimator_fast(
            instance, weights, capacities, formulation=formulation, **kwargs
        )
        est.initial_log_value()
        est.walk()

    rounds = 3 if _SMOKE else 5
    run_ref(), run_fast()  # warm-up
    t_ref = best_of(run_ref, rounds)
    t_fast = best_of(run_fast, rounds)
    benchmark.pedantic(run_fast, rounds=rounds, iterations=1)

    speedup = t_ref / t_fast
    print(
        f"\nestimator build+walk at K={_NUM_REQUESTS}: reference "
        f"{t_ref * 1e3:.1f} ms, vectorized {t_fast * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x"
    )
    floor = 1.5 if _SMOKE else 3.0
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = floor
    assert speedup >= floor, (
        f"vectorized estimator ran only {speedup:.1f}x faster than the "
        f"reference (floor {floor}x)"
    )


def test_restrict_speedup(benchmark, instance):
    """Zero-copy ``restrict`` vs rebuilding the instance from scratch."""
    half = instance.requests.request_ids[::2]
    child = instance.restrict(half)
    assert child.edges is instance.edges
    assert child.prices is instance.prices

    def restrict_scratch():
        SPMInstance(
            instance.topology,
            instance.requests.subset(half),
            {rid: instance.paths[rid] for rid in half},
        )

    def restrict_fast():
        instance.restrict(half)

    rounds = 5 if _SMOKE else 10
    restrict_scratch(), restrict_fast()  # warm-up
    t_scratch = best_of(restrict_scratch, rounds)
    t_fast = best_of(restrict_fast, rounds)
    benchmark.pedantic(restrict_fast, rounds=rounds, iterations=1)

    speedup = t_scratch / t_fast
    print(
        f"\nrestrict to {len(half)} requests: scratch {t_scratch * 1e6:.0f} us, "
        f"zero-copy {t_fast * 1e6:.1f} us, speedup {speedup:.0f}x"
    )
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = 3.0
    assert speedup >= 3.0, (
        f"zero-copy restrict only {speedup:.1f}x faster than a scratch "
        f"rebuild (floor 3x)"
    )


def test_metis_end_to_end(benchmark, instance):
    """One full alternation at benchmark scale: warm-start row vs PR 4 cold.

    ``Metis(warm_start=True)`` (resolve sessions + incremental local
    search, see :mod:`repro.lp.warmstart`) must match the cold fast path
    bitwise and beat it by >= 1.5x end to end at K=200 (reported, not
    enforced, in smoke mode).
    """
    theta = 3 if _SMOKE else 5
    outcome = benchmark.pedantic(
        lambda: Metis(theta=theta, fast_path=True, warm_start=True).solve(
            instance, rng=7
        ),
        rounds=1,
        iterations=1,
    )
    assert outcome.best.profit >= 0.0
    assert outcome.best.profit >= outcome.initial_profit
    cold = Metis(theta=theta, fast_path=True, warm_start=False).solve(
        instance, rng=7
    )
    assert outcome.best.profit == cold.best.profit
    assert outcome.num_rounds == cold.num_rounds
    if cold.best.schedule is not None:
        assert (
            outcome.best.schedule.assignment == cold.best.schedule.assignment
        )

    rounds = 2
    t_cold = best_of(
        lambda: Metis(theta=theta, warm_start=False).solve(instance, rng=7),
        rounds,
    )
    t_warm = best_of(
        lambda: Metis(theta=theta, warm_start=True).solve(instance, rng=7),
        rounds,
    )
    speedup = t_cold / t_warm
    floor = 1.0 if _SMOKE else 1.5
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = floor
    print(
        f"\nMetis(theta={theta}) at K={_NUM_REQUESTS}: profit "
        f"{outcome.best.profit:.2f} (init {outcome.initial_profit:.2f}, "
        f"source {outcome.best.source}, {outcome.num_rounds} rounds); "
        f"cold {t_cold:.3f}s vs warm {t_warm:.3f}s ({speedup:.2f}x)"
    )
    if not _SMOKE:
        assert speedup >= floor, (
            f"warm-started alternation managed only {speedup:.2f}x over the "
            f"cold fast path (floor {floor}x)"
        )
    else:
        ref = Metis(theta=theta, fast_path=False).solve(instance, rng=7)
        assert outcome.best.profit == ref.best.profit
        assert outcome.rounds == ref.rounds
