"""Benchmark of the sharded broker and the decomposition solver.

The headline number is the decomposition speedup: one monolithic
cycle-sized MILP against the same cycle split into 4 price-coordinated
shard MILPs.  Admission MILP cost grows superlinearly in the batch size,
so the split wins even solved serially — the full configuration asserts
a >= 1.7x floor (the smoke configuration only reports the ratio, CI
containers are too noisy to gate on).  Every schedule either path
returns is checked feasible per (edge, slot) against the topology's
link capacities, and a capacitated run additionally exercises the dual
price iteration + reconciliation eviction machinery end to end.

Set ``REPRO_BENCH_SMOKE=1`` for the shrunken CI configuration.  The
sharded-broker benchmark feeds the ``BENCH_shard.json`` CI artifact.
"""

import os
import time

import numpy as np

from repro import b4
from repro.core.instance import SPMInstance
from repro.decomp import (
    DecompConfig,
    profit_gap_bound,
    solve_decomposed,
    solve_exact,
)
from repro.service.pool import SolverPool
from repro.shard import ShardConfig, ShardedBroker
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.request import Request, RequestSet

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_REQUESTS = 24 if _SMOKE else 96
_SLOTS = 6 if _SMOKE else 8
_SHARDS = 4
_SPEEDUP_FLOOR = 1.7
_TOL = 1e-9


def _cycle_instance(num_requests: int, *, seed: int = 2019) -> SPMInstance:
    topology = b4()
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=num_requests, num_slots=_SLOTS),
        rng=seed,
    )
    return SPMInstance.build(topology, requests, k_paths=3)


def _best_of(fn, rounds):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _assert_slot_feasible(instance: SPMInstance, schedule) -> None:
    """Every (edge, slot) load within the topology's link capacity."""
    loads = instance.loads(schedule.assignment)
    for index, key in enumerate(instance.edges):
        ceiling = instance.topology.capacity(*key)
        if ceiling is None:
            continue
        peak = float(loads[index].max(initial=0.0))
        assert peak <= ceiling + _TOL, (key, peak, ceiling)


def test_decomposition_speedup(benchmark):
    """4 shard MILPs vs 1 monolithic MILP over the same billing cycle."""
    instance = _cycle_instance(_REQUESTS)
    config = DecompConfig(num_shards=_SHARDS)

    t0 = time.perf_counter()
    exact = solve_exact(instance)
    mono_seconds = time.perf_counter() - t0

    outcome = benchmark.pedantic(
        lambda: solve_decomposed(instance, config), rounds=1, iterations=1
    )
    sharded_seconds = benchmark.stats.stats.mean
    speedup = mono_seconds / sharded_seconds

    _assert_slot_feasible(instance, outcome.schedule)
    _assert_slot_feasible(instance, exact)
    assert outcome.profit <= exact.profit + 1e-6

    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["shards"] = _SHARDS
    benchmark.extra_info["mono_seconds"] = mono_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = 0.0 if _SMOKE else _SPEEDUP_FLOOR
    benchmark.extra_info["profit_gap"] = exact.profit - outcome.profit
    print(
        f"\ndecomp: mono {mono_seconds:.3f}s vs {_SHARDS} shards "
        f"{sharded_seconds:.3f}s ({speedup:.2f}x), profit "
        f"{outcome.profit:.3f} vs exact {exact.profit:.3f}"
    )
    if not _SMOKE:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"sharded decomposition managed only {speedup:.2f}x against the "
            f"monolithic solve (floor {_SPEEDUP_FLOOR}x)"
        )


def test_sharded_broker_throughput(benchmark):
    """Decisions/sec of the full sharded serving stack (ledger included)."""
    config = ShardConfig(
        topology="b4",
        num_cycles=2 if _SMOKE else 3,
        slots_per_cycle=_SLOTS,
        requests_per_cycle=_REQUESTS,
        seed=2019,
        shards=_SHARDS,
        time_limit=240.0,
    )
    report = benchmark.pedantic(
        lambda: ShardedBroker(config).run(), rounds=1, iterations=1
    )
    topology = b4()
    for cycle in report.cycles:
        for result in cycle.shard_results:
            ids = sorted(result.assignment)
            assert result.accepted == sum(
                1 for rid in ids if result.assignment[rid] is not None
            )
    summary = report.summary()
    benchmark.extra_info["decisions_per_sec"] = summary["decisions_per_sec"]
    benchmark.extra_info["num_shards"] = summary["num_shards"]
    benchmark.extra_info["profit"] = report.profit
    assert summary["num_shards"] == _SHARDS
    assert report.profit > 0


def test_capacitated_decomposition_is_feasible(benchmark):
    """Duals + eviction under tight link caps still yield feasible output."""
    topology = b4()
    topology.set_uniform_capacity(1)
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=_REQUESTS, num_slots=_SLOTS),
        rng=7,
    )
    instance = SPMInstance.build(topology, requests, k_paths=3)
    config = DecompConfig(num_shards=_SHARDS, max_rounds=4)

    outcome = benchmark.pedantic(
        lambda: solve_decomposed(instance, config), rounds=1, iterations=1
    )
    _assert_slot_feasible(instance, outcome.schedule)
    loads = instance.loads(outcome.schedule.assignment)
    assert float(np.max(loads, initial=0.0)) <= 1.0 + _TOL
    benchmark.extra_info["rounds"] = outcome.rounds
    benchmark.extra_info["evicted"] = len(outcome.evicted)
    benchmark.extra_info["max_violation"] = outcome.max_violation


def _common_peak_instance(num_requests: int, *, num_slots: int = 6) -> SPMInstance:
    """Uncapped B4 with every request spanning the whole billing cycle.

    The common-peak shape under which the decomposition's additive gap
    bound ``(S - 1) * sum_e u_e`` is valid (see
    :func:`repro.decomp.solver.profit_gap_bound`).
    """
    topology = b4()
    dcs = topology.datacenters
    rng = np.random.default_rng(2019)
    requests = [
        Request(
            request_id=i,
            source=dcs[i % len(dcs)],
            dest=dcs[(i + 1 + i // len(dcs)) % len(dcs)],
            start=0,
            end=num_slots - 1,
            rate=float(rng.uniform(0.1, 0.5)),
            value=float(rng.uniform(1.0, 8.0)),
        )
        for i in range(num_requests)
    ]
    return SPMInstance.build(topology, RequestSet(requests, num_slots), k_paths=3)


def test_concurrent_price_rounds(benchmark):
    """Pooled vs serialized per-round shard solves inside the price loop.

    ``DecompConfig(workers=4)`` fans each round's 4 shard MILPs across a
    :class:`~repro.service.pool.SolverPool`; results must stay
    bitwise-identical to the serialized loop, feasible, and within the
    ``(S - 1) * sum_e u_e`` additive gap bound of the exact solve.  The
    wall-clock floor only applies off smoke and on machines with >= 2
    cores — process concurrency cannot beat the serial loop on a
    single-core CI container.
    """
    instance = _common_peak_instance(_REQUESTS)
    serial_cfg = DecompConfig(num_shards=_SHARDS, max_rounds=4)
    pooled_cfg = DecompConfig(num_shards=_SHARDS, max_rounds=4, workers=_SHARDS)

    serial = solve_decomposed(instance, serial_cfg)
    with SolverPool(_SHARDS, cache_size=0) as pool:
        pooled = solve_decomposed(instance, pooled_cfg, pool=pool)
        assert pooled.workers == _SHARDS
        assert pooled.profit == serial.profit
        assert pooled.schedule.assignment == serial.schedule.assignment
        _assert_slot_feasible(instance, pooled.schedule)

        exact = solve_exact(instance, time_limit=240.0)
        gap = exact.profit - pooled.profit
        bound = profit_gap_bound(instance, _SHARDS)
        assert gap <= bound + _TOL, (
            f"decomposition gap {gap:.4f} exceeds the additive bound "
            f"{bound:.4f}"
        )

        rounds = 2 if _SMOKE else 3
        t_serial = _best_of(lambda: solve_decomposed(instance, serial_cfg), rounds)
        t_pooled = _best_of(
            lambda: solve_decomposed(instance, pooled_cfg, pool=pool), rounds
        )
        benchmark.pedantic(
            lambda: solve_decomposed(instance, pooled_cfg, pool=pool),
            rounds=1,
            iterations=1,
        )
    cores = len(os.sched_getaffinity(0))
    speedup = t_serial / t_pooled
    gated = not _SMOKE and cores >= 2
    benchmark.extra_info["shards"] = _SHARDS
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = 1.2 if gated else 0.0
    benchmark.extra_info["profit_gap"] = gap
    print(
        f"\nconcurrent price rounds at K={_REQUESTS}, {_SHARDS} shards: "
        f"serial {t_serial:.3f}s, pooled {t_pooled:.3f}s ({speedup:.2f}x on "
        f"{cores} core(s)), gap {gap:.3f} <= bound {bound:.1f}"
    )
    if gated:
        assert speedup >= 1.2, (
            f"concurrent shard rounds managed only {speedup:.2f}x over the "
            f"serialized loop on a multi-core machine (floor 1.2x)"
        )
