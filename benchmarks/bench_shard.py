"""Benchmark of the sharded broker and the decomposition solver.

The headline number is the decomposition speedup: one monolithic
cycle-sized MILP against the same cycle split into 4 price-coordinated
shard MILPs.  Admission MILP cost grows superlinearly in the batch size,
so the split wins even solved serially — the full configuration asserts
a >= 1.7x floor (the smoke configuration only reports the ratio, CI
containers are too noisy to gate on).  Every schedule either path
returns is checked feasible per (edge, slot) against the topology's
link capacities, and a capacitated run additionally exercises the dual
price iteration + reconciliation eviction machinery end to end.

Set ``REPRO_BENCH_SMOKE=1`` for the shrunken CI configuration.  The
sharded-broker benchmark feeds the ``BENCH_shard.json`` CI artifact.
"""

import os
import time

import numpy as np

from repro import b4
from repro.core.instance import SPMInstance
from repro.decomp import DecompConfig, solve_decomposed, solve_exact
from repro.shard import ShardConfig, ShardedBroker
from repro.workload.generator import WorkloadConfig, generate_workload

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_REQUESTS = 24 if _SMOKE else 96
_SLOTS = 6 if _SMOKE else 8
_SHARDS = 4
_SPEEDUP_FLOOR = 1.7
_TOL = 1e-9


def _cycle_instance(num_requests: int, *, seed: int = 2019) -> SPMInstance:
    topology = b4()
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=num_requests, num_slots=_SLOTS),
        rng=seed,
    )
    return SPMInstance.build(topology, requests, k_paths=3)


def _assert_slot_feasible(instance: SPMInstance, schedule) -> None:
    """Every (edge, slot) load within the topology's link capacity."""
    loads = instance.loads(schedule.assignment)
    for index, key in enumerate(instance.edges):
        ceiling = instance.topology.capacity(*key)
        if ceiling is None:
            continue
        peak = float(loads[index].max(initial=0.0))
        assert peak <= ceiling + _TOL, (key, peak, ceiling)


def test_decomposition_speedup(benchmark):
    """4 shard MILPs vs 1 monolithic MILP over the same billing cycle."""
    instance = _cycle_instance(_REQUESTS)
    config = DecompConfig(num_shards=_SHARDS)

    t0 = time.perf_counter()
    exact = solve_exact(instance)
    mono_seconds = time.perf_counter() - t0

    outcome = benchmark.pedantic(
        lambda: solve_decomposed(instance, config), rounds=1, iterations=1
    )
    sharded_seconds = benchmark.stats.stats.mean
    speedup = mono_seconds / sharded_seconds

    _assert_slot_feasible(instance, outcome.schedule)
    _assert_slot_feasible(instance, exact)
    assert outcome.profit <= exact.profit + 1e-6

    benchmark.extra_info["requests"] = _REQUESTS
    benchmark.extra_info["shards"] = _SHARDS
    benchmark.extra_info["mono_seconds"] = mono_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["profit_gap"] = exact.profit - outcome.profit
    print(
        f"\ndecomp: mono {mono_seconds:.3f}s vs {_SHARDS} shards "
        f"{sharded_seconds:.3f}s ({speedup:.2f}x), profit "
        f"{outcome.profit:.3f} vs exact {exact.profit:.3f}"
    )
    if not _SMOKE:
        assert speedup >= _SPEEDUP_FLOOR, (
            f"sharded decomposition managed only {speedup:.2f}x against the "
            f"monolithic solve (floor {_SPEEDUP_FLOOR}x)"
        )


def test_sharded_broker_throughput(benchmark):
    """Decisions/sec of the full sharded serving stack (ledger included)."""
    config = ShardConfig(
        topology="b4",
        num_cycles=2 if _SMOKE else 3,
        slots_per_cycle=_SLOTS,
        requests_per_cycle=_REQUESTS,
        seed=2019,
        shards=_SHARDS,
        time_limit=240.0,
    )
    report = benchmark.pedantic(
        lambda: ShardedBroker(config).run(), rounds=1, iterations=1
    )
    topology = b4()
    for cycle in report.cycles:
        for result in cycle.shard_results:
            ids = sorted(result.assignment)
            assert result.accepted == sum(
                1 for rid in ids if result.assignment[rid] is not None
            )
    summary = report.summary()
    benchmark.extra_info["decisions_per_sec"] = summary["decisions_per_sec"]
    benchmark.extra_info["num_shards"] = summary["num_shards"]
    benchmark.extra_info["profit"] = report.profit
    assert summary["num_shards"] == _SHARDS
    assert report.profit > 0


def test_capacitated_decomposition_is_feasible(benchmark):
    """Duals + eviction under tight link caps still yield feasible output."""
    topology = b4()
    topology.set_uniform_capacity(1)
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=_REQUESTS, num_slots=_SLOTS),
        rng=7,
    )
    instance = SPMInstance.build(topology, requests, k_paths=3)
    config = DecompConfig(num_shards=_SHARDS, max_rounds=4)

    outcome = benchmark.pedantic(
        lambda: solve_decomposed(instance, config), rounds=1, iterations=1
    )
    _assert_slot_feasible(instance, outcome.schedule)
    loads = instance.loads(outcome.schedule.assignment)
    assert float(np.max(loads, initial=0.0)) <= 1.0 + _TOL
    benchmark.extra_info["rounds"] = outcome.rounds
    benchmark.extra_info["evicted"] = len(outcome.evicted)
    benchmark.extra_info["max_violation"] = outcome.max_violation
