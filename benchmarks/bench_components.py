"""Microbenchmarks of the library's building blocks.

Not tied to a paper figure — these track the cost of each stage so a
regression in the LP layer, the estimator walk or path enumeration is
caught by the benchmark suite rather than discovered inside a 30-round
Metis run.
"""

import pytest

from repro.core.estimator import PessimisticEstimator
from repro.core.formulations import build_bl_spm, build_rl_spm
from repro.core.instance import SPMInstance
from repro.core.maa import solve_maa
from repro.core.taa import solve_taa
from repro.experiments.common import ExperimentConfig, make_instance
from repro.net.topologies import b4

_CFG = ExperimentConfig(topology="b4", request_counts=(200,), max_duration=None)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CFG, 200)


def test_path_enumeration(benchmark):
    """Yen's k-shortest paths across all B4 DC pairs (k=3)."""
    topo = b4()

    def enumerate_all():
        count = 0
        for src in topo.datacenters:
            for dst in topo.datacenters:
                if src != dst:
                    count += len(topo.candidate_paths(src, dst, k=3))
        return count

    total = benchmark(enumerate_all)
    # Most pairs have the full k=3 candidates; a few peripheral pairs
    # (single-attachment sites) top out below that.
    assert 12 * 11 * 2 <= total <= 12 * 11 * 3


def test_instance_build(benchmark, instance):
    """SPMInstance.build: path cache + incidence arrays for K=200."""
    result = benchmark(
        lambda: SPMInstance.build(
            instance.topology, instance.requests, k_paths=3
        )
    )
    assert result.num_requests == 200


def test_rl_spm_lp_solve(benchmark, instance):
    """The RL-SPM relaxation (MAA's stage 1) at K=200 on B4."""
    problem = build_rl_spm(instance, integral=False)
    solution = benchmark(problem.model.solve)
    assert solution.is_optimal


def test_bl_spm_lp_solve(benchmark, instance):
    """The BL-SPM relaxation (TAA's stage 1) at K=200 on B4."""
    capacities = {key: 10 for key in instance.edges}
    problem = build_bl_spm(instance, capacities, integral=False)
    solution = benchmark(problem.model.solve)
    assert solution.is_optimal


def test_maa_full(benchmark, instance):
    """Full MAA (LP + rounding + ceiling) at K=200."""
    result = benchmark.pedantic(
        lambda: solve_maa(instance, rng=0), rounds=3, iterations=1
    )
    assert result.schedule.num_accepted == 200


def test_taa_full(benchmark, instance):
    """Full TAA (LP + mu + estimator walk + augmentation) at K=200."""
    capacities = {key: 10 for key in instance.edges}
    result = benchmark.pedantic(
        lambda: solve_taa(instance, capacities), rounds=3, iterations=1
    )
    assert result.revenue >= 0


def test_estimator_walk_scaling(benchmark, instance):
    """The derandomized walk alone, on the real TAA estimator for K=200."""
    from repro.core.taa import _build_estimator
    from repro.core.formulations import fractional_x

    capacities = {key: 10 for key in instance.edges}
    problem = build_bl_spm(instance, capacities, integral=False)
    solution = problem.model.solve()
    weights = fractional_x(problem, solution)
    rate_max = max(r.rate for r in instance.requests)
    value_max = max(r.value for r in instance.requests)
    estimator = _build_estimator(
        instance,
        weights,
        capacities,
        mu=0.5,
        t0=1.0,
        t_cap=0.693,
        rate_max=rate_max,
        value_max=value_max,
        revenue_floor_norm=0.0,
    )
    assert isinstance(estimator, PessimisticEstimator)
    choices, final = benchmark(estimator.walk)
    assert len(choices) == 200
