"""Benchmark-suite configuration.

Benchmarks are exact-solver heavy; each one runs its experiment once
(``pedantic(rounds=1)``) at a reduced-but-representative scale, asserts the
paper's qualitative shape, and prints the same rows the paper's figure
plots (visible with ``pytest benchmarks/ --benchmark-only -s``).
"""

from __future__ import annotations
