"""Benchmark of the serving layer: sustained throughput, latency, caching.

Reports the service baseline every future perf PR moves against:

* sustained decisions/sec and p95 per-batch decision latency over a
  multi-cycle broker run;
* decision-cache hit rate under periodic (trace-replay) traffic;
* the solver worker pool's multi-cycle speedup over the single-process
  path on the same workload (asserted, not just printed).

Set ``REPRO_BENCH_SMOKE=1`` to run a shrunken configuration (CI smoke):
fewer cycles and requests, and the pool wall-clock assertion reduced to
decision equivalence (shared CI runners make wall-clock flaky).
"""

import os

import pytest

from repro.service import Broker, BrokerConfig, TraceSource
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import FlatRateValueModel
from repro.net.topologies import sub_b4


def _available_cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_CYCLES = 3 if _SMOKE else 8
_REQUESTS = 20 if _SMOKE else 60
_BASE = dict(
    topology="sub-b4",
    num_cycles=_CYCLES,
    slots_per_cycle=12,
    requests_per_cycle=_REQUESTS,
    seed=2019,
    time_limit=240.0,
)


def _report_line(tag, summary):
    print(
        f"\n{tag}: {summary['decisions_per_sec']:.1f} decisions/sec, "
        f"p95 {summary['latency_p95_ms']:.1f} ms, "
        f"hit rate {summary['cache_hit_rate']:.0%}, "
        f"wall {summary['wall_seconds']:.2f}s, "
        f"profit {summary['profit']:.2f}"
    )


def test_broker_sustained_throughput(benchmark):
    """Single-process serving over distinct cycles: the baseline numbers."""
    broker = Broker(BrokerConfig(**_BASE))
    report = benchmark.pedantic(broker.run, rounds=1, iterations=1)
    summary = report.summary()
    assert summary["decisions"] == _CYCLES * _REQUESTS
    assert summary["profit"] > 0.0
    assert summary["decisions_per_sec"] > 0.0
    _report_line("serial", summary)


def test_broker_cache_hit_rate(benchmark):
    """Periodic traffic: cycles 2..N replay from the decision cache."""
    workload = generate_workload(
        sub_b4(),
        WorkloadConfig(
            num_requests=_REQUESTS, num_slots=12, max_duration=4,
            value_model=FlatRateValueModel(1.8),
        ),
        rng=11,
    )
    broker = Broker(
        BrokerConfig(**_BASE), source=TraceSource(workload)
    )
    report = benchmark.pedantic(broker.run, rounds=1, iterations=1)
    summary = report.summary()
    # All but the first cycle's batches replay from cache.
    assert summary["cache_hit_rate"] >= (_CYCLES - 1) / _CYCLES - 0.05
    profits = summary["profit_per_cycle"]
    assert max(profits) == pytest.approx(min(profits))
    _report_line("trace-replay", summary)


def test_wal_overhead(benchmark, tmp_path):
    """Journaling cost: wal-off vs wal-on at each fsync policy.

    The WAL must never change decisions — only wall-clock.  The
    benchmark reports the relative overhead of each durability level so
    perf PRs can see whether journaling stays in the noise.
    """
    baseline = Broker(BrokerConfig(**_BASE)).run()
    summaries = {"wal-off": baseline.summary()}
    for policy in ("never", "batch", "always"):
        config = BrokerConfig(
            **_BASE, wal_path=tmp_path / f"{policy}.wal", fsync=policy
        )
        runner = Broker(config)
        if policy == "batch":  # the default policy is the benchmarked row
            report = benchmark.pedantic(runner.run, rounds=1, iterations=1)
        else:
            report = runner.run()
        assert report.decision_log() == baseline.decision_log(), (
            f"fsync={policy}: journaling must not change decisions"
        )
        summaries[f"wal-{policy}"] = report.summary()
    base_rate = summaries["wal-off"]["decisions_per_sec"]
    for tag, summary in summaries.items():
        _report_line(tag, summary)
        if summary["wal_bytes"]:
            slowdown = base_rate / max(summary["decisions_per_sec"], 1e-9)
            print(
                f"  {tag}: {summary['wal_bytes']} wal bytes, "
                f"snapshots {summary['snapshot_seconds']:.3f}s, "
                f"{slowdown:.2f}x vs wal-off"
            )


def test_worker_pool_speedup(benchmark):
    """Pool at 4 processes must out-throughput serial on the same workload."""
    serial = Broker(BrokerConfig(**_BASE)).run()
    pooled_broker = Broker(BrokerConfig(**{**_BASE, "workers": 4}))
    pooled = benchmark.pedantic(pooled_broker.run, rounds=1, iterations=1)

    assert pooled.decision_log() == serial.decision_log(), (
        "pooled and serial paths must make identical decisions"
    )
    serial_summary = serial.summary()
    pooled_summary = pooled.summary()
    _report_line("serial", serial_summary)
    _report_line("pool(4)", pooled_summary)
    speedup = (
        pooled_summary["decisions_per_sec"]
        / max(serial_summary["decisions_per_sec"], 1e-9)
    )
    print(f"pool(4) speedup over serial: {speedup:.2f}x")
    cores = _available_cores()
    if _SMOKE or cores < 2:
        pytest.skip(
            "pool wall-clock assertion skipped "
            f"(smoke={_SMOKE}, cores={cores}); "
            "decision equivalence verified above"
        )
    assert pooled_summary["wall_seconds"] < serial_summary["wall_seconds"], (
        f"worker pool ({pooled_summary['wall_seconds']:.2f}s) should beat "
        f"serial ({serial_summary['wall_seconds']:.2f}s) on {_CYCLES} cycles"
    )
