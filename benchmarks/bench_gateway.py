"""Benchmark of the live gateway: open-loop replay through real sockets.

Drives an in-process :class:`~repro.gateway.GatewayServer` with the
open-loop :class:`~repro.loadgen.LoadGenerator` — the full wire path
(NDJSON parse, bounded admission, windowed MILP decisions, response
pumps) — and reports sustained decisions/sec plus client-observed
p50/p99/p999 admission latency.  The accounting identity
``accepted + rejected + shed + errored == submitted`` is asserted on
both sides of the wire, and conservative throughput floors keep a
regression from landing silently.

Set ``REPRO_BENCH_SMOKE=1`` for the CI configuration (5k bids); the full
run replays 100k bids.
"""

import asyncio
import os

from repro.gateway import GatewayConfig, GatewayServer
from repro.loadgen import LoadGenerator, PoissonArrivals, synthesize_bids

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_BIDS = 5_000 if _SMOKE else 100_000
_RATE = 5_000.0 if _SMOKE else 20_000.0
#: Conservative floors — an order of magnitude under observed rates, so
#: only a real regression (not runner noise) can trip them.
_FLOOR = 150.0 if _SMOKE else 500.0

_CONFIG = dict(
    topology="sub-b4",
    slots_per_cycle=12,
    window=1,
    slot_seconds=0.05,
    # Real-time bounds: at most 32 bids reach the MILP per 50ms window
    # (two 16-bid chunks); the overflow is shed with immediate answers.
    queue_capacity=32,
    max_batch=16,
    time_limit=1.0,
)


def _replay(config: GatewayConfig, *, seed: int = 2019):
    """One full load run against a fresh in-process gateway."""

    async def scenario():
        server = GatewayServer(config)
        await server.start()
        host, port = server.address
        bids = synthesize_bids(
            server.topology,
            num_bids=_BIDS,
            num_slots=config.slots_per_cycle,
            seed=seed,
        )
        generator = LoadGenerator(
            host, port, arrivals=PoissonArrivals(_RATE, seed=seed), connections=4
        )
        load = await generator.run(bids)
        await server.stop()
        return server, load

    return asyncio.run(scenario())


def _assert_exact(server, load):
    """Both ledgers reconcile, and they agree bid for bid."""
    load.assert_reconciled()
    server.counters.assert_reconciled(where="benchmark epilogue")
    assert load.submitted == _BIDS and load.lost == 0
    assert load.accepted == server.counters.accepted
    assert load.rejected == server.counters.rejected
    assert load.shed == server.counters.shed
    assert load.errored == server.counters.errored == 0
    assert load.accepted > 0, "a live gateway must accept some bids"


def _report_line(tag, server, load):
    latency = load.latency
    print(
        f"\n{tag}: {load.submitted} bids, "
        f"{load.decisions_per_sec:.0f} decisions/sec, "
        f"accepted {load.accepted} / rejected {load.rejected} / "
        f"shed {load.shed}, "
        f"p50 {latency.percentile(50.0) * 1e3:.2f} ms, "
        f"p99 {latency.percentile(99.0) * 1e3:.2f} ms, "
        f"p999 {latency.percentile(99.9) * 1e3:.2f} ms"
    )


def _book(benchmark, load):
    latency = load.latency
    benchmark.extra_info.update(
        {
            "submitted": load.submitted,
            "accepted": load.accepted,
            "rejected": load.rejected,
            "shed": load.shed,
            "decisions_per_sec": load.decisions_per_sec,
            "p50_ms": latency.percentile(50.0) * 1e3,
            "p99_ms": latency.percentile(99.0) * 1e3,
            "p999_ms": latency.percentile(99.9) * 1e3,
        }
    )


def test_gateway_replay_throughput(benchmark):
    """The headline number: open-loop replay through the full wire path."""
    server, load = benchmark.pedantic(
        lambda: _replay(GatewayConfig(**_CONFIG)), rounds=1, iterations=1
    )
    _assert_exact(server, load)
    assert load.decisions_per_sec > _FLOOR, (
        f"gateway sustained {load.decisions_per_sec:.0f} decisions/sec, "
        f"floor is {_FLOOR:.0f}"
    )
    _report_line("replay", server, load)
    _book(benchmark, load)


def test_gateway_replay_with_wal(benchmark, tmp_path):
    """Journaling every live decision must not change the accounting."""
    config = GatewayConfig(
        **_CONFIG, wal_path=tmp_path / "gateway.wal", fsync="batch"
    )
    server, load = benchmark.pedantic(
        lambda: _replay(config), rounds=1, iterations=1
    )
    _assert_exact(server, load)
    assert server.telemetry.wal_bytes > 0
    assert load.decisions_per_sec > _FLOOR, (
        f"gateway+wal sustained {load.decisions_per_sec:.0f} decisions/sec, "
        f"floor is {_FLOOR:.0f}"
    )
    _report_line("replay+wal", server, load)
    _book(benchmark, load)
    print(f"  wal bytes: {server.telemetry.wal_bytes}")
