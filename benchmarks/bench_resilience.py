"""Benchmark of deadline-guaranteed cycle commits under solver faults.

The broker serves a fixed horizon with a per-cycle :class:`CycleBudget`
while the fault harness injects a solver hang that eats one cycle's
budget whole.  The headline numbers are the cycle-commit latency
distribution (p50/p99/max) and the degradation-ladder rung mix: the hit
cycle must still commit — via greedy answers — inside a bounded envelope
(budget + one granted solve slice + the hang), and the healthy cycles
must keep solving exactly.  Both rungs are asserted present, and the p99
commit latency is pinned under the envelope: the deadline guarantee the
resilience layer exists to provide.

Set ``REPRO_BENCH_SMOKE=1`` for the shrunken CI configuration.  The
benchmark feeds the ``BENCH_resilience.json`` CI artifact.
"""

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.service import Broker, BrokerConfig
from repro.state import FaultPlan

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_CYCLES = 3 if _SMOKE else 6
_REQUESTS = 12 if _SMOKE else 24
_SLOTS = 6
_BUDGET = 0.8


def _config(**overrides) -> BrokerConfig:
    fields = dict(
        topology="sub-b4",
        num_cycles=_CYCLES,
        slots_per_cycle=_SLOTS,
        requests_per_cycle=_REQUESTS,
        seed=2019,
        time_limit=240.0,
        max_batch=4,
        cycle_budget=_BUDGET,
    )
    fields.update(overrides)
    return BrokerConfig(**fields)


def test_cycle_commit_latency_under_solver_hang(benchmark):
    """Every cycle commits inside the envelope even with a hung solve."""
    latch_dir = tempfile.mkdtemp(prefix="bench_resilience_")
    faults = FaultPlan(
        hang_solver_seconds=_BUDGET,
        hang_once_path=str(Path(latch_dir) / "hang.latch"),
    )
    broker = Broker(_config(), faults=faults)

    t0 = time.perf_counter()
    report = benchmark.pedantic(broker.run, rounds=1, iterations=1)
    wall = time.perf_counter() - t0

    # 100% of cycles committed, accounting intact at every commit.
    assert [c.cycle for c in report.cycles] == list(range(_CYCLES))
    for cycle in report.cycles:
        assert cycle.accepted + cycle.declined + cycle.shed == (
            cycle.num_requests
        )

    commits = np.array([c.wall_seconds for c in report.cycles])
    p50, p99 = np.percentile(commits, [50, 99])
    # The envelope: the hang (one budget) rides on top of the one solve
    # slice that was granted before it fired, plus scheduling slack.
    envelope = 2 * _BUDGET + 2.0
    assert float(commits.max()) <= envelope, (
        f"worst cycle commit {commits.max():.3f}s blew the "
        f"{envelope:.3f}s envelope"
    )
    assert float(p99) <= envelope

    # The ladder was really exercised: the hung cycle degraded to greedy
    # answers, the healthy cycles stayed exact.
    rungs = report.summary()["rung_counts"]
    assert rungs.get("exact", 0) > 0, rungs
    assert rungs.get("greedy", 0) > 0, rungs

    benchmark.extra_info["cycles"] = _CYCLES
    benchmark.extra_info["requests_per_cycle"] = _REQUESTS
    benchmark.extra_info["cycle_budget_seconds"] = _BUDGET
    benchmark.extra_info["commit_p50_s"] = float(p50)
    benchmark.extra_info["commit_p99_s"] = float(p99)
    benchmark.extra_info["commit_max_s"] = float(commits.max())
    benchmark.extra_info["rung_counts"] = dict(rungs)
    benchmark.extra_info["wall_seconds"] = wall

    print(
        f"\nresilience: {_CYCLES} cycles under a {_BUDGET:.1f}s budget "
        f"with a {_BUDGET:.1f}s injected hang"
    )
    print(
        f"  commit latency p50 {p50:.3f}s, p99 {p99:.3f}s, "
        f"max {commits.max():.3f}s (envelope {envelope:.3f}s)"
    )
    print(f"  rung mix: {dict(sorted(rungs.items()))}")


def test_greedy_rung_throughput(benchmark):
    """The always-on bottom rung: microsecond admission, profit >= 0."""
    from repro.net.topologies import b4
    from repro.core.instance import SPMInstance
    from repro.resilience import greedy_admission
    from repro.workload.generator import WorkloadConfig, generate_workload

    topology = b4()
    requests = generate_workload(
        topology,
        WorkloadConfig(num_requests=_REQUESTS * 4, num_slots=_SLOTS),
        rng=2019,
    )
    instance = SPMInstance.build(topology, requests, k_paths=3)
    batch_ids = sorted(instance.paths)
    num_edges = len(instance.edges)
    loads = np.zeros((num_edges, _SLOTS))
    charged = np.zeros(num_edges)

    decision = benchmark.pedantic(
        lambda: greedy_admission(instance, batch_ids, loads, charged),
        rounds=3,
        iterations=1,
    )
    greedy_seconds = benchmark.stats.stats.mean

    accepted = sum(1 for path in decision if path is not None)
    assert accepted > 0
    benchmark.extra_info["batch_size"] = len(batch_ids)
    benchmark.extra_info["accepted"] = accepted
    benchmark.extra_info["greedy_seconds"] = greedy_seconds
    print(
        f"\ngreedy rung: {len(batch_ids)} bids admitted in "
        f"{greedy_seconds * 1e3:.2f} ms ({accepted} accepted)"
    )
