"""Benchmark of the durability layer: journaling, crash, and recovery.

Reports the numbers every durability PR moves against:

* raw WAL append throughput (records/sec) at each fsync policy;
* time to recover a crashed broker from snapshot + WAL tail, asserted
  bit-identical to the uninterrupted run;
* snapshot publish latency at the default cadence.

Set ``REPRO_BENCH_SMOKE=1`` for the shrunken CI configuration.  The
crash-recovery benchmark feeds the ``BENCH_state.json`` CI artifact; the
journal/recovery sizes are attached via ``benchmark.extra_info`` so the
artifact is self-describing.
"""

import os

import pytest

from repro.service import Broker, BrokerConfig
from repro.state import FaultPlan, Journal, SimulatedCrash, read_wal

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_CYCLES = 3 if _SMOKE else 6
_REQUESTS = 12 if _SMOKE else 40
_BASE = dict(
    topology="sub-b4",
    num_cycles=_CYCLES,
    slots_per_cycle=8,
    requests_per_cycle=_REQUESTS,
    seed=2019,
    time_limit=240.0,
)
_APPENDS = 500 if _SMOKE else 5000


@pytest.mark.parametrize("policy", ["never", "batch", "always"])
def test_journal_append_throughput(benchmark, tmp_path, policy):
    """Raw WAL append rate per fsync policy (the durability/latency dial)."""
    record = {
        "type": "batch", "cycle": 0, "window_start": 0, "size": 8,
        "accepted": 5, "declined": 3, "shed": 0, "revenue": 12.375,
        "incremental_cost": 4.25, "solver_seconds": 0.018, "cache_hit": False,
    }
    path = tmp_path / f"{policy}.wal"

    def append_burst():
        with Journal.open(path, fsync=policy) as journal:
            for _ in range(_APPENDS):
                journal.append(record)
            journal.commit()
        path.unlink()

    benchmark.pedantic(append_burst, rounds=1, iterations=1)
    benchmark.extra_info["appends"] = _APPENDS
    benchmark.extra_info["fsync"] = policy


def test_crash_recovery_equivalence(benchmark, tmp_path):
    """Kill the broker mid-run, recover, and time the recovery itself.

    The resumed report must be bit-identical to an uninterrupted run —
    the same invariant as tests/test_state_recovery.py, here with the
    recovery cost measured and exported to the benchmark artifact.
    """
    baseline = Broker(BrokerConfig(**_BASE)).run()
    crash_point = max(2, (_CYCLES * _REQUESTS) // 3)
    config = BrokerConfig(**_BASE, wal_path=tmp_path / "broker.wal")
    with pytest.raises(SimulatedCrash):
        Broker(config, faults=FaultPlan(crash_after_batches=crash_point)).run()
    wal_bytes_at_crash = config.wal_path.stat().st_size

    resumed = benchmark.pedantic(
        lambda: Broker(config).run(resume=True), rounds=1, iterations=1
    )
    assert resumed.decision_log() == baseline.decision_log()
    assert resumed.profit == baseline.profit
    for recovered, reference in zip(resumed.cycles, baseline.cycles):
        assert recovered.purchased == reference.purchased

    summary = resumed.summary()
    benchmark.extra_info["crash_after_batches"] = crash_point
    benchmark.extra_info["wal_bytes_at_crash"] = wal_bytes_at_crash
    benchmark.extra_info["recovered_batches"] = summary["recovered_batches"]
    benchmark.extra_info["snapshot_seconds"] = summary["snapshot_seconds"]
    print(
        f"\ncrash@{crash_point} batches: {wal_bytes_at_crash} wal bytes, "
        f"{summary['recovered_batches']} batches recovered, "
        f"resume profit {summary['profit']:.2f}"
    )


def test_recovery_scan_speed(benchmark, tmp_path):
    """Cold WAL scan + replay of a completed run (snapshot deleted)."""
    from repro.state import config_fingerprint, recover, snapshot_path

    config = BrokerConfig(**_BASE, wal_path=tmp_path / "broker.wal")
    Broker(config).run()
    snapshot_path(config.wal_path).unlink()  # force the pure-WAL path
    records = read_wal(config.wal_path)

    state = benchmark.pedantic(
        lambda: recover(
            config.wal_path, fingerprint=config_fingerprint(config)
        ),
        rounds=1,
        iterations=1,
    )
    assert not state.used_snapshot
    assert state.next_cycle == _CYCLES
    benchmark.extra_info["wal_records"] = len(records)
    benchmark.extra_info["wal_bytes"] = config.wal_path.stat().st_size
