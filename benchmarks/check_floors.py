"""Gate CI on the performance floors recorded in ``BENCH_*.json``.

Every benchmark that pins a speedup or latency floor records the measured
metric and the floor it enforced into ``extra_info`` (``speedup`` or
``latency_reduction`` next to ``floor``).  This script re-checks each
recorded pair so the JSON artifacts *gate* regressions instead of only
being uploaded: a bench run whose floors were relaxed (smoke mode,
single-core containers) records the relaxed floor, so the gate stays
exactly as strict as the run that produced the artifact.

Usage::

    python benchmarks/check_floors.py BENCH_core.json BENCH_online.json ...

Exits non-zero if any benchmark's metric fell below its recorded floor,
or if an artifact contains no gated rows at all (a schema drift guard).
"""

from __future__ import annotations

import json
import sys

_METRICS = ("speedup", "latency_reduction")


def check_file(path: str) -> tuple[int, int]:
    """Return ``(rows_checked, violations)`` for one benchmark artifact."""
    with open(path) as handle:
        payload = json.load(handle)
    checked = violations = 0
    for bench in payload.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        if "floor" not in extra:
            continue
        metric_name = next((m for m in _METRICS if m in extra), None)
        if metric_name is None:
            print(f"FAIL {path} :: {bench['name']}: floor without a metric")
            violations += 1
            continue
        checked += 1
        metric, floor = float(extra[metric_name]), float(extra["floor"])
        status = "ok  " if metric >= floor else "FAIL"
        print(
            f"{status} {path} :: {bench['name']}: "
            f"{metric_name} {metric:.2f} >= floor {floor:.2f}"
        )
        if metric < floor:
            violations += 1
    return checked, violations


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_floors.py BENCH_*.json", file=sys.stderr)
        return 2
    total_checked = total_violations = 0
    for path in argv:
        checked, violations = check_file(path)
        if checked == 0:
            print(f"FAIL {path}: no gated benchmark rows found")
            total_violations += 1
        total_checked += checked
        total_violations += violations
    print(f"{total_checked} floor(s) checked, {total_violations} violation(s)")
    return 1 if total_violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
