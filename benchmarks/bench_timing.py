"""Timing benchmark: Metis vs the exact OPT(SPM) solve.

The paper's §V-B.1 discussion leans on the runtime asymmetry — Gurobi
needs >1000 s for OPT(SPM) at 400 requests while Metis answers in
sub-second time.  This benchmark measures both on the same instance at a
size where the exact solve is still tractable and asserts the asymmetry.
"""

import time

import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.metis import Metis
from repro.experiments.common import ExperimentConfig, make_instance
from repro.workload.value_models import FlatRateValueModel

_CFG = ExperimentConfig(
    topology="sub-b4",
    request_counts=(80,),
    value_model=FlatRateValueModel(0.6),
    time_limit=300.0,
)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CFG, 80)


def test_metis_runtime(benchmark, instance):
    """Metis' full alternation, timed."""
    outcome = benchmark.pedantic(
        lambda: Metis(theta=10, maa_rounds=3).solve(instance, rng=0),
        rounds=1,
        iterations=1,
    )
    assert outcome.best.profit >= 0.0


def test_opt_runtime_dwarfs_metis(benchmark, instance):
    """The exact MILP is orders slower than Metis on the same instance."""
    started = time.perf_counter()
    metis = Metis(theta=10, maa_rounds=3).solve(instance, rng=0)
    metis_seconds = time.perf_counter() - started

    opt = benchmark.pedantic(
        lambda: solve_opt_spm(instance, time_limit=_CFG.time_limit),
        rounds=1,
        iterations=1,
    )
    opt_seconds = benchmark.stats.stats.max

    assert opt.profit >= metis.best.profit - 1e-6
    assert opt_seconds > metis_seconds, (
        f"exact solve ({opt_seconds:.2f}s) should dominate Metis "
        f"({metis_seconds:.2f}s)"
    )
    print(
        f"\nK=80 SUB-B4: Metis {metis_seconds:.2f}s, OPT(SPM) {opt_seconds:.2f}s, "
        f"profit gap {metis.best.profit / opt.profit:.3f}"
    )
