"""Benchmarks regenerating Fig. 4 — MAA and TAA component performance on B4.

Panels: 4a MAA-vs-MinCost service cost, 4b randomized-rounding cost ratio
distribution, 4c/4d TAA-vs-Amoeba revenue and acceptance under uniform
10-unit links.
"""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4cd
from repro.workload.value_models import PriceAwareValueModel


def test_fig4a_service_cost(benchmark):
    """Fig. 4a: MAA's cost beats the fixed min-price rule under real load."""
    cfg = ExperimentConfig(
        topology="b4",
        request_counts=(200, 400),
        max_duration=None,
        maa_rounds=10,
    )
    result = benchmark.pedantic(lambda: run_fig4a(cfg), rounds=1, iterations=1)
    print("\n" + result.to_table())
    for row in result.rows:
        maa_cost, mincost_cost, lp_bound = row[1], row[2], row[4]
        assert maa_cost >= lp_bound - 1e-6
        assert mincost_cost >= 0.97 * maa_cost, (
            "MinCost should not beat MAA meaningfully in the loaded regime"
        )
    # The paper's gap persists at the loaded end of the sweep.
    assert result.rows[-1][3] >= 1.0, "MinCost at least as expensive at peak K"


def test_fig4b_rounding_ratio(benchmark):
    """Fig. 4b: rounding cost stays within a small factor of optimal."""
    cfg = ExperimentConfig(
        topology="sub-b4", request_counts=(40,), time_limit=300.0
    )
    result = benchmark.pedantic(
        lambda: run_fig4b(cfg, num_roundings=300), rounds=1, iterations=1
    )
    print("\n" + result.to_table())
    for row in result.rows:
        ratio_mean, ratio_max, ratio_min = row[2], row[4], row[5]
        assert ratio_min >= 1.0 - 1e-9, "cannot beat the optimum"
        assert ratio_mean < 1.6, f"mean rounding ratio {ratio_mean:.3f} too high"
        assert ratio_max < 2.0, f"max rounding ratio {ratio_max:.3f} too high"


@pytest.fixture(scope="module")
def fig4cd_result():
    cfg = ExperimentConfig(
        topology="b4",
        request_counts=(500, 1000),
        max_duration=None,
        value_model=PriceAwareValueModel(markup=1.5, noise=0.9),
    )
    return run_fig4cd(cfg)


def test_fig4c_service_revenue(benchmark, fig4cd_result):
    """Fig. 4c: TAA's revenue beats Amoeba, gap growing with contention."""

    def check():
        ratios = []
        for row in fig4cd_result.rows:
            taa_rev, amoeba_rev, lp = row[1], row[2], row[5]
            assert taa_rev <= lp + 1e-6
            ratios.append(taa_rev / amoeba_rev)
        assert ratios[-1] >= 1.0, "TAA wins once bandwidth is scarce"
        assert ratios[-1] >= ratios[0] - 0.05, "gap should not shrink with load"
        return ratios

    ratios = benchmark(check)
    print("\n" + fig4cd_result.to_table())
    print(f"revenue ratios TAA/Amoeba: {[f'{r:.3f}' for r in ratios]}")


def test_fig4d_accepted_requests(benchmark, fig4cd_result):
    """Fig. 4d: TAA accepts at least as many requests under contention."""

    def check():
        last = fig4cd_result.rows[-1]
        taa_accepted, amoeba_accepted = last[3], last[4]
        assert taa_accepted >= 0.95 * amoeba_accepted
        return taa_accepted, amoeba_accepted

    taa_accepted, amoeba_accepted = benchmark(check)
    print(f"\naccepted at peak K: TAA={taa_accepted} Amoeba={amoeba_accepted}")
