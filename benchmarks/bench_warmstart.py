"""Benchmark of the warm-started re-solve layer.

Three headline rows, each pinned against its cold oracle *after* an
equivalence assertion (warm-start reuse is only allowed to change wall
clock, never results):

* **Metis alternation** — ``Metis(warm_start=True)`` (resolve sessions +
  incremental local search) against the cold fast path at benchmark
  scale; the full configuration asserts a >= 1.5x end-to-end floor.
* **Online LP screening** — a low-value flood where most batches are
  provably hopeless; declining them on the LP relaxation bound must cut
  mean batch-decision latency by >= 25% with bitwise-identical decisions.
* **Concurrent shard rounds** — the decomposed price loop with per-round
  shard solves fanned across a process pool; equivalence, feasibility and
  the ``(S - 1) * sum_e u_e`` gap bound are asserted on every run, while
  the wall-clock floor is gated on the machine actually having more than
  one core (process concurrency is a no-op on single-core CI).

Set ``REPRO_BENCH_SMOKE=1`` for the shrunken CI configuration: identical
equivalence assertions, floors reported instead of enforced.  Feeds the
``BENCH_warmstart.json`` CI artifact.
"""

import os
import time

import numpy as np
import pytest

from repro import b4
from repro.core.instance import SPMInstance
from repro.core.metis import Metis
from repro.core.online import OnlineScheduler
from repro.decomp.solver import (
    DecompConfig,
    profit_gap_bound,
    solve_decomposed,
    solve_exact,
)
from repro.experiments.common import ExperimentConfig, make_instance
from repro.service.pool import SolverPool
from repro.workload.request import Request, RequestSet
from repro.workload.value_models import FlatRateValueModel

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_TOL = 1e-9

_METIS_REQUESTS = 30 if _SMOKE else 200
_METIS_CFG = ExperimentConfig(
    topology="sub-b4" if _SMOKE else "b4",
    request_counts=(_METIS_REQUESTS,),
    time_limit=240.0,
)

_ONLINE_REQUESTS = 20 if _SMOKE else 60
_ONLINE_CFG = ExperimentConfig(
    topology="sub-b4",
    request_counts=(_ONLINE_REQUESTS,),
    # A flat value far below the typical path's integer-unit cost: most
    # admission batches are hopeless, which is exactly the regime the LP
    # bound screen is for.
    value_model=FlatRateValueModel(0.2),
    time_limit=240.0,
)

_SHARD_REQUESTS = 24 if _SMOKE else 96
_SHARDS = 4
_MULTI_CORE = len(os.sched_getaffinity(0)) >= 2


def best_of(fn, rounds):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_metis_warm_alternation_speedup(benchmark):
    """Warm vs cold Metis alternation, bitwise-identical outcome required."""
    instance = make_instance(_METIS_CFG, _METIS_REQUESTS)
    theta = 3 if _SMOKE else 5

    warm_outcome = Metis(theta=theta, warm_start=True).solve(instance, rng=7)
    cold_outcome = Metis(theta=theta, warm_start=False).solve(instance, rng=7)
    assert warm_outcome.best.profit == cold_outcome.best.profit
    assert warm_outcome.num_rounds == cold_outcome.num_rounds
    if cold_outcome.best.schedule is not None:
        assert (
            warm_outcome.best.schedule.assignment
            == cold_outcome.best.schedule.assignment
        )

    rounds = 2
    t_cold = best_of(
        lambda: Metis(theta=theta, warm_start=False).solve(instance, rng=7),
        rounds,
    )
    t_warm = best_of(
        lambda: Metis(theta=theta, warm_start=True).solve(instance, rng=7),
        rounds,
    )
    benchmark.pedantic(
        lambda: Metis(theta=theta, warm_start=True).solve(instance, rng=7),
        rounds=1,
        iterations=1,
    )
    speedup = t_cold / t_warm
    benchmark.extra_info["requests"] = _METIS_REQUESTS
    benchmark.extra_info["cold_seconds"] = t_cold
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = 1.0 if _SMOKE else 1.5
    print(
        f"\nMetis(theta={theta}) at K={_METIS_REQUESTS}: cold {t_cold:.3f}s, "
        f"warm {t_warm:.3f}s, speedup {speedup:.2f}x"
    )
    if not _SMOKE:
        assert speedup >= 1.5, (
            f"warm-started alternation managed only {speedup:.2f}x over the "
            f"cold fast path (floor 1.5x)"
        )


def test_online_screening_latency(benchmark):
    """LP bound screening on a hopeless flood: latency down, decisions equal."""
    instance = make_instance(_ONLINE_CFG, _ONLINE_REQUESTS)

    plain_sched = OnlineScheduler(lp_screen=False)
    plain = plain_sched.run(instance)
    screened_sched = OnlineScheduler(lp_screen=True)
    screened = screened_sched.run(instance)
    assert screened.profit == plain.profit
    assert screened.schedule.assignment == plain.schedule.assignment
    assert screened_sched.screened_batches > 0, (
        "the flood workload must actually trigger the screen"
    )

    rounds = 3
    t_plain = best_of(
        lambda: OnlineScheduler(lp_screen=False).run(instance), rounds
    )
    t_screen = best_of(
        lambda: OnlineScheduler(lp_screen=True).run(instance), rounds
    )
    benchmark.pedantic(
        lambda: OnlineScheduler(lp_screen=True).run(instance),
        rounds=1,
        iterations=1,
    )
    reduction = 1.0 - t_screen / t_plain
    benchmark.extra_info["requests"] = _ONLINE_REQUESTS
    benchmark.extra_info["screened_batches"] = screened_sched.screened_batches
    benchmark.extra_info["latency_reduction"] = reduction
    benchmark.extra_info["floor"] = 0.0 if _SMOKE else 0.25
    print(
        f"\nonline flood at K={_ONLINE_REQUESTS}: plain {t_plain * 1e3:.1f} ms, "
        f"screened {t_screen * 1e3:.1f} ms "
        f"({screened_sched.screened_batches} batches screened, "
        f"latency -{reduction:.0%})"
    )
    if not _SMOKE:
        assert reduction >= 0.25, (
            f"LP screening cut mean batch latency by only {reduction:.0%} "
            f"(floor 25%)"
        )


def _full_cycle_instance(num_requests: int, *, num_slots: int = 6):
    """Uncapped B4, every request spanning the whole billing cycle.

    The common-peak shape under which the decomposition's additive gap
    bound ``(S - 1) * sum_e u_e`` is valid (see
    :func:`repro.decomp.solver.profit_gap_bound`).
    """
    topo = b4()
    dcs = topo.datacenters
    rng = np.random.default_rng(2019)
    requests = [
        Request(
            request_id=i,
            source=dcs[i % len(dcs)],
            dest=dcs[(i + 1 + i // len(dcs)) % len(dcs)],
            start=0,
            end=num_slots - 1,
            rate=float(rng.uniform(0.1, 0.5)),
            value=float(rng.uniform(1.0, 8.0)),
        )
        for i in range(num_requests)
    ]
    return SPMInstance.build(topo, RequestSet(requests, num_slots), k_paths=3)


def test_concurrent_shard_rounds(benchmark):
    """Pooled vs serialized per-round shard solves at 4 shards."""
    instance = _full_cycle_instance(_SHARD_REQUESTS)
    serial_cfg = DecompConfig(num_shards=_SHARDS, max_rounds=4)
    pooled_cfg = DecompConfig(num_shards=_SHARDS, max_rounds=4, workers=_SHARDS)

    serial = solve_decomposed(instance, serial_cfg)
    with SolverPool(_SHARDS, cache_size=0) as pool:
        pooled = solve_decomposed(instance, pooled_cfg, pool=pool)
        assert pooled.workers == _SHARDS
        assert pooled.profit == serial.profit
        assert pooled.schedule.assignment == serial.schedule.assignment
        pooled.schedule.check_capacities(instance.topology.capacities())

        exact = solve_exact(instance, time_limit=240.0)
        gap = exact.profit - pooled.profit
        bound = profit_gap_bound(instance, _SHARDS)
        assert gap <= bound + _TOL, (
            f"decomposition gap {gap:.4f} exceeds the additive bound "
            f"{bound:.4f}"
        )

        rounds = 2 if _SMOKE else 3
        t_serial = best_of(
            lambda: solve_decomposed(instance, serial_cfg), rounds
        )
        t_pooled = best_of(
            lambda: solve_decomposed(instance, pooled_cfg, pool=pool), rounds
        )
        benchmark.pedantic(
            lambda: solve_decomposed(instance, pooled_cfg, pool=pool),
            rounds=1,
            iterations=1,
        )
    speedup = t_serial / t_pooled
    benchmark.extra_info["requests"] = _SHARD_REQUESTS
    benchmark.extra_info["shards"] = _SHARDS
    benchmark.extra_info["cores"] = len(os.sched_getaffinity(0))
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = 1.2 if (not _SMOKE and _MULTI_CORE) else 0.0
    benchmark.extra_info["profit_gap"] = gap
    print(
        f"\nshard rounds at K={_SHARD_REQUESTS}, {_SHARDS} shards: serial "
        f"{t_serial:.3f}s, pooled {t_pooled:.3f}s ({speedup:.2f}x on "
        f"{len(os.sched_getaffinity(0))} core(s)), gap {gap:.3f} <= "
        f"bound {bound:.1f}"
    )
    if not _SMOKE and _MULTI_CORE:
        assert speedup >= 1.2, (
            f"concurrent shard rounds managed only {speedup:.2f}x over the "
            f"serialized loop on a multi-core machine (floor 1.2x)"
        )
