"""Benchmark of the online extension: slot-by-slot exact admission.

Tracks the cost of the per-batch MILPs, asserts the dominance chain
(online <= offline OPT) at benchmark scale, and pins the array-native
batch-compilation speedup over the expression reference build.

Set ``REPRO_BENCH_SMOKE=1`` to run a shrunken configuration (CI smoke):
same assertions on equivalence and dominance, relaxed speedup floor.
"""

import os
import time

import numpy as np
import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.online import (
    OnlineScheduler,
    build_incremental_spm,
    commit_decision,
    solve_batch,
)
from repro.experiments.common import ExperimentConfig, make_instance
from repro.workload.value_models import FlatRateValueModel

_SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
_NUM_REQUESTS = 20 if _SMOKE else 60

_CFG = ExperimentConfig(
    topology="sub-b4",
    request_counts=(_NUM_REQUESTS,),
    value_model=FlatRateValueModel(1.0),
    time_limit=240.0,
)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CFG, _NUM_REQUESTS)


def test_online_scheduler(benchmark, instance):
    """Full online run: one exact incremental MILP per arrival slot."""
    outcome = benchmark.pedantic(
        lambda: OnlineScheduler().run(instance), rounds=1, iterations=1
    )
    offline = solve_opt_spm(instance, time_limit=_CFG.time_limit)
    assert outcome.profit >= 0.0
    assert outcome.profit <= offline.profit + 1e-6
    print(
        f"\nonline profit {outcome.profit:.2f} vs offline OPT "
        f"{offline.profit:.2f} ({outcome.profit / max(offline.profit, 1e-9):.0%})"
    )


def test_fast_build_speedup(benchmark, instance):
    """Array-native batch compilation vs the expression reference build.

    One full pass = every arrival batch of the workload compiled once.
    The fast path must produce identical decisions (checked batch by batch
    on an evolving residual state) and build at least 5x faster (2x in
    smoke mode, where tiny batches shrink the expression path's per-term
    disadvantage).
    """
    by_start: dict[int, list[int]] = {}
    for req in instance.requests:
        by_start.setdefault(req.start, []).append(req.request_id)
    batches = [by_start[slot] for slot in sorted(by_start)]
    compiler = instance.batch_compiler()

    committed = np.zeros((instance.num_edges, instance.num_slots))
    charged = np.zeros(instance.num_edges)
    for batch in batches:
        fast = solve_batch(instance, batch, committed, charged, fast_path=True)
        expr = solve_batch(instance, batch, committed, charged, fast_path=False)
        assert fast.choices == expr.choices, (
            "fast and expression builds must decide identically"
        )
        assert fast.objective == pytest.approx(expr.objective)
        commit_decision(instance, batch, list(fast.choices), committed, charged)

    def build_expr():
        for batch in batches:
            build_incremental_spm(instance, batch, committed, charged)[0].compile()

    def build_fast():
        for batch in batches:
            compiler.compile_batch(batch, committed, charged)

    def best_of(fn, rounds):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    rounds = 5 if _SMOKE else 20
    build_expr(), build_fast()  # warm-up
    t_expr = best_of(build_expr, rounds)
    t_fast = best_of(build_fast, rounds)
    benchmark.pedantic(build_fast, rounds=rounds, iterations=1)

    speedup = t_expr / t_fast
    print(
        f"\nbatch model build over {len(batches)} batches: "
        f"expression {t_expr * 1e3:.2f} ms, fast {t_fast * 1e3:.2f} ms, "
        f"speedup {speedup:.1f}x"
    )
    floor = 2.0 if _SMOKE else 5.0
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["floor"] = floor
    assert speedup >= floor, (
        f"fast path built only {speedup:.1f}x faster than the expression "
        f"path (floor {floor}x)"
    )


def test_lp_screening_latency(benchmark):
    """LP relaxation bound screening on a low-value admission flood.

    When every request's value sits far below its cheapest path cost, each
    arrival batch is provably hopeless: the LP relaxation bound of the batch
    MILP is <= 0, so all-decline is certified optimal without branching.
    ``OnlineScheduler(lp_screen=True)`` must return bitwise-identical
    decisions and cut mean batch-decision latency by >= 25% (reported, not
    enforced, in smoke mode).
    """
    flood_cfg = ExperimentConfig(
        topology="sub-b4",
        request_counts=(_NUM_REQUESTS,),
        value_model=FlatRateValueModel(0.2),
        time_limit=240.0,
    )
    flood = make_instance(flood_cfg, _NUM_REQUESTS)

    plain_sched = OnlineScheduler(lp_screen=False)
    plain = plain_sched.run(flood)
    screened_sched = OnlineScheduler(lp_screen=True)
    screened = screened_sched.run(flood)
    assert screened.profit == plain.profit
    assert screened.schedule.assignment == plain.schedule.assignment
    assert screened_sched.screened_batches > 0, (
        "the flood workload must actually trigger the screen"
    )

    def best_of(fn, rounds):
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    rounds = 3
    t_plain = best_of(lambda: OnlineScheduler(lp_screen=False).run(flood), rounds)
    t_screen = best_of(lambda: OnlineScheduler(lp_screen=True).run(flood), rounds)
    benchmark.pedantic(
        lambda: OnlineScheduler(lp_screen=True).run(flood),
        rounds=1,
        iterations=1,
    )
    reduction = 1.0 - t_screen / t_plain
    benchmark.extra_info["screened_batches"] = screened_sched.screened_batches
    benchmark.extra_info["latency_reduction"] = reduction
    benchmark.extra_info["floor"] = 0.0 if _SMOKE else 0.25
    print(
        f"\nonline flood at K={_NUM_REQUESTS}: plain {t_plain * 1e3:.1f} ms, "
        f"screened {t_screen * 1e3:.1f} ms "
        f"({screened_sched.screened_batches} batches screened, "
        f"latency -{reduction:.0%})"
    )
    if not _SMOKE:
        assert reduction >= 0.25, (
            f"LP screening cut mean batch latency by only {reduction:.0%} "
            f"(floor 25%)"
        )
