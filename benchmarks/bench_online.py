"""Benchmark of the online extension: slot-by-slot exact admission.

Tracks the cost of the per-batch MILPs and asserts the dominance chain
(online <= offline OPT) at benchmark scale.
"""

import pytest

from repro.baselines.opt import solve_opt_spm
from repro.core.online import OnlineScheduler
from repro.experiments.common import ExperimentConfig, make_instance
from repro.workload.value_models import FlatRateValueModel

_CFG = ExperimentConfig(
    topology="sub-b4",
    request_counts=(60,),
    value_model=FlatRateValueModel(1.0),
    time_limit=240.0,
)


@pytest.fixture(scope="module")
def instance():
    return make_instance(_CFG, 60)


def test_online_scheduler(benchmark, instance):
    """Full online run: one exact incremental MILP per arrival slot."""
    outcome = benchmark.pedantic(
        lambda: OnlineScheduler().run(instance), rounds=1, iterations=1
    )
    offline = solve_opt_spm(instance, time_limit=_CFG.time_limit)
    assert outcome.profit >= 0.0
    assert outcome.profit <= offline.profit + 1e-6
    print(
        f"\nonline profit {outcome.profit:.2f} vs offline OPT "
        f"{offline.profit:.2f} ({outcome.profit / max(offline.profit, 1e-9):.0%})"
    )
