"""Bring your own WAN: custom topology, hand-written requests, exact optimum.

Shows the full modeling surface end to end on a small transatlantic
triangle where the answer can be checked by hand:

* build a custom priced topology;
* submit hand-written requests (one obviously unprofitable);
* solve exactly with OPT(SPM) and approximately with Metis;
* round-trip the workload through the JSON trace format.

Run:  python examples/custom_topology.py
"""

import tempfile
from pathlib import Path

from repro.baselines import solve_opt_spm
from repro.core import Metis, SPMInstance
from repro.net import Topology
from repro.workload import Request, RequestSet, load_trace, save_trace


def build_topology() -> Topology:
    """A three-site WAN: two US sites plus one European site.

    Transatlantic capacity is priced 3x the domestic link.
    """
    topo = Topology("triangle", regions={"nyc": "north_america"})
    topo.add_datacenter("nyc", "north_america")
    topo.add_datacenter("sfo", "north_america")
    topo.add_datacenter("fra", "europe")
    topo.add_link("nyc", "sfo", 1.0)
    topo.add_link("nyc", "fra", 3.0)
    topo.add_link("sfo", "fra", 3.0)
    topo.validate()
    return topo


def build_requests() -> RequestSet:
    return RequestSet(
        [
            # Profitable domestic reservation: bid 4 vs ~1 unit at price 1.
            Request(0, "nyc", "sfo", start=0, end=3, rate=0.8, value=4.0),
            # Profitable transatlantic reservation: bid 5 vs 1 unit at 3.
            Request(1, "nyc", "fra", start=0, end=2, rate=0.6, value=5.0),
            # Money-loser: tiny bid, but it would force a fresh unit on a
            # price-3 link.  A rational provider declines it.
            Request(2, "sfo", "fra", start=4, end=5, rate=0.4, value=0.5),
            # Rides the unit request 1 already pays for -> pure profit.
            Request(3, "nyc", "fra", start=0, end=2, rate=0.3, value=1.0),
        ],
        num_slots=6,
    )


def main() -> None:
    topology = build_topology()
    requests = build_requests()
    instance = SPMInstance.build(topology, requests, k_paths=2)

    exact = solve_opt_spm(instance)
    print("OPT(SPM):")
    print(f"  profit {exact.profit:.2f}")
    for req in requests:
        decision = exact.schedule.assignment[req.request_id]
        verdict = "DECLINED" if decision is None else f"path #{decision}"
        print(
            f"  request {req.request_id} ({req.source}->{req.dest}, "
            f"bid {req.value}): {verdict}"
        )
    assert exact.schedule.assignment[2] is None, "the money-loser is declined"

    outcome = Metis(theta=10).solve(instance, rng=0)
    print(f"\nMetis: profit {outcome.best.profit:.2f} "
          f"(optimal is {exact.profit:.2f})")

    # Persist and reload the workload — experiments pin their inputs this way.
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "triangle_trace.json"
        save_trace(requests, trace_path)
        reloaded = load_trace(trace_path)
        print(f"\ntrace round-trip: {len(reloaded)} requests, "
              f"total bids {reloaded.total_value:.2f}")


if __name__ == "__main__":
    main()
