"""Online sealed-bid admission: deciding requests as they arrive.

The paper's operational story — customers submit first-price sealed bids —
also supports an online reading: each bid must be accepted or declined
when its window starts, without knowledge of future bids.  This example
runs the library's exact-incremental online scheduler against the offline
optimum and the offline Metis, quantifying the price of not knowing the
future.

Run:  python examples/online_bidding.py
"""

from repro.baselines import solve_opt_spm
from repro.core import Metis, OnlineScheduler, SPMInstance
from repro.experiments.common import ExperimentConfig, make_instance
from repro.util.tables import format_table
from repro.workload import FlatRateValueModel

SEED = 11


def main() -> None:
    config = ExperimentConfig(
        topology="sub-b4",
        request_counts=(80,),
        seed=SEED,
        value_model=FlatRateValueModel(1.0),
    )
    instance = make_instance(config, 80)
    print(f"instance: {instance}\n")

    online = OnlineScheduler().run(instance)
    offline_metis = Metis(theta=20, maa_rounds=3).solve(instance, rng=SEED)
    offline_opt = solve_opt_spm(instance, time_limit=300)

    rows = [
        ["online (exact per batch)", online.profit, online.num_accepted],
        [
            "offline Metis",
            offline_metis.best.profit,
            offline_metis.best.num_accepted,
        ],
        ["offline OPT(SPM)", offline_opt.profit, offline_opt.schedule.num_accepted],
    ]
    print(
        format_table(
            ["scheduler", "profit", "accepted"],
            rows,
            title="The price of not knowing future bids",
        )
    )

    print("\nper-slot decisions (slot, arrivals, accepted):")
    for slot, batch, accepted in online.decisions_per_slot:
        print(f"  slot {slot:2d}: {accepted:3d}/{batch:3d} accepted")

    gap = online.profit / offline_opt.profit if offline_opt.profit else 1.0
    print(
        f"\nonline captures {gap:.0%} of the offline optimum on this draw — "
        "the shortfall is\nbids declined because no single slot's batch "
        "could amortize a fresh bandwidth\nunit that later arrivals would "
        "have shared.  Thinner margins widen the gap\n(try "
        "FlatRateValueModel(0.6)); fatter ones close it."
    )


if __name__ == "__main__":
    main()
