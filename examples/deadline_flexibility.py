"""How much is scheduling freedom worth?

The paper's related work (NetStitcher, Postcard, Amoeba) saves money by
*moving transfers in time*; the paper's own model fixes each window at bid
time.  This example bridges the two: it solves SPM exactly while letting
every request slide up to `slack` slots past its requested start, and
plots profit against the slack budget.

Run:  python examples/deadline_flexibility.py
"""

from repro.core import SPMInstance, flexibility_gain
from repro.experiments.charts import line_chart
from repro.experiments.common import ExperimentConfig, make_instance
from repro.util.tables import format_table
from repro.workload import FlatRateValueModel

SEED = 2019
SLACKS = (0, 1, 2, 3)


def main() -> None:
    config = ExperimentConfig(
        topology="sub-b4",
        request_counts=(60,),
        seed=SEED,
        value_model=FlatRateValueModel(0.8),
        max_duration=3,
    )
    instance = make_instance(config, 60)
    print(f"instance: {instance}\n")

    curve = flexibility_gain(instance, SLACKS, time_limit=240)

    print(
        format_table(
            ["slack (slots)", "optimal profit", "requests shifted"],
            [[slack, profit, shifted] for slack, profit, shifted in curve],
            title="Exact SPM profit vs per-request slack budget",
        )
    )
    baseline = curve[0][1]
    best = curve[-1][1]
    if baseline > 0:
        print(f"\nflexibility premium: +{(best / baseline - 1):.1%} profit "
              f"at slack={SLACKS[-1]}")

    print()
    print(
        line_chart(
            [slack for slack, _, _ in curve],
            {"profit": [profit for _, profit, _ in curve]},
            width=40,
            height=8,
            title="profit vs slack",
        )
    )
    print(
        "\nReading: sliding windows off shared peaks removes whole "
        "bandwidth units —\nthe same mechanism store-and-forward systems "
        "monetize, now priced inside SPM."
    )


if __name__ == "__main__":
    main()
