"""Live gateway demo: real-time bid serving over a loopback socket.

Starts the asyncio bid gateway on an ephemeral port — billing cycles
closing on *wall-clock* deadlines, 40ms per slot — then replays a
Poisson-paced open-loop bid stream against it with the load generator,
all in one process.  Prints the two ledgers (client-side and
server-side), which must partition the submitted bids exactly:
accepted + rejected + shed + errored == submitted.

Run:  python examples/live_gateway.py
"""

import asyncio

from repro.gateway import GatewayConfig, GatewayServer
from repro.loadgen import LoadGenerator, PoissonArrivals, synthesize_bids

SEED = 7
NUM_BIDS = 400
RATE = 800.0  # bids/sec — well over what the bounded queue admits


async def main() -> None:
    # 1. A gateway on the small six-node WAN: 12 slots of 40ms per
    #    billing cycle, an 8-deep admission queue so the overload is
    #    visible as explicit shedding.
    config = GatewayConfig(
        topology="sub-b4",
        slots_per_cycle=12,
        slot_seconds=0.04,
        queue_capacity=8,
    )
    server = GatewayServer(config)
    await server.start()
    host, port = server.address
    print(f"gateway listening on {host}:{port} "
          f"({config.topology}, {config.slot_seconds * 1e3:.0f}ms slots)")

    # 2. An open-loop load run: send times are scheduled in advance, so a
    #    slow server shows up as latency, never as a thinner workload.
    generator = LoadGenerator(
        host, port, arrivals=PoissonArrivals(RATE, seed=SEED), connections=2
    )
    bids = synthesize_bids(
        server.topology, num_bids=NUM_BIDS,
        num_slots=config.slots_per_cycle, seed=SEED,
    )
    print(f"replaying {NUM_BIDS} bids at a mean {RATE:.0f}/sec "
          f"over {generator.connections} connections ...")
    load = await generator.run(bids)

    # 3. Drain: pending bids are decided, the open cycle commits, and the
    #    accounting identity is checked one last time.
    await server.stop()

    print("\nclient-side ledger (read off the wire):")
    print(f"  submitted {load.submitted}: accepted {load.accepted}, "
          f"rejected {load.rejected}, shed {load.shed}, "
          f"errored {load.errored}, lost {load.lost}")
    print(f"  {load.decisions_per_sec:.0f} decisions/sec; admission latency "
          f"p50 {load.latency.percentile(50.0) * 1e3:.1f}ms, "
          f"p99 {load.latency.percentile(99.0) * 1e3:.1f}ms, "
          f"p999 {load.latency.percentile(99.9) * 1e3:.1f}ms")
    load.assert_reconciled()

    counters = server.counters
    print("\nserver-side ledger (the gateway's own books):")
    print(f"  submitted {counters.submitted}: accepted {counters.accepted}, "
          f"rejected {counters.rejected}, shed {counters.shed}, "
          f"errored {counters.errored}")
    print(f"  {len(server.cycles)} billing cycle(s) committed, "
          f"profit {sum(c.profit for c in server.cycles):.2f}")
    counters.assert_reconciled(where="demo epilogue")
    print("\nboth ledgers reconcile: every bid came back as exactly one of "
          "accept/reject/shed/error.")


if __name__ == "__main__":
    asyncio.run(main())
