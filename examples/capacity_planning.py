"""Capacity planning: tuning Metis' knobs (theta and the tau rule).

The paper stresses that Metis is "easy-to-control": the provider picks the
number of alternation rounds (theta) and the bandwidth-limiting rule (tau)
to trade computing time against profit.  This example quantifies that
trade-off on a seeded SUB-B4 cycle:

* sweep theta and report profit vs wall-clock;
* compare the paper's min-utilization tau against the proportional rule.

Run:  python examples/capacity_planning.py
"""

import time

from repro import WorkloadConfig, generate_workload, sub_b4
from repro.core import Metis, MinUtilizationLimiter, ProportionalLimiter, SPMInstance
from repro.util.tables import format_table
from repro.workload import FlatRateValueModel

SEED = 2019


def build_instance() -> SPMInstance:
    topology = sub_b4()
    workload = generate_workload(
        topology,
        WorkloadConfig(
            num_requests=120,
            max_duration=4,
            value_model=FlatRateValueModel(0.6),
        ),
        rng=SEED,
    )
    return SPMInstance.build(topology, workload, k_paths=3)


def sweep_theta(instance: SPMInstance) -> None:
    rows = []
    for theta in (1, 5, 10, 20, 40):
        started = time.perf_counter()
        outcome = Metis(theta=theta, maa_rounds=3).solve(instance, rng=SEED)
        elapsed = time.perf_counter() - started
        rows.append(
            [
                theta,
                outcome.num_rounds,
                outcome.best.profit,
                outcome.best.num_accepted,
                elapsed,
            ]
        )
    print(
        format_table(
            ["theta", "rounds_run", "profit", "accepted", "seconds"],
            rows,
            title="Theta sweep (min-utilization tau)",
        )
    )


def compare_limiters(instance: SPMInstance) -> None:
    limiters = {
        "min-utilization (paper)": MinUtilizationLimiter(),
        "min-utilization step=2": MinUtilizationLimiter(step=2),
        "proportional 0.9": ProportionalLimiter(0.9),
        "proportional 0.7": ProportionalLimiter(0.7),
    }
    rows = []
    for name, limiter in limiters.items():
        started = time.perf_counter()
        outcome = Metis(theta=20, limiter=limiter, maa_rounds=3).solve(
            instance, rng=SEED
        )
        elapsed = time.perf_counter() - started
        rows.append(
            [name, outcome.num_rounds, outcome.best.profit, elapsed]
        )
    print(
        "\n"
        + format_table(
            ["tau rule", "rounds_run", "profit", "seconds"],
            rows,
            title="Bandwidth-limiter (tau) comparison at theta=20",
        )
    )


def main() -> None:
    instance = build_instance()
    print(f"instance: {instance}\n")
    sweep_theta(instance)
    compare_limiters(instance)
    print(
        "\nReading: a handful of rounds captures most of the profit; "
        "aggressive tau rules\nconverge in fewer rounds but can overshoot "
        "past the profitable core."
    )


if __name__ == "__main__":
    main()
