"""Profit study: Metis against every baseline across request loads on B4.

Reproduces the paper's headline comparison (Figs. 3a/5a condensed): for a
sweep of request counts, run Metis, the accept-everything optimum proxy
(MAA on all requests), MinCost and EcoFlow, and print who makes how much
profit.

Run:  python examples/profit_study_b4.py [K ...]
"""

import sys

from repro.baselines import solve_ecoflow, solve_mincost
from repro.core import Metis, SPMInstance
from repro.experiments.common import ExperimentConfig, make_instance
from repro.sim import evaluate_schedule
from repro.util.tables import format_table

DEFAULT_SWEEP = (100, 200, 400)


def study(request_counts: tuple[int, ...]) -> None:
    config = ExperimentConfig(topology="b4", request_counts=request_counts)
    rows = []
    for num_requests in request_counts:
        instance = make_instance(config, num_requests)

        outcome = Metis(theta=20, maa_rounds=3).solve(instance, rng=config.seed)
        metis = (
            evaluate_schedule("Metis", outcome.best.schedule)
            if outcome.best.schedule is not None
            else None
        )
        mincost = evaluate_schedule("MinCost", solve_mincost(instance))
        ecoflow = evaluate_schedule("EcoFlow", solve_ecoflow(instance).schedule)

        for metrics in filter(None, (metis, mincost, ecoflow)):
            rows.append(
                [
                    num_requests,
                    metrics.solution,
                    metrics.profit,
                    metrics.num_accepted,
                    metrics.cost,
                    metrics.utilization_mean,
                ]
            )

    print(
        format_table(
            ["requests", "solution", "profit", "accepted", "cost", "util_mean"],
            rows,
            title="Service profit on B4 (seeded synthetic billing cycle)",
        )
    )
    print(
        "\nReading: MinCost accepts everything on the cheapest paths and "
        "pays for it;\nEcoFlow only takes myopically profitable requests; "
        "Metis alternates MAA/TAA\nto keep the profitable mass and shed the "
        "money-losers."
    )


def main() -> None:
    sweep = tuple(int(arg) for arg in sys.argv[1:]) or DEFAULT_SWEEP
    study(sweep)


if __name__ == "__main__":
    main()
