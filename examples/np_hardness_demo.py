"""Theorem 1, executable: SUBSET-SUM decided by solving SPM.

The paper proves SPM NP-hard by reducing SUBSET-SUM to it.  This example
*runs* the reduction: it encodes SUBSET-SUM instances as single-link SPM
instances, solves them exactly, and reads the yes/no answer (and the
certifying subset) off the optimal service profit.

Run:  python examples/np_hardness_demo.py
"""

from repro.baselines import solve_opt_spm
from repro.core import spm_from_subset_sum, subset_from_solution

CASES = [
    # (values, target) — does a subset of `values` sum to `target`?
    ([3, 4, 5], 7),
    ([2, 3, 4], 5),
    ([4, 6], 7),
    ([5, 6, 7], 10),
    ([3, 5, 6, 7], 12),
]


def main() -> None:
    print("SUBSET-SUM via service-profit maximization (Theorem 1)\n")
    for values, target in CASES:
        instance, sigma = spm_from_subset_sum(values, target=target)
        result = solve_opt_spm(instance)
        is_yes = result.schedule.profit >= sigma - 1e-9

        line = f"values={values}, target={target}: "
        if is_yes:
            subset_idx = subset_from_solution(instance, result.schedule, target)
            subset = [values[i] for i in subset_idx]
            line += f"YES — subset {subset} (profit hit sigma={sigma:.4f})"
            assert sum(subset) == target
        else:
            line += (
                f"NO — max profit {result.schedule.profit:.4f} "
                f"< sigma={sigma:.4f}"
            )
        print(line)

    print(
        "\nEach instance is one inter-DC link, one time slot; request i "
        "demands a_i/target\nbandwidth and bids the same amount, with the "
        "link priced just below 1.  The\nprovider can reach profit sigma "
        "iff some subset of bids exactly fills one\nbandwidth unit — i.e. "
        "iff SUBSET-SUM says yes.  A polynomial SPM solver would\ndecide "
        "SUBSET-SUM, hence SPM is NP-hard."
    )


if __name__ == "__main__":
    main()
