"""Quickstart: maximize service profit on Google's B4 WAN.

Builds the B4 topology, draws a synthetic billing cycle of requests,
runs the Metis framework, and prints the provider's decisions.

Run:  python examples/quickstart.py
"""

from repro import WorkloadConfig, b4, generate_workload
from repro.core import Metis, SPMInstance
from repro.sim import evaluate_schedule

SEED = 7


def main() -> None:
    # 1. The network: 12 data centers, 19 bidirectional links, regional
    #    bandwidth prices (1 unit = 10 Gbps).
    topology = b4()
    print(f"network: {topology}")

    # 2. One billing cycle of customer requests (12 monthly slots, Poisson
    #    arrivals, rates 0.1-5 Gbps, bids from the default value model).
    workload = generate_workload(
        topology, WorkloadConfig(num_requests=120, max_duration=4), rng=SEED
    )
    print(f"workload: {len(workload)} requests, total bids {workload.total_value:.1f}")

    # 3. Pre-enumerate candidate paths and run the alternation.
    instance = SPMInstance.build(topology, workload, k_paths=3)
    outcome = Metis(theta=20, maa_rounds=3).solve(instance, rng=SEED)

    best = outcome.best
    if best.schedule is None:
        print("no profitable schedule exists; the provider should decline all bids")
        return

    metrics = evaluate_schedule("Metis", best.schedule)
    print(f"\nbest decision found by round {best.round_index} ({best.source}):")
    print(f"  accepted  : {metrics.num_accepted}/{metrics.num_requests} requests")
    print(f"  revenue   : {metrics.revenue:10.2f}")
    print(f"  cost      : {metrics.cost:10.2f}  ({metrics.total_bandwidth_units} bandwidth units)")
    print(f"  profit    : {metrics.profit:10.2f}")
    print(f"  mean link utilization: {metrics.utilization_mean:.1%}")

    print("\npurchased bandwidth per link (units of 10 Gbps):")
    for (tail, head), units in sorted(best.capacities.items()):
        if units:
            print(f"  {tail:>5} -> {head:<5} {units:3d}")

    declined = best.schedule.declined_ids
    print(f"\ndeclined requests: {len(declined)}")
    for request_id in declined[:5]:
        req = instance.request(request_id)
        print(
            f"  #{request_id}: {req.source}->{req.dest} "
            f"rate {req.rate:.2f} bid {req.value:.2f}"
        )
    if len(declined) > 5:
        print(f"  ... and {len(declined) - 5} more")


if __name__ == "__main__":
    main()
