"""Risk analysis on a committed schedule: price moves and link failures.

Bandwidth leases run for a whole billing cycle, so a provider that commits
to a schedule carries two risks the paper's model makes quantifiable:

* ISP repricing — revenue is locked at bid time while cost scales with
  the lease price (the break-even multiplier says how much headroom the
  schedule has);
* a link failing for the cycle — traffic must be rerouted onto surviving
  candidate paths within (or beyond) the already-purchased bandwidth.

Run:  python examples/risk_analysis.py
"""

from repro.core import Metis
from repro.experiments.common import ExperimentConfig, make_instance
from repro.sim import link_failure_impact, price_sensitivity
from repro.util.tables import format_table

SEED = 3


def main() -> None:
    config = ExperimentConfig(topology="b4", request_counts=(200,), seed=SEED)
    instance = make_instance(config, 200)
    outcome = Metis(theta=15, maa_rounds=3).solve(instance, rng=SEED)
    schedule = outcome.best.schedule
    assert schedule is not None
    print(
        f"committed schedule: profit {schedule.profit:.2f}, "
        f"{schedule.num_accepted} accepted, cost {schedule.cost:.2f}\n"
    )

    # --- price risk -------------------------------------------------------
    points, break_even = price_sensitivity(
        schedule, multipliers=(0.75, 1.0, 1.25, 1.5, 2.0)
    )
    print(
        format_table(
            ["price multiplier", "cost", "profit"],
            [[p.multiplier, p.cost, p.profit] for p in points],
            title="ISP repricing sweep",
        )
    )
    print(f"break-even multiplier: {break_even:.2f}x current prices\n")

    # --- failure risk -----------------------------------------------------
    # Fail each of the three most-purchased links in turn.
    busiest = sorted(
        (key for key, units in schedule.charged.items() if units > 0),
        key=lambda key: -schedule.charged[key],
    )[:3]
    rows = []
    for link in busiest:
        strict = link_failure_impact(schedule, link)
        flexible = link_failure_impact(schedule, link, allow_new_purchases=True)
        rows.append(
            [
                f"{link[0]}->{link[1]}",
                len(strict.affected_requests),
                len(strict.dropped),
                strict.new_profit,
                flexible.new_profit,
                flexible.extra_units_bought,
            ]
        )
    print(
        format_table(
            [
                "failed link",
                "affected",
                "dropped",
                "profit (no repurchase)",
                "profit (repurchase)",
                "extra units",
            ],
            rows,
            title="Cycle-long single-link failures (busiest links)",
        )
    )
    print(
        "\nReading: rerouting within already-paid bandwidth saves most of "
        "the revenue;\nallowing emergency purchases trades capex for the "
        "remainder."
    )


if __name__ == "__main__":
    main()
