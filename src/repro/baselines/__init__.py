"""The comparison solutions of the paper's evaluation (§V-A).

* :func:`solve_mincost` — fixed-rule scheduling on cheapest paths;
* :func:`solve_amoeba` — online admission under fixed bandwidth
  (the deadline-guaranteeing scheduler of Zhang et al., EuroSys'15,
  reduced to the admission role it plays in this paper's evaluation);
* :func:`solve_ecoflow` — per-request greedy accept-if-profitable
  (Lin et al., ACM MM'15, likewise reduced);
* :func:`solve_opt_spm` / :func:`solve_opt_rl_spm` — the exact ILP optima,
  the paper's OPT(SPM) and OPT(RL-SPM).
"""

from repro.baselines.mincost import solve_mincost
from repro.baselines.amoeba import solve_amoeba
from repro.baselines.ecoflow import solve_ecoflow
from repro.baselines.opt import solve_opt_rl_spm, solve_opt_spm

__all__ = [
    "solve_mincost",
    "solve_amoeba",
    "solve_ecoflow",
    "solve_opt_spm",
    "solve_opt_rl_spm",
]
