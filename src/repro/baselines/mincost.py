"""MinCost — the fixed-rule baseline (paper §V-A, solution 1).

"Using fixed rules in scheduling, it always selects the path with the least
bandwidth price (i.e., min-cost path) to deliver traffic data between data
centers.  In our evaluation, it reserves exclusive bandwidth for users on
the min-cost paths."

Every request is accepted and pinned to its cheapest candidate path; the
provider purchases whatever that routing demands.  Two reservation modes:

* ``sharing="peak"`` (default): like every other solution, the purchased
  bandwidth of an edge is the ceiling of its *peak* load over the cycle —
  reservations in disjoint windows share units;
* ``sharing="exclusive"``: the literal exclusive-reservation reading — each
  user's bandwidth is dedicated for the whole billing cycle, so an edge is
  charged the ceiling of the *sum of rates* of all reservations crossing
  it, regardless of time overlap.

The gap to MAA (Fig. 4a) comes from the rule's blindness to how concurrent
windows stack on an edge: the LP spreads temporally-overlapping requests
across alternate paths to flatten peaks, the fixed rule cannot.
"""

from __future__ import annotations

import math

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule

__all__ = ["solve_mincost"]


def solve_mincost(instance: SPMInstance, *, sharing: str = "peak") -> Schedule:
    """Accept every request on its cheapest path.

    Candidate paths are pre-sorted by cost (Yen's enumeration), so the
    cheapest path is index 0.
    """
    if sharing not in ("peak", "exclusive"):
        raise ValueError(f"sharing must be 'peak' or 'exclusive', got {sharing!r}")
    assignment = {req.request_id: 0 for req in instance.requests}
    if sharing == "peak":
        return Schedule(instance, assignment)

    # Exclusive mode: charge the full-cycle sum of reserved rates per edge.
    reserved = [0.0] * instance.num_edges
    for req in instance.requests:
        for edge_idx in instance.path_edges[req.request_id][0]:
            reserved[int(edge_idx)] += req.rate
    charged = {
        instance.edges[idx]: int(math.ceil(reserved[idx] - 1e-9))
        for idx in range(instance.num_edges)
    }
    return Schedule(instance, assignment, charged=charged)
