"""Amoeba — online admission under fixed bandwidth (paper §V-A, solution 2).

Amoeba (Zhang et al., EuroSys'15) guarantees deadlines for the transfers it
admits: each arriving request is accepted iff the network can still
accommodate it, and admission decisions are never revoked.  In this paper's
evaluation it plays exactly that role — "an Inter-DC flow scheduler to
satisfy as many user requests as possible under a fixed amount of
bandwidth", processing requests "one by one to accept the ones that can be
accommodated by the residual bandwidth without considering future
requests".

This implementation processes requests in arrival (id) order; for each, it
scans the candidate paths cheapest-first and admits the request on the
first path whose residual capacity covers the request's rate over its whole
active window.  Requests that fit on no path are declined.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import AlgorithmError

__all__ = ["solve_amoeba", "AmoebaResult"]

EdgeKey = tuple

_CAP_TOL = 1e-9


@dataclass
class AmoebaResult:
    """Outcome of one Amoeba run under fixed ``capacities``."""

    schedule: Schedule
    capacities: dict[EdgeKey, int]

    @property
    def revenue(self) -> float:
        return self.schedule.revenue

    @property
    def accepted_ids(self) -> list[int]:
        return self.schedule.accepted_ids


def solve_amoeba(
    instance: SPMInstance, capacities: dict[EdgeKey, int]
) -> AmoebaResult:
    """Run the online first-fit admission over ``capacities``.

    ``capacities`` must map every directed edge to a non-negative integer
    bandwidth (the paper's Fig. 4 setup uses a uniform 10 units).
    """
    caps = np.empty(instance.num_edges)
    for idx, key in enumerate(instance.edges):
        cap = capacities.get(key)
        if cap is None or cap < 0:
            raise AlgorithmError(
                f"Amoeba needs a finite non-negative capacity per edge; "
                f"edge {key!r} has {cap!r}"
            )
        caps[idx] = float(cap)

    residual = np.tile(caps[:, None], (1, instance.num_slots))
    assignment: dict[int, int | None] = {}
    for req in sorted(instance.requests, key=lambda r: r.request_id):
        chosen = None
        for path_idx in range(instance.num_paths(req.request_id)):
            edge_idx = instance.path_edges[req.request_id][path_idx]
            window = residual[edge_idx, req.start : req.end + 1]
            if window.size == 0 or window.min() >= req.rate - _CAP_TOL:
                chosen = path_idx
                break
        assignment[req.request_id] = chosen
        if chosen is not None:
            edge_idx = instance.path_edges[req.request_id][chosen]
            residual[edge_idx, req.start : req.end + 1] -= req.rate

    schedule = Schedule(instance, assignment)
    schedule.check_capacities({k: int(v) for k, v in capacities.items()})
    return AmoebaResult(schedule=schedule, capacities=dict(capacities))
