"""The exact optima: OPT(SPM) and OPT(RL-SPM) (paper §V-B.1).

Both are the ILPs of §II solved to optimality — the paper uses Gurobi, we
use HiGHS through :mod:`repro.lp` (cross-checked against the from-scratch
branch-and-bound solver in the tests).  OPT(SPM) jointly optimizes
acceptance, routing and purchased bandwidth; OPT(RL-SPM) is the "current
service mode" yardstick that must accept *every* request and can only
optimize routing and bandwidth.

Exact solves are exponential in the worst case (SPM is NP-hard, Theorem 1):
the paper reports >1000 s at 400 requests.  ``time_limit`` keeps benchmark
sweeps bounded; hitting it raises rather than silently returning a
suboptimal answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.formulations import (
    assignment_from_solution,
    build_rl_spm,
    build_spm,
)
from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError
from repro.lp.result import SolveStatus

__all__ = ["OptResult", "solve_opt_spm", "solve_opt_rl_spm"]


@dataclass
class OptResult:
    """An exact optimum: the schedule and the solver's objective value."""

    schedule: Schedule
    objective: float

    @property
    def profit(self) -> float:
        return self.schedule.profit


def solve_opt_spm(
    instance: SPMInstance, *, time_limit: float | None = None
) -> OptResult:
    """The exact SPM optimum: accept/route/purchase to maximize profit."""
    problem = build_spm(instance, integral=True)
    solution = problem.model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("SPM ILP is infeasible")
    if not solution.is_optimal:
        raise SolverError(
            f"OPT(SPM) did not reach optimality (status {solution.status}); "
            "raise time_limit or shrink the instance"
        )
    schedule = _schedule_from(problem, solution, instance)
    return OptResult(schedule=schedule, objective=float(solution.objective))


def solve_opt_rl_spm(
    instance: SPMInstance, *, time_limit: float | None = None
) -> OptResult:
    """The exact RL-SPM optimum: accept everything, minimize cost.

    The returned ``objective`` is the minimum cost; the schedule's profit is
    ``total request value - objective``.
    """
    problem = build_rl_spm(instance, integral=True)
    solution = problem.model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("RL-SPM ILP is infeasible")
    if not solution.is_optimal:
        raise SolverError(
            f"OPT(RL-SPM) did not reach optimality (status {solution.status}); "
            "raise time_limit or shrink the instance"
        )
    schedule = _schedule_from(problem, solution, instance)
    return OptResult(schedule=schedule, objective=float(solution.objective))


def _schedule_from(problem, solution, instance: SPMInstance) -> Schedule:
    """Build a schedule from an integral solution.

    The purchased bandwidth is recomputed as ``ceil(peak load)`` per edge
    rather than read from the solver's ``c`` variables: at an optimum the
    two coincide on every priced edge, and recomputing also trims the slack
    HiGHS may leave in ``c`` on zero-price or zero-load edges.
    """
    assignment = assignment_from_solution(problem, solution)
    return Schedule(instance, assignment)
