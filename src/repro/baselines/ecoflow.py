"""EcoFlow — greedy profit-aware admission (paper §V-A, solution 3).

EcoFlow (Lin et al., ACM MM'15) schedules inter-DC flows economically,
avoiding increases in charged bandwidth.  In this paper's evaluation "it
handles user requests one by one and accepts the user requests that
generate higher service profits".

This implementation processes requests in arrival (id) order, maintaining
the integer bandwidth already purchased per edge.  For each request it
evaluates every candidate path's *marginal cost* — the extra bandwidth
units the path's peak-load increase forces the provider to buy, priced per
edge — picks the cheapest, and accepts iff the bid strictly exceeds that
marginal cost.

The greedy is myopic in exactly the way the paper exploits (Fig. 5):
the first request to touch an expensive edge is charged a whole unit of
that edge and usually declined, even when later requests would have shared
the unit profitably — so EcoFlow under-accepts relative to Metis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule

__all__ = ["solve_ecoflow", "EcoFlowResult"]

_CEIL_TOL = 1e-9


@dataclass
class EcoFlowResult:
    """Outcome of one EcoFlow run."""

    schedule: Schedule

    @property
    def profit(self) -> float:
        return self.schedule.profit

    @property
    def accepted_ids(self) -> list[int]:
        return self.schedule.accepted_ids


def solve_ecoflow(instance: SPMInstance) -> EcoFlowResult:
    """Run the greedy accept-if-profitable pass over all requests."""
    loads = np.zeros((instance.num_edges, instance.num_slots))
    charged = np.zeros(instance.num_edges, dtype=int)
    assignment: dict[int, int | None] = {}

    for req in sorted(instance.requests, key=lambda r: r.request_id):
        best_path = None
        best_marginal = math.inf
        for path_idx in range(instance.num_paths(req.request_id)):
            marginal = _marginal_cost(instance, loads, charged, req, path_idx)
            if marginal < best_marginal:
                best_marginal = marginal
                best_path = path_idx
        if best_path is not None and req.value > best_marginal:
            assignment[req.request_id] = best_path
            edge_idx = instance.path_edges[req.request_id][best_path]
            loads[edge_idx, req.start : req.end + 1] += req.rate
            peaks = loads[edge_idx].max(axis=1)
            charged[edge_idx] = np.maximum(
                charged[edge_idx], np.ceil(peaks - _CEIL_TOL).astype(int)
            )
        else:
            assignment[req.request_id] = None

    return EcoFlowResult(schedule=Schedule(instance, assignment))


def _marginal_cost(
    instance: SPMInstance,
    loads: np.ndarray,
    charged: np.ndarray,
    req,
    path_idx: int,
) -> float:
    """Extra bandwidth cost of routing ``req`` over path ``path_idx`` now."""
    total = 0.0
    for edge_idx in instance.path_edges[req.request_id][path_idx]:
        window = loads[edge_idx, req.start : req.end + 1]
        new_peak = float(window.max()) + req.rate if window.size else req.rate
        new_units = int(math.ceil(new_peak - _CEIL_TOL))
        extra = max(0, new_units - int(charged[edge_idx]))
        total += extra * float(instance.prices[edge_idx])
    return total
