"""The broker's write-ahead log: length-prefixed, checksummed records.

Every record is framed as an 8-byte little-endian header — payload length
then CRC32 of the payload — followed by the UTF-8 JSON payload.  Appends
always reach the OS (the handle is flushed per record, so a *process*
crash loses nothing already appended); how far each record is pushed
toward the platters is the ``fsync`` policy:

* ``"always"`` — fsync after every record (durable against power loss,
  the slowest policy);
* ``"batch"`` — fsync only at :meth:`Journal.commit` boundaries (the
  broker calls it once per billing-cycle commit);
* ``"never"`` — flush but never fsync (durable against process death
  only — the benchmark baseline for the durability tax).

A crash can still tear the *tail* of the file: a half-written header, a
payload shorter than its declared length, or a checksum mismatch from a
torn sector.  :func:`scan_wal` reads the longest valid prefix and reports
where it ends; :meth:`Journal.open` truncates the file back to that point
before appending, so a journal is self-healing across crashes — earlier
records are never touched (the log is append-only) and a corrupt tail
costs at most the records that were never acknowledged as committed.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import JournalError

__all__ = ["Journal", "scan_wal", "read_wal", "FSYNC_POLICIES"]

#: Valid values of the ``fsync`` policy (see module docstring).
FSYNC_POLICIES = ("never", "batch", "always")

#: ``<payload length, payload crc32>`` — both unsigned 32-bit little-endian.
_HEADER = struct.Struct("<II")


def _encode(record: dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan_wal(path: str | Path) -> tuple[list[dict[str, Any]], int, bool]:
    """Read the longest valid record prefix of a journal file.

    Returns ``(records, good_offset, truncated)``: the decoded records,
    the byte offset where the valid prefix ends, and whether anything
    after it (a torn or corrupt tail) was dropped.  A missing file is an
    empty journal, not an error.
    """
    path = Path(path)
    if not path.exists():
        return [], 0, False
    data = path.read_bytes()
    records: list[dict[str, Any]] = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        stop = start + length
        if stop > len(data):
            break  # torn payload
        payload = data[start:stop]
        if zlib.crc32(payload) != crc:
            break  # corrupt record — everything after it is untrusted
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(record, dict):
            break
        records.append(record)
        offset = stop
    return records, offset, offset < len(data)


def read_wal(path: str | Path) -> list[dict[str, Any]]:
    """The valid records of a journal (torn/corrupt tail silently dropped)."""
    records, _, _ = scan_wal(path)
    return records


class Journal:
    """An append-only record log with a configurable fsync policy.

    ``fsync_hook`` exists for the fault-injection harness
    (:mod:`repro.state.faults`): it replaces :func:`os.fsync` so tests can
    make durability syncs fail on demand.  A failed sync raises
    :class:`~repro.exceptions.JournalError` — the caller must not
    acknowledge the records it was trying to make durable.

    ``write_hook`` is the harness's *torn-write* seam: called per append
    with ``(handle, frame)``; returning ``True`` means the hook wrote
    (some prefix of) the frame itself — simulating a crash mid-``write``
    that leaves a partial record for :func:`scan_wal` to heal — and
    returning ``False`` lets the journal write normally.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "batch",
        fsync_hook: Callable[[int], None] | None = None,
        write_hook: Callable[[Any, bytes], bool] | None = None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = Path(path)
        self.fsync = fsync
        self._fsync_hook = fsync_hook if fsync_hook is not None else os.fsync
        self._write_hook = write_hook
        self._handle = None
        self.records_appended = 0

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        fsync: str = "batch",
        fsync_hook: Callable[[int], None] | None = None,
        write_hook: Callable[[Any, bytes], bool] | None = None,
    ) -> "Journal":
        """Open ``path`` for appending, healing any torn/corrupt tail first."""
        journal = cls(
            path, fsync=fsync, fsync_hook=fsync_hook, write_hook=write_hook
        )
        _, good_offset, truncated = scan_wal(journal.path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        handle = open(journal.path, "ab")
        if truncated:
            handle.truncate(good_offset)
            handle.seek(good_offset)
        journal._handle = handle
        return journal

    def _require_open(self):
        if self._handle is None:
            raise JournalError(f"journal {self.path} is not open")
        return self._handle

    def append(self, record: dict[str, Any]) -> int:
        """Append one record; returns the bytes written.

        The record always reaches the OS (flushed) before this returns;
        with ``fsync="always"`` it is also synced to stable storage.
        """
        handle = self._require_open()
        frame = _encode(record)
        if self._write_hook is None or not self._write_hook(handle, frame):
            handle.write(frame)
        handle.flush()
        self.records_appended += 1
        if self.fsync == "always":
            self._sync(handle)
        return len(frame)

    def commit(self) -> None:
        """A durability barrier: sync under the ``"batch"`` policy.

        The broker calls this once per billing-cycle commit record, so
        ``"batch"`` amortizes one fsync over a whole cycle of decisions.
        """
        handle = self._require_open()
        handle.flush()
        if self.fsync == "batch":
            self._sync(handle)

    def sync(self) -> None:
        """Force an fsync *regardless* of the configured policy.

        The drain-then-flush hook: a gracefully stopping server (the
        gateway's SIGINT/SIGTERM path) calls this after its final commit
        so even an ``fsync="never"`` journal is durable before the
        process exits — the one moment the policy's throughput trade-off
        no longer buys anything.
        """
        handle = self._require_open()
        handle.flush()
        self._sync(handle)

    def _sync(self, handle) -> None:
        try:
            self._fsync_hook(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"fsync of journal {self.path} failed: {exc}"
            ) from exc

    @property
    def size_bytes(self) -> int:
        """The journal file's current size (flushed writes included)."""
        if self._handle is not None:
            self._handle.flush()
        return self.path.stat().st_size if self.path.exists() else 0

    def close(self, *, sync: bool = False) -> None:
        """Close the journal; with ``sync=True`` fsync first (see :meth:`sync`)."""
        if self._handle is not None:
            self._handle.flush()
            if sync:
                self._sync(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "open" if self._handle is not None else "closed"
        return (
            f"Journal({str(self.path)!r}, fsync={self.fsync!r}, {state}, "
            f"appended={self.records_appended})"
        )
