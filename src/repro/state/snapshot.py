"""Atomic broker-state snapshots: tmp + rename publication.

A snapshot collapses the WAL prefix it covers: recovery loads the latest
snapshot and only replays journal records past it, so restart cost stays
bounded no matter how long the broker has been running.

Publication is crash-atomic the classic way: the state is serialized to a
temporary file *in the target directory*, fsynced, and ``os.replace``d
over the previous snapshot — readers see either the old complete snapshot
or the new complete snapshot, never a torn mix.  A checksum over the
canonical payload bytes guards against the remaining hazard (a snapshot
corrupted at rest); :meth:`SnapshotStore.load` verifies it and raises
:class:`~repro.exceptions.SnapshotError`, which recovery treats as "no
snapshot" and falls back to a full WAL replay.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import zlib
from pathlib import Path
from typing import Any

from repro.exceptions import SnapshotError

__all__ = ["SnapshotStore", "snapshot_path"]

_SNAPSHOT_SUFFIX = ".snapshot.json"


def snapshot_path(wal_path: str | Path) -> Path:
    """The snapshot file that shadows a given journal path."""
    wal_path = Path(wal_path)
    return wal_path.with_name(wal_path.name + _SNAPSHOT_SUFFIX)


def _canonical(state: dict[str, Any]) -> bytes:
    return json.dumps(state, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class SnapshotStore:
    """Publishes and loads one atomically-replaced snapshot file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def publish(self, state: dict[str, Any]) -> float:
        """Atomically replace the snapshot with ``state``; returns seconds.

        The checksum is computed over the canonical serialization of
        ``state`` and stored alongside it, so a load can prove integrity
        without trusting the filesystem.
        """
        t0 = time.perf_counter()
        payload = {"checksum": zlib.crc32(_canonical(state)), "state": state}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return time.perf_counter() - t0

    def load(self) -> dict[str, Any] | None:
        """The last published state, ``None`` if never published.

        Raises :class:`SnapshotError` on a snapshot that does not parse or
        fails its checksum — the caller decides whether that is fatal
        (recovery falls back to the WAL).
        """
        if not self.path.exists():
            return None
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"snapshot {self.path} unreadable: {exc}") from exc
        if not isinstance(payload, dict) or "state" not in payload:
            raise SnapshotError(f"snapshot {self.path} has no state payload")
        state = payload["state"]
        if payload.get("checksum") != zlib.crc32(_canonical(state)):
            raise SnapshotError(f"snapshot {self.path} fails its checksum")
        return state

    def __repr__(self) -> str:
        return f"SnapshotStore({str(self.path)!r})"
