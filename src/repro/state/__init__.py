"""Durability for the serving layer: journaling, snapshots, recovery.

The broker (:mod:`repro.service`) writes through this package when
``BrokerConfig.wal_path`` is set: every admission decision and bandwidth
purchase lands in an append-only write-ahead log
(:mod:`repro.state.journal`), completed cycles are folded into atomic
snapshots (:mod:`repro.state.snapshot`), and a crashed run resumes
bit-identically from ``Broker.run(resume=True)``
(:mod:`repro.state.recovery`).  :mod:`repro.state.faults` is the
fault-injection harness the crash-matrix tests drive.
"""

from repro.state.faults import FaultPlan, SimulatedCrash, corrupt_tail, truncate_tail
from repro.state.journal import FSYNC_POLICIES, Journal, read_wal, scan_wal
from repro.state.recovery import (
    WAL_FORMAT,
    RecoveredState,
    batch_to_record,
    broker_snapshot_state,
    config_fingerprint,
    cycle_from_record,
    cycle_to_record,
    recover,
)
from repro.state.snapshot import SnapshotStore, snapshot_path

__all__ = [
    "Journal",
    "scan_wal",
    "read_wal",
    "FSYNC_POLICIES",
    "SnapshotStore",
    "snapshot_path",
    "WAL_FORMAT",
    "RecoveredState",
    "config_fingerprint",
    "batch_to_record",
    "broker_snapshot_state",
    "cycle_to_record",
    "cycle_from_record",
    "recover",
    "FaultPlan",
    "SimulatedCrash",
    "truncate_tail",
    "corrupt_tail",
]
