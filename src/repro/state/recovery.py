"""Rebuilding a broker run from its snapshot and journal.

The broker's durable state is a sequence of *committed billing cycles*:
the admission queue drains inside every cycle and the charging ledger
restarts at each cycle boundary, so the cycle is the natural recovery
unit.  Recovery therefore:

1. loads the latest snapshot (tolerating a missing or corrupt one — the
   journal alone is sufficient, just slower);
2. replays the journal's ``cycle`` commit records past the snapshot,
   ignoring orphaned ``batch`` records that belong to a cycle whose
   commit never landed (that cycle's decisions were never acknowledged);
3. returns the longest contiguous prefix of committed cycles plus the
   index the broker should resume from.

The resumed run is **bit-identical** to an uninterrupted one:
:meth:`~repro.service.ingest.ArrivalSource.cycle` is deterministic in the
cycle index, each cycle starts from empty committed state, and committed
results round-trip exactly through JSON (``repr``-based float encoding),
so ``recovered prefix + deterministic re-run == uninterrupted run`` —
the crash-matrix tests assert equality of profit, decision log and
purchased capacities, not approximation.

A fingerprint of the decision-relevant configuration (topology, seeds,
workload shape — *not* execution levers like ``workers`` or
``cache_size``) is stamped into the journal and every snapshot; resuming
under a different configuration raises
:class:`~repro.exceptions.RecoveryError` instead of silently splicing
incompatible histories.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import RecoveryError, SnapshotError
from repro.state.journal import scan_wal
from repro.state.snapshot import SnapshotStore, snapshot_path

__all__ = [
    "WAL_FORMAT",
    "RecoveredState",
    "config_fingerprint",
    "cycle_to_record",
    "cycle_from_record",
    "broker_snapshot_state",
    "recover",
]

#: Journal/snapshot schema version; bumped on incompatible record changes.
WAL_FORMAT = 1


def config_fingerprint(config) -> str:
    """A stable digest of everything that pins the broker's decisions.

    Execution levers that cannot change which bids arrive or how a batch
    is decided (``workers``, ``cache_size``, ``fast_path``, ``wal_path``,
    ``snapshot_every``, ``fsync``) are deliberately excluded, as is
    ``num_cycles`` — a resumed run may extend the horizon of the run it
    continues.
    """
    from repro.net.topology import Topology

    topology = config.topology
    topology_key = topology.name if isinstance(topology, Topology) else topology
    parts = (
        ("format", WAL_FORMAT),
        ("topology", topology_key),
        ("slots_per_cycle", config.slots_per_cycle),
        ("window", config.window),
        ("requests_per_cycle", config.requests_per_cycle),
        ("seed", config.seed),
        ("k_paths", config.k_paths),
        ("max_duration", config.max_duration),
        ("value_model", repr(config.value_model)),
        ("queue_capacity", config.queue_capacity),
        ("max_batch", config.max_batch),
    )
    digest = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=16)
    return digest.hexdigest()


# ----------------------------------------------------------------- records


def batch_to_record(record) -> dict[str, Any]:
    """A journal ``batch`` record: one admission decision + its purchase."""
    from dataclasses import asdict

    return {"type": "batch", **asdict(record)}


def cycle_to_record(result) -> dict[str, Any]:
    """A journal ``cycle`` commit record: the full committed cycle ledger."""
    from dataclasses import asdict

    return {
        "type": "cycle",
        "cycle": result.cycle,
        "num_requests": result.num_requests,
        "accepted": result.accepted,
        "declined": result.declined,
        "shed": result.shed,
        "revenue": result.revenue,
        "cost": result.cost,
        "profit": result.profit,
        "wall_seconds": result.wall_seconds,
        "batches": [asdict(b) for b in result.batches],
        "assignment": {
            str(request_id): path for request_id, path in result.assignment.items()
        },
        "purchased": {str(edge): units for edge, units in result.purchased.items()},
    }


def cycle_from_record(record: dict[str, Any]):
    """Rebuild a :class:`~repro.service.broker.CycleResult` from its record."""
    from repro.service.broker import CycleResult
    from repro.service.telemetry import BatchRecord

    return CycleResult(
        cycle=int(record["cycle"]),
        num_requests=int(record["num_requests"]),
        accepted=int(record["accepted"]),
        declined=int(record["declined"]),
        shed=int(record["shed"]),
        revenue=record["revenue"],
        cost=record["cost"],
        profit=record["profit"],
        wall_seconds=record["wall_seconds"],
        batches=[BatchRecord(**b) for b in record["batches"]],
        assignment={
            int(request_id): (None if path is None else int(path))
            for request_id, path in record["assignment"].items()
        },
        purchased={
            int(edge): units for edge, units in record.get("purchased", {}).items()
        },
    )


def broker_snapshot_state(fingerprint: str, config, cycles) -> dict[str, Any]:
    """The snapshot payload: everything needed to resume mid-run.

    Snapshots land only at cycle boundaries, where the admission queue is
    drained and the next cycle's ledger is empty — so ``queue`` is
    recorded (for the invariant, and for any future mid-cycle snapshots)
    but always empty today.
    """
    from repro.service.ingest import _CYCLE_SEED_STRIDE

    return {
        "format_version": WAL_FORMAT,
        "fingerprint": fingerprint,
        "next_cycle": len(cycles),
        "clock": {
            "next_cycle": len(cycles),
            "slot": 0,
            "slots_per_cycle": config.slots_per_cycle,
            "window": config.window,
        },
        "queue": [],
        "seeds": {"seed": config.seed, "cycle_seed_stride": _CYCLE_SEED_STRIDE},
        "purchased": {
            str(c.cycle): {str(edge): units for edge, units in c.purchased.items()}
            for c in cycles
        },
        "telemetry": {
            "batches": sum(len(c.batches) for c in cycles),
            "decisions": sum(len(c.assignment) for c in cycles),
            "profit": sum(c.profit for c in cycles),
        },
        "cycles": [cycle_to_record(c) for c in cycles],
    }


# ---------------------------------------------------------------- recovery


@dataclass
class RecoveredState:
    """What recovery reconstructed, plus how it got there."""

    cycles: list
    next_cycle: int
    recovered_batches: int
    wal_records: int
    wal_truncated: bool
    used_snapshot: bool

    def __repr__(self) -> str:
        return (
            f"RecoveredState(cycles={len(self.cycles)}, "
            f"batches={self.recovered_batches}, "
            f"snapshot={self.used_snapshot}, truncated={self.wal_truncated})"
        )


def recover(wal_path: str | Path, *, fingerprint: str) -> RecoveredState:
    """Reconstruct the committed-cycle prefix from snapshot + WAL tail.

    A missing journal (first run) recovers to the empty state.  A corrupt
    snapshot is discarded and the whole journal replayed instead; a
    fingerprint mismatch in either artifact raises
    :class:`RecoveryError`.
    """
    wal_path = Path(wal_path)
    by_cycle: dict[int, Any] = {}
    used_snapshot = False
    try:
        snapshot = SnapshotStore(snapshot_path(wal_path)).load()
    except SnapshotError:
        snapshot = None
    if snapshot is not None:
        if snapshot.get("fingerprint") != fingerprint:
            raise RecoveryError(
                f"snapshot {snapshot_path(wal_path)} was written by a broker "
                "with a different configuration; refusing to resume"
            )
        used_snapshot = True
        for record in snapshot.get("cycles", ()):
            result = cycle_from_record(record)
            by_cycle[result.cycle] = result

    records, _, truncated = scan_wal(wal_path)
    for record in records:
        kind = record.get("type")
        if kind == "open":
            if record.get("fingerprint") != fingerprint:
                raise RecoveryError(
                    f"journal {wal_path} was written by a broker with a "
                    "different configuration; refusing to resume"
                )
            if record.get("format") != WAL_FORMAT:
                raise RecoveryError(
                    f"journal {wal_path} uses WAL format "
                    f"{record.get('format')!r}; this build reads {WAL_FORMAT}"
                )
        elif kind == "cycle":
            result = cycle_from_record(record)
            by_cycle[result.cycle] = result
        # "batch" records are the per-decision trail; any batch whose
        # cycle commit never landed belongs to an unacknowledged cycle
        # and is deliberately ignored — the cycle re-runs identically.

    cycles = []
    index = 0
    while index in by_cycle:
        cycles.append(by_cycle[index])
        index += 1
    return RecoveredState(
        cycles=cycles,
        next_cycle=index,
        recovered_batches=sum(len(c.batches) for c in cycles),
        wal_records=len(records),
        wal_truncated=truncated,
        used_snapshot=used_snapshot,
    )
