"""Fault injection for the durability layer.

The crash matrix in ``tests/test_state_recovery.py`` needs to kill the
broker at precise points — after the N-th journaled decision, after a
cycle commit, inside a solver-pool worker mid-solve — and to damage the
journal the way real crashes do (torn tails, corrupt sectors, failing
fsyncs).  :class:`FaultPlan` packages those trigger points; the broker
and worker pool consult it at the exact seams a real fault would hit, so
the tests exercise the same code paths production crashes would.

Process "kills" are simulated two ways, matching what each fault models:

* in the serving process, :class:`SimulatedCrash` is raised *after* the
  triggering journal append has been flushed to the OS — exactly what a
  ``SIGKILL`` leaves behind (page cache intact, nothing past the flush);
* in a pool worker, :meth:`FaultPlan.maybe_kill_worker` calls
  ``os._exit`` — a genuine abrupt process death that the pool must
  survive by restarting its executor.

The worker kill fires **once**, latched through an ``O_EXCL`` file
(``once_path``), so the restarted worker that retries the same cycle
does not die again — without the latch a kill would loop until the
pool's restart budget ran out.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "truncate_tail",
    "corrupt_tail",
]


class SimulatedCrash(RuntimeError):
    """An injected process death; never raised outside the fault harness."""


@dataclass
class FaultPlan:
    """Where (and how) to hurt the broker.

    All triggers are optional and independent; counters live on the plan,
    so one plan instance describes one crash.  The plan is pickled into
    pool workers — only the latch-file triggers (``kill_worker_cycle``,
    ``hang_solver_seconds``, ``slow_worker_seconds``) matter there, which
    is why each coordinates through a path rather than in-memory state.
    """

    #: Raise :class:`SimulatedCrash` after journaling this many ``batch``
    #: records (1-based, counted across the whole run).
    crash_after_batches: int | None = None
    #: Raise :class:`SimulatedCrash` after this many durable cycle commits.
    crash_after_cycles: int | None = None
    #: ``os._exit`` the pool worker that starts serving this cycle index.
    kill_worker_cycle: int | None = None
    #: Latch file making the worker kill fire exactly once (required with
    #: ``kill_worker_cycle``).
    once_path: str | None = None
    #: Make the N-th fsync raise ``OSError`` (1-based).
    fail_fsync_at: int | None = None
    #: Injected solver hang: sleep this long at a cancellation poll —
    #: the seam :func:`repro.lp.solvers.solve_compiled_raw` checks before
    #: dispatching, so the hang eats the cycle budget exactly where a
    #: stuck presolve would.  Fires once, latched via ``hang_once_path``.
    hang_solver_seconds: float | None = None
    #: Latch file making the solver hang fire exactly once (required with
    #: ``hang_solver_seconds``).
    hang_once_path: str | None = None
    #: Byzantine slow worker: the *first* pool worker to grab the
    #: ``slow_worker_path`` pid-latch sleeps this long at **every**
    #: cancellation poll — one degenerate process among healthy siblings,
    #: the hedged-solve scenario.
    slow_worker_seconds: float | None = None
    #: Pid-latch file electing the slow worker (required with
    #: ``slow_worker_seconds``).
    slow_worker_path: str | None = None
    #: Tear the N-th journal append (1-based): only half the frame
    #: reaches the file, then :class:`SimulatedCrash` — the torn tail
    #: :func:`repro.state.journal.scan_wal` must heal on reopen.
    torn_write_at: int | None = None

    _batches_seen: int = 0
    _cycles_seen: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_after_batches", "crash_after_cycles",
                     "kill_worker_cycle", "fail_fsync_at",
                     "hang_solver_seconds", "slow_worker_seconds",
                     "torn_write_at"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.kill_worker_cycle is not None and self.once_path is None:
            raise ValueError("kill_worker_cycle requires once_path (the latch)")
        if self.hang_solver_seconds is not None and self.hang_once_path is None:
            raise ValueError(
                "hang_solver_seconds requires hang_once_path (the latch)"
            )
        if self.slow_worker_seconds is not None and self.slow_worker_path is None:
            raise ValueError(
                "slow_worker_seconds requires slow_worker_path (the pid latch)"
            )

    # ------------------------------------------------------- broker hooks

    def after_batch_append(self) -> None:
        """Called by the broker right after a ``batch`` record is flushed."""
        if self.crash_after_batches is None:
            return
        self._batches_seen += 1
        if self._batches_seen >= self.crash_after_batches:
            raise SimulatedCrash(
                f"injected crash after batch record #{self._batches_seen}"
            )

    def after_cycle_commit(self) -> None:
        """Called by the broker right after a cycle commit is synced."""
        if self.crash_after_cycles is None:
            return
        self._cycles_seen += 1
        if self._cycles_seen >= self.crash_after_cycles:
            raise SimulatedCrash(
                f"injected crash after cycle commit #{self._cycles_seen}"
            )

    # -------------------------------------------------------- worker hook

    def maybe_kill_worker(self, cycle_index: int) -> None:
        """Die (once) if this worker is serving the targeted cycle.

        Wired into the worker's cancellation poll, so the exit happens
        mid-cycle, between solves — not at a tidy boundary.
        """
        if self.kill_worker_cycle != cycle_index:
            return
        try:
            fd = os.open(self.once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return  # already fired; the retry must survive
        os.close(fd)
        os._exit(1)

    def maybe_hang_solver(self) -> None:
        """Sleep (once) at a solver cancellation poll — an injected hang.

        Latched through ``hang_once_path`` so only the first poll to win
        the ``O_EXCL`` race stalls; every later solve proceeds normally
        with whatever budget the hang left behind.
        """
        if self.hang_solver_seconds is None:
            return
        try:
            fd = os.open(
                self.hang_once_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return
        os.close(fd)
        time.sleep(self.hang_solver_seconds)

    def maybe_slow_worker(self) -> None:
        """Sleep at every poll iff *this process* is the elected slow worker.

        The first process to create ``slow_worker_path`` writes its pid
        and becomes byzantine-slow for the rest of the run; all other
        processes read the latch, see a foreign pid, and stay healthy.
        """
        if self.slow_worker_seconds is None:
            return
        pid = os.getpid()
        try:
            fd = os.open(
                self.slow_worker_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            try:
                elected = int(Path(self.slow_worker_path).read_text() or -1)
            except (OSError, ValueError):
                return
            if elected != pid:
                return
        else:
            os.write(fd, str(pid).encode())
            os.close(fd)
        time.sleep(self.slow_worker_seconds)

    # --------------------------------------------------------- fsync hook

    def write_hook(self) -> Callable[[object, bytes], bool] | None:
        """A :class:`~repro.state.journal.Journal` write hook tearing one append.

        At append ``torn_write_at`` (1-based) it writes only the first
        half of the frame, flushes it to the OS — exactly what a crash
        mid-``write(2)`` leaves — and raises :class:`SimulatedCrash`.
        Every other append proceeds normally (returns ``False``).
        """
        if self.torn_write_at is None:
            return None
        target = self.torn_write_at
        calls = 0

        def hook(handle, frame: bytes) -> bool:
            nonlocal calls
            calls += 1
            if calls == target:
                handle.write(frame[: max(1, len(frame) // 2)])
                handle.flush()
                raise SimulatedCrash(
                    f"injected torn write at journal append #{calls}"
                )
            return False

        return hook

    def fsync_hook(self) -> Callable[[int], None] | None:
        """An ``os.fsync`` replacement failing at ``fail_fsync_at`` calls."""
        if self.fail_fsync_at is None:
            return None
        target = self.fail_fsync_at
        calls = 0

        def hook(fd: int) -> None:
            nonlocal calls
            calls += 1
            if calls >= target:
                raise OSError(f"injected fsync failure (call #{calls})")
            os.fsync(fd)

        return hook


# ----------------------------------------------------------- WAL damage


def truncate_tail(path: str | Path, nbytes: int = 7) -> int:
    """Chop ``nbytes`` off the journal — a torn final write.

    Returns the new size.  Truncating less than a full frame leaves a
    half-record the scanner must detect and drop.
    """
    path = Path(path)
    size = path.stat().st_size
    new_size = max(0, size - nbytes)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def corrupt_tail(path: str | Path, nbytes: int = 4) -> None:
    """Flip the last ``nbytes`` bytes — a corrupt sector under the tail.

    Unlike :func:`truncate_tail` the file keeps its length; only the
    checksum can tell the tail is garbage.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    start = max(0, len(data) - nbytes)
    for index in range(start, len(data)):
        data[index] ^= 0xFF
    path.write_bytes(bytes(data))
