"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` raised
during argument validation) from domain failures (infeasible models, solver
breakdowns, malformed topologies).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "NoPathError",
    "TopologyError",
    "WorkloadError",
    "ModelError",
    "SolverError",
    "SolverTimeoutError",
    "InfeasibleError",
    "UnboundedError",
    "ScheduleError",
    "CapacityViolationError",
    "AlgorithmError",
    "StateError",
    "JournalError",
    "SnapshotError",
    "RecoveryError",
    "GatewayError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GraphError(ReproError):
    """Malformed graph operation (duplicate edge, bad endpoints, ...)."""


class NodeNotFoundError(GraphError, KeyError):
    """A referenced node does not exist in the graph."""


class EdgeNotFoundError(GraphError, KeyError):
    """A referenced edge does not exist in the graph."""


class NoPathError(GraphError):
    """No path exists between the requested endpoints."""


class TopologyError(ReproError):
    """Topology-level inconsistency (missing price, bad capacity, ...)."""


class WorkloadError(ReproError):
    """Invalid request or workload-generation parameters."""


class ModelError(ReproError):
    """Invalid optimization-model construction."""


class SolverError(ReproError):
    """The underlying solver failed or returned an unusable status."""


class SolverTimeoutError(SolverError):
    """A bounded solve hit its limit without producing a usable incumbent."""


class InfeasibleError(SolverError):
    """The optimization problem admits no feasible solution."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class ScheduleError(ReproError):
    """A schedule references unknown requests/paths or is malformed."""


class CapacityViolationError(ScheduleError):
    """A schedule exceeds the purchased capacity of some link."""


class AlgorithmError(ReproError):
    """An approximation algorithm could not complete (e.g. no valid mu)."""


class StateError(ReproError):
    """Durability-layer failure (journal, snapshot, or recovery)."""


class JournalError(StateError):
    """The write-ahead log could not be written or synced durably."""


class SnapshotError(StateError):
    """A snapshot could not be published or fails its checksum on load."""


class RecoveryError(StateError):
    """Recorded state is inconsistent with the requested configuration."""


class GatewayError(ReproError):
    """Live-gateway failure (accounting violation, bad configuration, ...)."""


class ProtocolError(GatewayError):
    """A malformed wire message.

    Carries the 1-based ``lineno`` of the offending line within its
    connection, mirroring how :class:`WorkloadError` reports trace line
    numbers — the gateway answers these with a structured per-line error
    response instead of dropping the connection.
    """

    def __init__(self, message: str, *, lineno: int | None = None) -> None:
        super().__init__(message)
        self.lineno = lineno
