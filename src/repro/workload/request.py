"""The transfer-request model.

A request is the paper's six-tuple ``{s_i, d_i, ts_i, td_i, r_i, v_i}``
(§II-A): a bandwidth reservation of rate ``r_i`` from data center ``s_i`` to
``d_i`` over the *inclusive* slot window ``[ts_i, td_i]`` for which the
customer bids value ``v_i``.

Units follow the paper's convention: rates are measured in units of
chargeable bandwidth (1 unit = 10 Gbps), so a 2.5 Gbps request has
``rate = 0.25``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import WorkloadError

__all__ = ["Request", "RequestSet"]

NodeId = Hashable


@dataclass(frozen=True)
class Request:
    """A single inter-DC bandwidth-reservation request.

    Attributes mirror the paper's notation: ``source``/``dest`` are
    :math:`s_i, d_i`; ``start``/``end`` are the inclusive slot window
    :math:`[ts_i, td_i]`; ``rate`` is :math:`r_i` in bandwidth units; and
    ``value`` is the bid :math:`v_i`.
    """

    request_id: int
    source: NodeId
    dest: NodeId
    start: int
    end: int
    rate: float
    value: float

    def __post_init__(self) -> None:
        if self.request_id < 0:
            raise WorkloadError(f"request_id must be >= 0, got {self.request_id}")
        if self.source == self.dest:
            raise WorkloadError(
                f"request {self.request_id}: source equals destination ({self.source!r})"
            )
        if self.start < 0 or self.end < self.start:
            raise WorkloadError(
                f"request {self.request_id}: invalid slot window "
                f"[{self.start}, {self.end}]"
            )
        if not (self.rate > 0):
            raise WorkloadError(
                f"request {self.request_id}: rate must be > 0, got {self.rate!r}"
            )
        if not (self.value >= 0):
            raise WorkloadError(
                f"request {self.request_id}: value must be >= 0, got {self.value!r}"
            )

    @property
    def duration(self) -> int:
        """Number of active slots (inclusive window)."""
        return self.end - self.start + 1

    def rate_at(self, t: int) -> float:
        """The paper's :math:`r_{i,t}`: ``rate`` inside the window, else 0."""
        return self.rate if self.start <= t <= self.end else 0.0

    def is_active(self, t: int) -> bool:
        return self.start <= t <= self.end

    @property
    def slots(self) -> range:
        """The active slot indices."""
        return range(self.start, self.end + 1)


class RequestSet:
    """An ordered, id-indexed collection of requests for one billing cycle.

    ``num_slots`` is the billing cycle length ``T``; every request window
    must fit inside ``[0, T)``.
    """

    def __init__(self, requests: Iterable[Request], num_slots: int) -> None:
        if num_slots < 1:
            raise WorkloadError(f"num_slots must be >= 1, got {num_slots}")
        self.num_slots = num_slots
        self._requests: list[Request] = list(requests)
        self._by_id: dict[int, Request] = {}
        for req in self._requests:
            if req.request_id in self._by_id:
                raise WorkloadError(f"duplicate request_id {req.request_id}")
            if req.end >= num_slots:
                raise WorkloadError(
                    f"request {req.request_id} ends at slot {req.end}, "
                    f"outside the billing cycle of {num_slots} slots"
                )
            self._by_id[req.request_id] = req

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __contains__(self, request_id: int) -> bool:
        return request_id in self._by_id

    def __getitem__(self, request_id: int) -> Request:
        try:
            return self._by_id[request_id]
        except KeyError:
            raise WorkloadError(f"unknown request_id {request_id}") from None

    @property
    def requests(self) -> list[Request]:
        return list(self._requests)

    @property
    def request_ids(self) -> list[int]:
        return [r.request_id for r in self._requests]

    @property
    def total_value(self) -> float:
        """Sum of all bids — the revenue ceiling of any schedule."""
        return sum(r.value for r in self._requests)

    @property
    def max_rate(self) -> float:
        """The largest request rate (used for normalization in TAA)."""
        if not self._requests:
            return 0.0
        return max(r.rate for r in self._requests)

    def subset(self, request_ids: Iterable[int]) -> "RequestSet":
        """A new :class:`RequestSet` keeping only ``request_ids`` (order preserved)."""
        keep = set(request_ids)
        unknown = keep - set(self._by_id)
        if unknown:
            raise WorkloadError(f"unknown request ids: {sorted(unknown)}")
        return RequestSet(
            [r for r in self._requests if r.request_id in keep], self.num_slots
        )

    def active_at(self, t: int) -> list[Request]:
        """Requests whose window covers slot ``t``."""
        return [r for r in self._requests if r.is_active(t)]

    def __repr__(self) -> str:
        return f"RequestSet(n={len(self)}, num_slots={self.num_slots})"
