"""Pluggable request-value models.

The paper sets a request's bid "based on the bandwidth requirements and the
bandwidth prices published by cloud providers" (§V-A).  We expose that as a
strategy interface so experiments can vary how profitable the request mix is
relative to ISP transit prices:

* :class:`PriceAwareValueModel` (the default, matching the paper): the bid
  scales with rate x duration x the cheapest-path transit price between the
  endpoints, times a ``markup`` — i.e. customers pay roughly what retail
  cloud price lists would charge for that reservation, which sits above the
  provider's wholesale cost on cheap paths and may sit below it on expensive
  ones.  A multiplicative noise term models bid dispersion.
* :class:`FlatRateValueModel`: the bid ignores geography (rate x duration x
  a flat unit price).  Useful as an ablation: with geography-blind bids the
  provider has stronger incentives to decline requests crossing expensive
  links.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable

import numpy as np

from repro.exceptions import NoPathError, WorkloadError
from repro.net.paths import shortest_path
from repro.net.topology import Topology
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "ValueModel",
    "PriceAwareValueModel",
    "FlatRateValueModel",
    "HeavyTailValueModel",
]

NodeId = Hashable


class ValueModel(ABC):
    """Strategy assigning a bid value to a candidate request."""

    @abstractmethod
    def value(
        self,
        topology: Topology,
        source: NodeId,
        dest: NodeId,
        rate: float,
        duration: int,
        rng: np.random.Generator,
    ) -> float:
        """The bid for reserving ``rate`` units over ``duration`` slots."""


class PriceAwareValueModel(ValueModel):
    """Bid = ``markup`` x rate x duration x cheapest-path price (+/- noise).

    ``markup`` > 1 means the average request is profitable when routed on its
    cheapest path; ``noise`` is the half-width of a uniform multiplicative
    perturbation (``0.2`` -> bids in ``[0.8, 1.2]`` x the deterministic bid),
    modeling the dispersion of sealed bids.
    """

    def __init__(self, markup: float = 1.5, noise: float = 0.2) -> None:
        check_positive("markup", markup)
        check_nonnegative("noise", noise)
        if noise >= 1:
            raise WorkloadError(f"noise must be < 1, got {noise}")
        self.markup = markup
        self.noise = noise
        self._path_price_cache: dict[tuple[int, NodeId, NodeId], float] = {}

    def _cheapest_price(self, topology: Topology, source: NodeId, dest: NodeId) -> float:
        key = (id(topology), source, dest)
        if key not in self._path_price_cache:
            try:
                self._path_price_cache[key] = shortest_path(
                    topology.graph, source, dest
                ).cost
            except NoPathError:
                raise WorkloadError(
                    f"no path {source!r} -> {dest!r} in topology {topology.name!r}"
                ) from None
        return self._path_price_cache[key]

    def value(
        self,
        topology: Topology,
        source: NodeId,
        dest: NodeId,
        rate: float,
        duration: int,
        rng: np.random.Generator,
    ) -> float:
        base = self.markup * rate * duration * self._cheapest_price(topology, source, dest)
        factor = 1.0 if self.noise == 0 else float(rng.uniform(1 - self.noise, 1 + self.noise))
        return base * factor

    def __repr__(self) -> str:
        # Parameter-complete and stable across processes: the broker's
        # durability layer folds this repr into its config fingerprint.
        return f"PriceAwareValueModel(markup={self.markup!r}, noise={self.noise!r})"


class FlatRateValueModel(ValueModel):
    """Bid = ``unit_price`` x rate x duration, blind to geography."""

    def __init__(self, unit_price: float = 3.0) -> None:
        check_positive("unit_price", unit_price)
        self.unit_price = unit_price

    def value(
        self,
        topology: Topology,
        source: NodeId,
        dest: NodeId,
        rate: float,
        duration: int,
        rng: np.random.Generator,
    ) -> float:
        return self.unit_price * rate * duration

    def __repr__(self) -> str:
        return f"FlatRateValueModel(unit_price={self.unit_price!r})"


class HeavyTailValueModel(ValueModel):
    """Pareto-dispersed bids: most customers bid near cost, a few bid far above.

    Bid = rate x duration x cheapest-path price x ``Pareto(shape)``
    (Lomax-shifted so the multiplier is at least ``scale``).  Smaller
    ``shape`` means heavier tail; ``shape <= 1`` (infinite-mean regime) is
    rejected.  Value-aware schedulers (TAA, Metis) gain the most under
    heavy-tailed bids, because *which* requests you keep dominates *how
    many* — the ablation in :mod:`repro.experiments.ablations` quantifies
    this.
    """

    def __init__(self, shape: float = 2.5, scale: float = 0.5) -> None:
        check_positive("scale", scale)
        if shape <= 1.0:
            raise WorkloadError(
                f"shape must be > 1 (finite-mean Pareto), got {shape}"
            )
        self.shape = shape
        self.scale = scale
        self._price_model = PriceAwareValueModel(markup=1.0, noise=0.0)

    def value(
        self,
        topology: Topology,
        source: NodeId,
        dest: NodeId,
        rate: float,
        duration: int,
        rng: np.random.Generator,
    ) -> float:
        base = self._price_model.value(topology, source, dest, rate, duration, rng)
        multiplier = self.scale * (1.0 + float(rng.pareto(self.shape)))
        return base * multiplier

    def __repr__(self) -> str:
        return f"HeavyTailValueModel(shape={self.shape!r}, scale={self.scale!r})"
