"""Synthetic workload substrate: requests, generators, value models, traces."""

from repro.workload.request import Request, RequestSet
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import (
    FlatRateValueModel,
    HeavyTailValueModel,
    PriceAwareValueModel,
    ValueModel,
)
from repro.workload.traces import (
    requests_from_dicts,
    requests_to_dicts,
    load_trace,
    save_trace,
)
from repro.workload.patterns import (
    SEASONAL_RETAIL,
    generate_structured_workload,
    gravity_pair_weights,
    seasonal_weights,
)

__all__ = [
    "Request",
    "RequestSet",
    "WorkloadConfig",
    "generate_workload",
    "ValueModel",
    "FlatRateValueModel",
    "HeavyTailValueModel",
    "PriceAwareValueModel",
    "requests_from_dicts",
    "requests_to_dicts",
    "load_trace",
    "save_trace",
    "SEASONAL_RETAIL",
    "seasonal_weights",
    "gravity_pair_weights",
    "generate_structured_workload",
]
