"""Workload trace persistence.

Requests round-trip through JSON so an experiment can pin the exact
workload it ran on.  Node ids are stringified on save; loaders return them
as strings, which matches the builders in :mod:`repro.net.topologies`.

Two on-disk layouts are supported:

* a single JSON document (:func:`save_trace` / :func:`load_trace`) — the
  original format, convenient for small pinned workloads;
* JSON Lines (:func:`save_trace_jsonl` / :func:`iter_trace_jsonl`) — a
  header line followed by one request per line, so the serving layer can
  *stream* arbitrarily long bid streams without materializing them.

:func:`arrival_stream` turns any request iterable into the
slot-by-slot arrival batches the broker's admission loop consumes.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any

from repro.exceptions import WorkloadError
from repro.workload.request import Request, RequestSet

__all__ = [
    "requests_to_dicts",
    "requests_from_dicts",
    "save_trace",
    "load_trace",
    "save_trace_jsonl",
    "iter_trace_jsonl",
    "load_trace_jsonl",
    "trace_jsonl_header",
    "arrival_stream",
]

_FORMAT_VERSION = 1


def requests_to_dicts(requests: RequestSet) -> dict[str, Any]:
    """Serialize a :class:`RequestSet` to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "num_slots": requests.num_slots,
        "requests": [
            {
                "request_id": r.request_id,
                "source": str(r.source),
                "dest": str(r.dest),
                "start": r.start,
                "end": r.end,
                "rate": r.rate,
                "value": r.value,
            }
            for r in requests
        ],
    }


def requests_from_dicts(data: dict[str, Any]) -> RequestSet:
    """Rebuild a :class:`RequestSet` from :func:`requests_to_dicts` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise WorkloadError(f"unsupported trace format version: {version!r}")
    requests = [
        Request(
            request_id=int(r["request_id"]),
            source=r["source"],
            dest=r["dest"],
            start=int(r["start"]),
            end=int(r["end"]),
            rate=float(r["rate"]),
            value=float(r["value"]),
        )
        for r in data["requests"]
    ]
    return RequestSet(requests, int(data["num_slots"]))


def save_trace(requests: RequestSet, path: str | Path) -> None:
    """Write a request trace as JSON to ``path``."""
    payload = requests_to_dicts(requests)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_trace(path: str | Path) -> RequestSet:
    """Load a request trace previously written by :func:`save_trace`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return requests_from_dicts(data)


# --------------------------------------------------------------- streaming


def _request_to_dict(req: Request) -> dict[str, Any]:
    return {
        "request_id": req.request_id,
        "source": str(req.source),
        "dest": str(req.dest),
        "start": req.start,
        "end": req.end,
        "rate": req.rate,
        "value": req.value,
    }


def _request_from_dict(r: dict[str, Any]) -> Request:
    return Request(
        request_id=int(r["request_id"]),
        source=r["source"],
        dest=r["dest"],
        start=int(r["start"]),
        end=int(r["end"]),
        rate=float(r["rate"]),
        value=float(r["value"]),
    )


def save_trace_jsonl(requests: Iterable[Request], num_slots: int, path: str | Path) -> None:
    """Write a streaming trace: a header line, then one request per line.

    Accepts any iterable, so a generator can be spooled to disk without
    ever holding the full request stream in memory.
    """
    if num_slots < 1:
        raise WorkloadError(f"num_slots must be >= 1, got {num_slots}")
    header = {"format_version": _FORMAT_VERSION, "num_slots": num_slots}
    with Path(path).open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for req in requests:
            handle.write(json.dumps(_request_to_dict(req)) + "\n")


def iter_trace_jsonl(path: str | Path) -> Iterator[Request]:
    """Lazily yield the requests of a :func:`save_trace_jsonl` trace.

    Only one line is parsed at a time, so traces far larger than memory
    stream fine.  The header is validated before the first request is
    yielded; use :func:`trace_jsonl_header` when the cycle length is needed.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        _read_jsonl_header(handle, path)
        for lineno, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(
                    f"{path}: line {lineno}: malformed trace line ({exc})"
                ) from None
            if not isinstance(data, dict):
                raise WorkloadError(
                    f"{path}: line {lineno}: trace line must be a JSON "
                    f"object, got {type(data).__name__}"
                )
            try:
                yield _request_from_dict(data)
            except WorkloadError as exc:
                raise WorkloadError(f"{path}: line {lineno}: {exc}") from None
            except (KeyError, TypeError, ValueError) as exc:
                raise WorkloadError(
                    f"{path}: line {lineno}: invalid trace record ({exc!r})"
                ) from None


def trace_jsonl_header(path: str | Path) -> dict[str, Any]:
    """The header dict (``format_version``, ``num_slots``) of a JSONL trace."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return _read_jsonl_header(handle, path)


def _read_jsonl_header(handle, path) -> dict[str, Any]:
    first = handle.readline()
    try:
        header = json.loads(first) if first.strip() else None
    except json.JSONDecodeError:
        header = None
    if not isinstance(header, dict):
        raise WorkloadError(f"{path}: not a JSONL trace (bad header line)")
    version = header.get("format_version")
    if version != _FORMAT_VERSION:
        raise WorkloadError(f"unsupported trace format version: {version!r}")
    if "num_slots" not in header:
        raise WorkloadError(f"{path}: JSONL trace header missing num_slots")
    return header


def load_trace_jsonl(path: str | Path) -> RequestSet:
    """Materialize a JSONL trace into a :class:`RequestSet`."""
    header = trace_jsonl_header(path)
    return RequestSet(iter_trace_jsonl(path), int(header["num_slots"]))


def arrival_stream(
    requests: Iterable[Request],
) -> Iterator[tuple[int, list[Request]]]:
    """Group a request stream into per-slot arrival batches.

    Yields ``(slot, batch)`` pairs in increasing slot order, one per slot
    that has at least one arrival.  The input must be sorted by ``start``
    (generators and saved traces are); an out-of-order request raises
    :class:`WorkloadError` rather than silently merging batches — an online
    provider cannot decide a bid that "arrived in the past".
    """
    batch: list[Request] = []
    current: int | None = None
    for req in requests:
        if current is not None and req.start < current:
            raise WorkloadError(
                f"request {req.request_id} arrives at slot {req.start}, "
                f"after slot {current} was already dispatched"
            )
        if req.start != current:
            if batch:
                yield current, batch
            batch = []
            current = req.start
        batch.append(req)
    if batch:
        yield current, batch
