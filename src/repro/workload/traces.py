"""Workload trace persistence.

Requests round-trip through JSON so an experiment can pin the exact
workload it ran on.  Node ids are stringified on save; loaders return them
as strings, which matches the builders in :mod:`repro.net.topologies`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.exceptions import WorkloadError
from repro.workload.request import Request, RequestSet

__all__ = ["requests_to_dicts", "requests_from_dicts", "save_trace", "load_trace"]

_FORMAT_VERSION = 1


def requests_to_dicts(requests: RequestSet) -> dict[str, Any]:
    """Serialize a :class:`RequestSet` to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "num_slots": requests.num_slots,
        "requests": [
            {
                "request_id": r.request_id,
                "source": str(r.source),
                "dest": str(r.dest),
                "start": r.start,
                "end": r.end,
                "rate": r.rate,
                "value": r.value,
            }
            for r in requests
        ],
    }


def requests_from_dicts(data: dict[str, Any]) -> RequestSet:
    """Rebuild a :class:`RequestSet` from :func:`requests_to_dicts` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise WorkloadError(f"unsupported trace format version: {version!r}")
    requests = [
        Request(
            request_id=int(r["request_id"]),
            source=r["source"],
            dest=r["dest"],
            start=int(r["start"]),
            end=int(r["end"]),
            rate=float(r["rate"]),
            value=float(r["value"]),
        )
        for r in data["requests"]
    ]
    return RequestSet(requests, int(data["num_slots"]))


def save_trace(requests: RequestSet, path: str | Path) -> None:
    """Write a request trace as JSON to ``path``."""
    payload = requests_to_dicts(requests)
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_trace(path: str | Path) -> RequestSet:
    """Load a request trace previously written by :func:`save_trace`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return requests_from_dicts(data)
