"""Structured arrival and endpoint patterns (extension of §V-A's model).

The paper's slots are calendar months, which real inter-DC demand does not
hit uniformly; and real DC pairs are not equally popular.  This module
adds two orthogonal structure knobs to the synthetic model, both used by
the ablation studies:

* **seasonality** — per-slot arrival weights.  :data:`SEASONAL_RETAIL`
  encodes a Q4-heavy retail year; :func:`seasonal_weights` builds a
  sinusoidal profile for arbitrary cycle lengths.
* **gravity endpoint model** — DC-pair popularity proportional to the
  product of per-DC weights (a standard traffic-matrix model), so a few
  large sites dominate, instead of uniform random pairs.

:func:`generate_structured_workload` mirrors
:func:`~repro.workload.generator.generate_workload` with these knobs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.net.topology import Topology
from repro.util.rng import ensure_rng
from repro.workload.generator import DEFAULT_RATE_RANGE
from repro.workload.request import Request, RequestSet
from repro.workload.value_models import PriceAwareValueModel, ValueModel

__all__ = [
    "SEASONAL_RETAIL",
    "seasonal_weights",
    "gravity_pair_weights",
    "generate_structured_workload",
]

#: A retail-calendar year: quiet Q1, ramp to a Q4 peak (Nov/Dec heaviest).
SEASONAL_RETAIL: tuple[float, ...] = (
    0.6, 0.6, 0.7, 0.7, 0.8, 0.9, 0.9, 1.0, 1.1, 1.3, 1.7, 1.7,
)


def seasonal_weights(
    num_slots: int, *, peak: float = 2.0, phase: float = 0.0
) -> list[float]:
    """A sinusoidal arrival profile over ``num_slots``.

    Weights oscillate between 1 and ``peak`` with one full period per
    cycle; ``phase`` (radians) shifts where the peak lands.
    """
    if num_slots < 1:
        raise WorkloadError(f"num_slots must be >= 1, got {num_slots}")
    if peak < 1.0:
        raise WorkloadError(f"peak must be >= 1, got {peak}")
    half_spread = (peak - 1.0) / 2.0
    return [
        1.0 + half_spread * (1.0 + math.sin(2.0 * math.pi * t / num_slots + phase))
        for t in range(num_slots)
    ]


def gravity_pair_weights(
    topology: Topology,
    site_weights: dict | None = None,
    *,
    rng: int | np.random.Generator | None = None,
) -> dict[tuple, float]:
    """Directed DC-pair weights under a gravity model.

    ``site_weights`` gives each DC a mass (defaults to a seeded lognormal
    draw, modeling a few large sites); the weight of the pair ``(s, d)``
    is ``mass[s] * mass[d]`` for ``s != d``.
    """
    datacenters = topology.datacenters
    if len(datacenters) < 2:
        raise WorkloadError("gravity model needs >= 2 data centers")
    if site_weights is None:
        gen = ensure_rng(rng)
        site_weights = {
            dc: float(gen.lognormal(mean=0.0, sigma=1.0)) for dc in datacenters
        }
    missing = [dc for dc in datacenters if dc not in site_weights]
    if missing:
        raise WorkloadError(f"site_weights missing data centers: {missing}")
    return {
        (s, d): site_weights[s] * site_weights[d]
        for s in datacenters
        for d in datacenters
        if s != d
    }


def generate_structured_workload(
    topology: Topology,
    num_requests: int,
    *,
    num_slots: int = 12,
    slot_weights: Sequence[float] | None = None,
    pair_weights: dict[tuple, float] | None = None,
    rate_range: tuple[float, float] = DEFAULT_RATE_RANGE,
    max_duration: int | None = None,
    value_model: ValueModel | None = None,
    rng: int | np.random.Generator | None = None,
) -> RequestSet:
    """Draw a workload with seasonal arrivals and gravity endpoints.

    ``slot_weights`` (length ``num_slots``) biases start-slot sampling;
    ``pair_weights`` biases endpoint-pair sampling.  Omitted knobs fall
    back to the uniform behaviour of the base generator.
    """
    if num_requests < 0:
        raise WorkloadError(f"num_requests must be >= 0, got {num_requests}")
    gen = ensure_rng(rng)
    value_model = value_model or PriceAwareValueModel()

    if slot_weights is None:
        slot_probabilities = np.full(num_slots, 1.0 / num_slots)
    else:
        if len(slot_weights) != num_slots:
            raise WorkloadError(
                f"slot_weights has {len(slot_weights)} entries for "
                f"{num_slots} slots"
            )
        weights = np.asarray(slot_weights, dtype=float)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise WorkloadError("slot_weights must be non-negative, not all zero")
        slot_probabilities = weights / weights.sum()

    if pair_weights is None:
        pair_weights = gravity_pair_weights(topology, rng=gen)
    pairs = list(pair_weights)
    pair_probs = np.array([pair_weights[p] for p in pairs], dtype=float)
    if np.any(pair_probs < 0) or pair_probs.sum() <= 0:
        raise WorkloadError("pair weights must be non-negative, not all zero")
    pair_probs /= pair_probs.sum()

    low, high = rate_range
    starts = sorted(
        int(s) for s in gen.choice(num_slots, size=num_requests, p=slot_probabilities)
    )
    requests = []
    for request_id, start in enumerate(starts):
        source, dest = pairs[int(gen.choice(len(pairs), p=pair_probs))]
        max_end = num_slots - 1
        if max_duration is not None:
            max_end = min(max_end, start + max_duration - 1)
        end = int(gen.integers(start, max_end + 1))
        rate = float(gen.uniform(low, high))
        value = value_model.value(topology, source, dest, rate, end - start + 1, gen)
        requests.append(
            Request(
                request_id=request_id,
                source=source,
                dest=dest,
                start=start,
                end=end,
                rate=rate,
                value=value,
            )
        )
    return RequestSet(requests, num_slots)
