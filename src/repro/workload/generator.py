"""Synthetic workload generation (paper §V-A).

The paper generates requests for a billing cycle of 12 time slots (months)
with: Poisson request arrivals, bandwidth requirements uniform in
[0.1, 5] Gbps, start/end times random within the cycle, endpoints random
distinct data centers, and values derived from the bandwidth requirement and
published cloud prices.

:func:`generate_workload` reproduces that model.  Arrivals are Poisson per
slot: each slot draws ``Poisson(rate_per_slot)`` new requests starting in
that slot; when the caller instead fixes the total request count ``K`` (the
paper's sweeps do: "with different requests"), the per-slot Poisson counts
are normalized to sum to ``K`` by multinomial thinning, preserving the
Poisson shape of the arrival process while pinning the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import WorkloadError
from repro.net.topology import Topology
from repro.util.rng import ensure_rng
from repro.workload.request import Request, RequestSet
from repro.workload.value_models import PriceAwareValueModel, ValueModel

__all__ = ["WorkloadConfig", "generate_workload"]

#: 1 bandwidth unit = 10 Gbps (paper §V-A), so 0.1–5 Gbps = 0.01–0.5 units.
DEFAULT_RATE_RANGE = (0.01, 0.5)


@dataclass
class WorkloadConfig:
    """Parameters of the synthetic request model.

    ``num_requests`` pins the total ``K``; ``num_slots`` is the billing
    cycle ``T`` (12 months by default).  ``rate_range`` is in bandwidth
    units (defaults to the paper's 0.1–5 Gbps with 10 Gbps units).
    ``max_duration`` caps the window length (``None`` = up to cycle end).
    """

    num_requests: int
    num_slots: int = 12
    rate_range: tuple[float, float] = DEFAULT_RATE_RANGE
    max_duration: int | None = None
    value_model: ValueModel = field(default_factory=PriceAwareValueModel)

    def __post_init__(self) -> None:
        if self.num_requests < 0:
            raise WorkloadError(f"num_requests must be >= 0, got {self.num_requests}")
        if self.num_slots < 1:
            raise WorkloadError(f"num_slots must be >= 1, got {self.num_slots}")
        low, high = self.rate_range
        if not (0 < low <= high):
            raise WorkloadError(f"invalid rate_range {self.rate_range!r}")
        if self.max_duration is not None and self.max_duration < 1:
            raise WorkloadError(f"max_duration must be >= 1, got {self.max_duration}")


def generate_workload(
    topology: Topology,
    config: WorkloadConfig,
    *,
    rng: int | np.random.Generator | None = None,
) -> RequestSet:
    """Draw a :class:`RequestSet` from the paper's synthetic model.

    Deterministic given ``rng``: the same seed, topology and config always
    produce the same workload.
    """
    gen = ensure_rng(rng)
    datacenters = topology.datacenters
    if len(datacenters) < 2:
        raise WorkloadError("workload generation needs >= 2 data centers")

    start_slots = _poisson_arrival_slots(config.num_requests, config.num_slots, gen)

    low, high = config.rate_range
    requests = []
    for request_id, start in enumerate(start_slots):
        src_idx, dst_idx = gen.choice(len(datacenters), size=2, replace=False)
        source, dest = datacenters[int(src_idx)], datacenters[int(dst_idx)]
        max_end = config.num_slots - 1
        if config.max_duration is not None:
            max_end = min(max_end, start + config.max_duration - 1)
        end = int(gen.integers(start, max_end + 1))
        rate = float(gen.uniform(low, high))
        value = config.value_model.value(
            topology, source, dest, rate, end - start + 1, gen
        )
        requests.append(
            Request(
                request_id=request_id,
                source=source,
                dest=dest,
                start=start,
                end=end,
                rate=rate,
                value=value,
            )
        )
    return RequestSet(requests, config.num_slots)


def _poisson_arrival_slots(
    total: int, num_slots: int, gen: np.random.Generator
) -> list[int]:
    """Start slots for ``total`` requests with a Poisson arrival process.

    Draws independent per-slot Poisson counts, then resamples to exactly
    ``total`` arrivals with a multinomial whose probabilities are the drawn
    counts (falling back to uniform when every count is zero).  Sorted so
    request ids follow arrival order, which the online baselines rely on.
    """
    if total == 0:
        return []
    counts = gen.poisson(lam=max(total / num_slots, 1e-9), size=num_slots).astype(float)
    if counts.sum() == 0:
        counts = np.ones(num_slots)
    probabilities = counts / counts.sum()
    arrivals = gen.multinomial(total, probabilities)
    slots: list[int] = []
    for slot, count in enumerate(arrivals):
        slots.extend([slot] * int(count))
    return sorted(slots)
