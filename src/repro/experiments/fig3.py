"""Figure 3 — Metis vs the optimal solutions on SUB-B4 (paper §V-B.1).

Three panels over a request-count sweep on the small network:

* **3a** service profit of OPT(SPM), Metis and OPT(RL-SPM);
* **3b** number of accepted requests;
* **3c** max / min / average link utilization.

Headline shapes to reproduce: OPT(SPM) > Metis > OPT(RL-SPM) in profit
(paper: Metis 11% below OPT(SPM), 32.3% above OPT(RL-SPM)); OPT(RL-SPM)
accepts everything while the others decline; OPT(SPM) has the highest and
OPT(RL-SPM) the lowest average utilization.

Exact optima are NP-hard solves; ``config.time_limit`` bounds each MILP.
A sweep point whose exact solve times out is reported with ``NaN`` profit
rather than a silently suboptimal number.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.opt import solve_opt_rl_spm, solve_opt_spm
from repro.core.metis import Metis
from repro.exceptions import SolverError
from repro.experiments.common import ExperimentConfig, ExperimentResult, make_instance
from repro.sim.metrics import SolutionMetrics, evaluate_schedule
from repro.workload.value_models import FlatRateValueModel

__all__ = ["run_fig3", "FIG3_HEADERS"]

#: SUB-B4 links all carry the baseline price 1.0, so the mixed
#: profitable/unprofitable request population this figure studies comes
#: from the bid level: at 0.6 per unit-slot a lone request rarely covers
#: the integer bandwidth unit it forces, while temporally packed requests
#: do — the regime where acceptance decisions drive profit.
FIG3_UNIT_VALUE = 0.6


def default_config(**overrides) -> ExperimentConfig:
    """This figure's tuned configuration; ``overrides`` replace fields.

    The CLI uses this so user flags (sweep, seed, theta, time limit)
    compose with the figure-specific regime instead of clobbering it.
    """
    params = dict(
        topology="sub-b4",
        value_model=FlatRateValueModel(FIG3_UNIT_VALUE),
    )
    params.update(overrides)
    return ExperimentConfig(**params)

FIG3_HEADERS = [
    "requests",
    "solution",
    "profit",
    "accepted",
    "revenue",
    "cost",
    "util_max",
    "util_min",
    "util_mean",
]


def _row(num_requests: int, metrics: SolutionMetrics) -> list:
    return [
        num_requests,
        metrics.solution,
        metrics.profit,
        metrics.num_accepted,
        metrics.revenue,
        metrics.cost,
        metrics.utilization_max,
        metrics.utilization_min,
        metrics.utilization_mean,
    ]


def run_fig3(
    config: ExperimentConfig | None = None,
    *,
    include_opt: bool = True,
) -> ExperimentResult:
    """Regenerate Fig. 3 (all three panels share these rows).

    ``include_opt=False`` skips the exact solves (useful for quick runs and
    large sweeps); Metis rows are always produced.
    """
    if config is None:
        config = default_config()
    elif config.topology != "sub-b4":
        config = replace(config, topology="sub-b4")

    rows: list[list] = []
    notes: list[str] = []
    for num_requests in config.request_counts:
        instance = make_instance(config, num_requests)

        metis = Metis(theta=config.theta, maa_rounds=config.maa_rounds)
        outcome = metis.solve(instance, rng=config.seed)
        if outcome.best.schedule is not None:
            rows.append(
                _row(num_requests, evaluate_schedule("Metis", outcome.best.schedule))
            )
        else:
            rows.append([num_requests, "Metis", 0.0, 0, 0.0, 0.0, 0.0, 0.0, 0.0])

        if include_opt:
            try:
                opt = solve_opt_spm(instance, time_limit=config.time_limit)
                rows.append(
                    _row(num_requests, evaluate_schedule("OPT(SPM)", opt.schedule))
                )
            except SolverError as exc:
                notes.append(f"OPT(SPM) K={num_requests}: {exc}")
                rows.append(
                    [num_requests, "OPT(SPM)"] + [float("nan")] * 2 + [float("nan")] * 5
                )
            try:
                opt_rl = solve_opt_rl_spm(instance, time_limit=config.time_limit)
                rows.append(
                    _row(
                        num_requests,
                        evaluate_schedule("OPT(RL-SPM)", opt_rl.schedule),
                    )
                )
            except SolverError as exc:
                notes.append(f"OPT(RL-SPM) K={num_requests}: {exc}")
                rows.append(
                    [num_requests, "OPT(RL-SPM)"]
                    + [float("nan")] * 2
                    + [float("nan")] * 5
                )

    return ExperimentResult(
        experiment="fig3",
        description=(
            "Metis vs optimal solutions on SUB-B4 "
            "(3a profit, 3b accepted requests, 3c link utilization)"
        ),
        headers=FIG3_HEADERS,
        rows=rows,
        notes=notes,
    )
