"""Figure 5 — Metis vs EcoFlow on B4 (paper §V-B.3).

Three panels over a request-count sweep on the full network:

* **5a** service profit (paper: Metis up to +32.6%);
* **5b** accepted requests (paper: EcoFlow accepts up to 43.1% fewer);
* **5c** average link utilization (paper: Metis up to +38%).
"""

from __future__ import annotations

from repro.baselines.ecoflow import solve_ecoflow
from repro.core.metis import Metis
from repro.experiments.common import ExperimentConfig, ExperimentResult, make_instance
from repro.sim.metrics import evaluate_schedule

__all__ = ["run_fig5", "default_config"]


def default_config(**overrides) -> ExperimentConfig:
    """This figure's tuned configuration; ``overrides`` replace fields."""
    params = dict(topology="b4", request_counts=(100, 200, 300, 400))
    params.update(overrides)
    return ExperimentConfig(**params)


def run_fig5(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Regenerate Fig. 5 (all three panels share these rows)."""
    if config is None:
        config = default_config()

    rows: list[list] = []
    for num_requests in config.request_counts:
        instance = make_instance(config, num_requests)

        metis = Metis(theta=config.theta, maa_rounds=config.maa_rounds)
        outcome = metis.solve(instance, rng=config.seed)
        if outcome.best.schedule is not None:
            metis_metrics = evaluate_schedule("Metis", outcome.best.schedule)
            metis_row = (
                metis_metrics.profit,
                metis_metrics.num_accepted,
                metis_metrics.utilization_mean,
            )
        else:
            metis_row = (0.0, 0, 0.0)

        ecoflow = solve_ecoflow(instance)
        eco_metrics = evaluate_schedule("EcoFlow", ecoflow.schedule)

        rows.append(
            [
                num_requests,
                metis_row[0],
                eco_metrics.profit,
                metis_row[1],
                eco_metrics.num_accepted,
                metis_row[2],
                eco_metrics.utilization_mean,
            ]
        )
    return ExperimentResult(
        experiment="fig5",
        description=(
            "Metis vs EcoFlow on B4 (5a profit, 5b accepted requests, "
            "5c average link utilization)"
        ),
        headers=[
            "requests",
            "metis_profit",
            "ecoflow_profit",
            "metis_accepted",
            "ecoflow_accepted",
            "metis_util_mean",
            "ecoflow_util_mean",
        ],
        rows=rows,
    )
