"""Terminal charts for experiment results.

The paper's figures are line charts over the request-count sweep; this
module renders the same series as Unicode terminal plots so ``metis-repro``
output can be *read* as a figure, not just as rows:

* :func:`sparkline` — one series in one line (block characters);
* :func:`line_chart` — multi-series scatter/line chart on a character
  grid with y-axis labels and a legend.

Pure string manipulation, no plotting dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["sparkline", "line_chart"]

_BLOCKS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a one-line block-character sparkline."""
    if not values:
        return ""
    if any(v != v for v in values):  # NaN check without numpy
        raise ValueError("sparkline values must not contain NaN")
    low = min(values)
    high = max(values)
    if high == low:
        return _BLOCKS[3] * len(values)
    span = high - low
    return "".join(
        _BLOCKS[min(int((v - low) / span * len(_BLOCKS)), len(_BLOCKS) - 1)]
        for v in values
    )


def line_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render multiple series against shared ``x`` values as a text chart.

    Each series gets a distinct marker; a legend and min/max y labels are
    attached.  Series must match ``x`` in length; NaN points are skipped.
    """
    if not x:
        raise ValueError("x must be non-empty")
    if not series:
        raise ValueError("series must be non-empty")
    if len(series) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {len(x)} x values"
            )
    points = [
        value
        for ys in series.values()
        for value in ys
        if value == value  # skip NaN
    ]
    if not points:
        raise ValueError("no finite points to plot")
    y_low, y_high = min(points), max(points)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(x), max(x)
    x_span = (x_high - x_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for xi, yi in zip(x, ys):
            if yi != yi:
                continue
            col = int((xi - x_low) / x_span * (width - 1))
            row = int((yi - y_low) / (y_high - y_low) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_high:.4g}"), len(f"{y_low:.4g}"))
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            label = f"{y_high:.4g}".rjust(label_width)
        elif row_idx == height - 1:
            label = f"{y_low:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * label_width
        + " +"
        + "-" * width
    )
    lines.append(
        " " * label_width
        + f"  {x_low:g}"
        + " " * max(1, width - len(f"{x_low:g}") - len(f"{x_high:g}"))
        + f"{x_high:g}"
    )
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
