"""Figure 4 — component performance of MAA and TAA on B4 (paper §V-B.2).

* **4a** service cost of MAA vs MinCost for the same accepted request sets
  (paper: MinCost up to 21.1% higher);
* **4b** distribution of randomized-rounding cost over the optimal
  scheduling cost, across repeated roundings (paper: 1000 repeats, ratio
  always below 1.2);
* **4c/4d** service revenue and accepted-request count of TAA vs Amoeba
  under a uniform 100 Gbps (10-unit) link bandwidth (paper: TAA up to
  +50.4% revenue and +33% accepted).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.baselines.amoeba import solve_amoeba
from repro.baselines.mincost import solve_mincost
from repro.baselines.opt import solve_opt_rl_spm
from repro.core.maa import round_paths, solve_maa
from repro.core.schedule import Schedule
from repro.core.taa import solve_taa
from repro.experiments.common import ExperimentConfig, ExperimentResult, make_instance
from repro.sim.metrics import evaluate_schedule
from repro.util.rng import ensure_rng
from repro.workload.value_models import PriceAwareValueModel

__all__ = ["run_fig4a", "run_fig4b", "run_fig4cd"]

#: The paper's Fig. 4c/4d setup: uniform 100 Gbps = 10 units per link.
UNIFORM_CAPACITY_UNITS = 10


def default_config_fig4a(**overrides) -> ExperimentConfig:
    """Fig. 4a's tuned configuration (loaded B4, best-of-10 roundings)."""
    params = dict(
        topology="b4",
        request_counts=(100, 200, 300, 400),
        max_duration=None,
        maa_rounds=10,
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def default_config_fig4cd(**overrides) -> ExperimentConfig:
    """Fig. 4c/4d's tuned configuration (contention regime, dispersed bids)."""
    params = dict(
        topology="b4",
        request_counts=(400, 800, 1200, 1600),
        max_duration=None,
        value_model=PriceAwareValueModel(markup=1.5, noise=0.9),
    )
    params.update(overrides)
    return ExperimentConfig(**params)


def run_fig4a(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Fig. 4a: service cost of MAA vs MinCost on B4, all requests accepted.

    The default sweep uses full-length request windows and enough requests
    that links carry multiple bandwidth units — below that the integer
    ceiling dominates both solutions and the LP's routing advantage cannot
    show (the paper's gap likewise grows with the request count).

    MAA's rounding stage is randomized; following the paper's repeated-
    rounding protocol (Fig. 4b) and how Metis deploys MAA, the reported
    cost is the cheapest of ``config.maa_rounds`` independent roundings of
    the one LP solution.
    """
    if config is None:
        config = default_config_fig4a()

    rows: list[list] = []
    rng = ensure_rng(config.seed)
    for num_requests in config.request_counts:
        instance = make_instance(config, num_requests)
        maa = solve_maa(instance, rng=rng)
        best = maa.schedule
        for _ in range(config.maa_rounds - 1):
            assignment = round_paths(instance, maa.fractional_weights, rng)
            candidate = Schedule(instance, assignment)
            if candidate.cost < best.cost:
                best = candidate
        mincost = solve_mincost(instance)
        evaluate_schedule("MAA", best)
        evaluate_schedule("MinCost", mincost)
        rows.append(
            [
                num_requests,
                best.cost,
                mincost.cost,
                mincost.cost / best.cost if best.cost else float("nan"),
                maa.fractional_cost,
            ]
        )
    return ExperimentResult(
        experiment="fig4a",
        description="service cost of MAA vs MinCost on B4 (all requests accepted)",
        headers=["requests", "maa_cost", "mincost_cost", "mincost_over_maa", "lp_lower_bound"],
        rows=rows,
    )


def run_fig4b(
    config: ExperimentConfig | None = None,
    *,
    num_roundings: int = 1000,
) -> ExperimentResult:
    """Fig. 4b: randomized-rounding cost over optimal cost, repeated.

    For each network and request count, the RL-SPM relaxation is solved
    once; the rounding (+ceiling) is then repeated ``num_roundings`` times
    and each outcome's cost is divided by the exact OPT(RL-SPM) cost.  The
    paper reports the ratio always below 1.2.
    """
    if config is None:
        config = ExperimentConfig(request_counts=(50, 100))
    if num_roundings < 1:
        raise ValueError(f"num_roundings must be >= 1, got {num_roundings}")

    rows: list[list] = []
    rng = ensure_rng(config.seed)
    for topology_name in ("sub-b4", "b4"):
        for num_requests in config.request_counts:
            instance = make_instance(
                replace(config, topology=topology_name), num_requests
            )
            maa = solve_maa(instance, rng=rng)
            optimal_cost = solve_opt_rl_spm(
                instance, time_limit=config.time_limit
            ).schedule.cost
            ratios = np.empty(num_roundings)
            for trial in range(num_roundings):
                assignment = round_paths(instance, maa.fractional_weights, rng)
                cost = Schedule(instance, assignment).cost
                ratios[trial] = cost / optimal_cost if optimal_cost else float("nan")
            rows.append(
                [
                    topology_name,
                    num_requests,
                    float(ratios.mean()),
                    float(np.percentile(ratios, 95)),
                    float(ratios.max()),
                    float(ratios.min()),
                ]
            )
    return ExperimentResult(
        experiment="fig4b",
        description=(
            f"randomized-rounding cost / optimal cost over {num_roundings} "
            "roundings (paper: always < 1.2)"
        ),
        headers=["network", "requests", "ratio_mean", "ratio_p95", "ratio_max", "ratio_min"],
        rows=rows,
    )


def run_fig4cd(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Figs. 4c/4d: TAA vs Amoeba under uniform 10-unit link bandwidth.

    The default sweep reaches the contention regime (the fixed bandwidth
    cannot satisfy everyone) where admission policy matters, and draws bids
    from the price-aware model with wide dispersion — with near-uniform
    value density, any feasible packing earns the same revenue and the two
    schedulers are indistinguishable by construction.
    """
    if config is None:
        config = default_config_fig4cd()

    rows: list[list] = []
    for num_requests in config.request_counts:
        instance = make_instance(config, num_requests)
        capacities = {key: UNIFORM_CAPACITY_UNITS for key in instance.edges}
        taa = solve_taa(instance, capacities)
        amoeba = solve_amoeba(instance, capacities)
        taa_metrics = evaluate_schedule("TAA", taa.schedule)
        amoeba_metrics = evaluate_schedule("Amoeba", amoeba.schedule)
        rows.append(
            [
                num_requests,
                taa_metrics.revenue,
                amoeba_metrics.revenue,
                taa_metrics.num_accepted,
                amoeba_metrics.num_accepted,
                taa.relaxation_revenue,
            ]
        )
    return ExperimentResult(
        experiment="fig4cd",
        description=(
            "service revenue (4c) and accepted requests (4d) of TAA vs "
            "Amoeba on B4, uniform 10-unit links"
        ),
        headers=[
            "requests",
            "taa_revenue",
            "amoeba_revenue",
            "taa_accepted",
            "amoeba_accepted",
            "lp_upper_bound",
        ],
        rows=rows,
    )
