"""Ablation studies for the design choices DESIGN.md calls out.

The paper motivates Metis' two tuning knobs (theta, tau) and its
LP-relaxation-based components but only evaluates one operating point;
these ablations quantify each choice:

* :func:`run_theta_ablation` — profit and wall-clock vs the alternation
  budget theta ("easy-to-control", §II-C);
* :func:`run_limiter_ablation` — the paper's min-utilization tau against
  the proportional rule at matched theta;
* :func:`run_value_model_ablation` — how the decline-benefit
  (Metis over accept-everything) depends on the bid distribution: flat,
  price-aware, and heavy-tailed bids;
* :func:`run_k_paths_ablation` — candidate-path count |P_i| vs MAA cost
  (more paths = better LP, slower solve);
* :func:`run_seed_stability` — multi-seed dispersion of the headline
  Metis-over-EcoFlow profit ratio.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.baselines.ecoflow import solve_ecoflow
from repro.core.instance import SPMInstance
from repro.core.maa import solve_maa
from repro.core.metis import Metis, MinUtilizationLimiter, ProportionalLimiter
from repro.experiments.common import (
    ExperimentConfig,
    ExperimentResult,
    make_instance,
    make_topology,
)
from repro.workload.patterns import (
    SEASONAL_RETAIL,
    generate_structured_workload,
    seasonal_weights,
)
from repro.workload.value_models import (
    FlatRateValueModel,
    HeavyTailValueModel,
    PriceAwareValueModel,
)

__all__ = [
    "run_theta_ablation",
    "run_limiter_ablation",
    "run_value_model_ablation",
    "run_k_paths_ablation",
    "run_seed_stability",
    "run_seasonality_ablation",
]


def _single_count(config: ExperimentConfig) -> int:
    return config.request_counts[-1]


def run_theta_ablation(
    config: ExperimentConfig | None = None,
    *,
    thetas: tuple[int, ...] = (1, 2, 5, 10, 20, 40),
) -> ExperimentResult:
    """Profit/time as a function of the alternation budget theta."""
    if config is None:
        config = ExperimentConfig(
            topology="sub-b4",
            request_counts=(120,),
            value_model=FlatRateValueModel(0.6),
        )
    instance = make_instance(config, _single_count(config))
    rows = []
    for theta in thetas:
        started = time.perf_counter()
        outcome = Metis(theta=theta, maa_rounds=config.maa_rounds).solve(
            instance, rng=config.seed
        )
        rows.append(
            [
                theta,
                outcome.num_rounds,
                outcome.best.profit,
                outcome.best.num_accepted,
                time.perf_counter() - started,
            ]
        )
    return ExperimentResult(
        experiment="ablation-theta",
        description="Metis profit vs alternation budget theta",
        headers=["theta", "rounds_run", "profit", "accepted", "seconds"],
        rows=rows,
    )


def run_limiter_ablation(
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """The tau rule: min-utilization (paper) vs proportional shrinking."""
    if config is None:
        config = ExperimentConfig(
            topology="sub-b4",
            request_counts=(120,),
            value_model=FlatRateValueModel(0.6),
        )
    instance = make_instance(config, _single_count(config))
    limiters = [
        ("min-util step=1 (paper)", MinUtilizationLimiter(step=1)),
        ("min-util step=2", MinUtilizationLimiter(step=2)),
        ("proportional 0.9", ProportionalLimiter(0.9)),
        ("proportional 0.7", ProportionalLimiter(0.7)),
    ]
    rows = []
    for name, limiter in limiters:
        started = time.perf_counter()
        outcome = Metis(
            theta=config.theta, limiter=limiter, maa_rounds=config.maa_rounds
        ).solve(instance, rng=config.seed)
        rows.append(
            [
                name,
                outcome.num_rounds,
                outcome.best.profit,
                outcome.best.num_accepted,
                time.perf_counter() - started,
            ]
        )
    return ExperimentResult(
        experiment="ablation-limiter",
        description="Metis profit under different BW-limiter (tau) rules",
        headers=["tau", "rounds_run", "profit", "accepted", "seconds"],
        rows=rows,
    )


def run_value_model_ablation(
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """Decline benefit vs bid distribution.

    For each value model, reports Metis profit against the
    accept-everything schedule (best MAA + local search on all requests) —
    the ratio is the economic value of being allowed to say no.
    """
    if config is None:
        config = ExperimentConfig(topology="b4", request_counts=(200,))
    models = [
        ("flat 0.6", FlatRateValueModel(0.6)),
        ("flat 1.8 (default)", FlatRateValueModel(1.8)),
        ("price-aware 1.5/0.2", PriceAwareValueModel(markup=1.5, noise=0.2)),
        ("price-aware 1.0/0.6", PriceAwareValueModel(markup=1.0, noise=0.6)),
        ("heavy-tail 2.5/0.5", HeavyTailValueModel(shape=2.5, scale=0.5)),
    ]
    rows = []
    for name, model in models:
        model_config = replace(config, value_model=model)
        instance = make_instance(model_config, _single_count(config))
        outcome = Metis(theta=config.theta, maa_rounds=config.maa_rounds).solve(
            instance, rng=config.seed
        )
        accept_all = solve_maa(instance, rng=config.seed).schedule
        ratio = (
            outcome.best.profit / accept_all.profit
            if accept_all.profit > 0
            else float("inf")
        )
        rows.append(
            [
                name,
                outcome.best.profit,
                accept_all.profit,
                ratio,
                outcome.best.num_accepted,
            ]
        )
    return ExperimentResult(
        experiment="ablation-value-model",
        description=(
            "decline benefit (Metis vs accept-everything MAA) per bid model"
        ),
        headers=[
            "value_model",
            "metis_profit",
            "accept_all_profit",
            "benefit_ratio",
            "metis_accepted",
        ],
        rows=rows,
    )


def run_k_paths_ablation(
    config: ExperimentConfig | None = None,
    *,
    path_counts: tuple[int, ...] = (1, 2, 3, 5),
) -> ExperimentResult:
    """Candidate-path budget |P_i| vs MAA cost and solve time."""
    if config is None:
        config = ExperimentConfig(
            topology="b4", request_counts=(200,), max_duration=None
        )
    rows = []
    for k_paths in path_counts:
        k_config = replace(config, k_paths=k_paths)
        instance = make_instance(k_config, _single_count(config))
        started = time.perf_counter()
        result = solve_maa(instance, rng=config.seed)
        rows.append(
            [
                k_paths,
                result.cost,
                result.fractional_cost,
                time.perf_counter() - started,
            ]
        )
    return ExperimentResult(
        experiment="ablation-k-paths",
        description="MAA cost vs candidate-path count per request",
        headers=["k_paths", "maa_cost", "lp_cost", "seconds"],
        rows=rows,
    )


def run_seasonality_ablation(
    config: ExperimentConfig | None = None,
) -> ExperimentResult:
    """Arrival seasonality vs profit (structured-workload extension).

    Bandwidth is charged on the cycle's *peak* per link, so concentrating
    the same request mass into fewer slots forces more purchased units for
    the same revenue.  This ablation draws identical-size workloads under
    flat, sinusoidal and retail-calendar arrival profiles and reports the
    profit erosion, for both Metis and the EcoFlow greedy.
    """
    if config is None:
        config = ExperimentConfig(topology="b4", request_counts=(200,))
    topology = make_topology(config.topology)
    profiles = [
        ("uniform", None),
        ("sinusoidal peak=2", seasonal_weights(config.num_slots, peak=2.0)),
        ("sinusoidal peak=4", seasonal_weights(config.num_slots, peak=4.0)),
        ("retail calendar", list(SEASONAL_RETAIL[: config.num_slots])),
    ]
    rows = []
    for name, weights in profiles:
        workload = generate_structured_workload(
            topology,
            _single_count(config),
            num_slots=config.num_slots,
            slot_weights=weights,
            max_duration=config.max_duration,
            value_model=config.value_model,
            rng=config.seed,
        )
        instance = SPMInstance.build(topology, workload, k_paths=config.k_paths)
        outcome = Metis(theta=config.theta, maa_rounds=config.maa_rounds).solve(
            instance, rng=config.seed
        )
        ecoflow = solve_ecoflow(instance)
        rows.append(
            [
                name,
                outcome.best.profit,
                outcome.best.num_accepted,
                ecoflow.profit,
                len(ecoflow.accepted_ids),
            ]
        )
    return ExperimentResult(
        experiment="ablation-seasonality",
        description="profit under flat vs peaked arrival profiles (peak charging)",
        headers=[
            "arrival profile",
            "metis_profit",
            "metis_accepted",
            "ecoflow_profit",
            "ecoflow_accepted",
        ],
        rows=rows,
    )


def run_seed_stability(
    config: ExperimentConfig | None = None,
    *,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> ExperimentResult:
    """Dispersion of the Metis/EcoFlow profit ratio across workload seeds."""
    if config is None:
        config = ExperimentConfig(topology="b4", request_counts=(200,))
    rows = []
    for seed in seeds:
        seed_config = replace(config, seed=seed)
        instance = make_instance(seed_config, _single_count(config))
        outcome = Metis(theta=config.theta, maa_rounds=config.maa_rounds).solve(
            instance, rng=seed
        )
        ecoflow = solve_ecoflow(instance)
        ratio = (
            outcome.best.profit / ecoflow.profit
            if ecoflow.profit > 0
            else float("inf")
        )
        rows.append(
            [seed, outcome.best.profit, ecoflow.profit, ratio]
        )
    return ExperimentResult(
        experiment="ablation-seeds",
        description="Metis vs EcoFlow profit across workload seeds",
        headers=["seed", "metis_profit", "ecoflow_profit", "ratio"],
        rows=rows,
    )
