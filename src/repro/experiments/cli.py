"""Command-line entry point: ``python -m repro`` / ``metis-repro``.

Subcommands regenerate the paper's figures::

    metis-repro fig3 --requests 50 100 150 --seed 7
    metis-repro fig4a
    metis-repro fig4b --roundings 200
    metis-repro fig4cd
    metis-repro fig5
    metis-repro all --output results.md

Figure data is printed as aligned tables; ``--output`` additionally writes
a Markdown report.

``serve`` instead runs the long-running broker of :mod:`repro.service`
over simulated billing cycles and prints its per-cycle ledger and
telemetry summary::

    metis-repro serve --topology b4 --duration 288 --cycles 2 --workers 4

With ``--wal`` the broker journals decisions for crash recovery and
``--resume`` continues a killed run bit-identically (see repro.state)::

    metis-repro serve --topology b4 --cycles 12 --wal broker.wal --resume

``serve --listen`` runs the *live* gateway instead (repro.gateway): bids
arrive as newline-delimited JSON over TCP and billing cycles close on
wall-clock deadlines; ``loadgen`` floods such a gateway with an
open-loop bid stream and reports decisions/sec plus latency tails::

    metis-repro serve --listen 127.0.0.1:7440 --duration 12 --slot-seconds 0.5
    metis-repro loadgen --connect 127.0.0.1:7440 --bids 100000 --rate 5000

Both serve modes drain on SIGINT/SIGTERM — pending bids are decided,
the WAL is flushed and the process exits 0 (a second signal forces exit
130).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments.ablations import (
    run_k_paths_ablation,
    run_limiter_ablation,
    run_seasonality_ablation,
    run_seed_stability,
    run_theta_ablation,
    run_value_model_ablation,
)
from repro.experiments import fig3, fig4, fig5
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4cd
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import render_results, write_markdown_report
from repro.util.tables import format_table

__all__ = [
    "main",
    "build_parser",
    "build_serve_parser",
    "build_loadgen_parser",
    "run_serve",
    "run_loadgen",
]

_EXPERIMENTS = ("fig3", "fig4a", "fig4b", "fig4cd", "fig5")
_ABLATIONS = (
    "ablation-theta",
    "ablation-limiter",
    "ablation-value-model",
    "ablation-k-paths",
    "ablation-seeds",
    "ablation-seasonality",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="metis-repro",
        description=(
            "Reproduce the evaluation of 'Towards Maximal Service Profit in "
            "Geo-Distributed Clouds' (ICDCS 2019)"
        ),
        epilog=(
            "There are also 'serve' (the streaming broker; with --listen, "
            "the live TCP gateway) and 'loadgen' (the open-loop load "
            "harness) subcommands: metis-repro serve --help / loadgen --help"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + _ABLATIONS + ("all", "ablations"),
        help="which figure or ablation to regenerate",
    )
    parser.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="request-count sweep (default depends on the experiment)",
    )
    parser.add_argument("--seed", type=int, default=2019, help="master seed")
    parser.add_argument(
        "--theta", type=int, default=30, help="Metis alternation rounds"
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=600.0,
        help="seconds per exact MILP solve",
    )
    parser.add_argument(
        "--roundings",
        type=int,
        default=1000,
        help="rounding repetitions for fig4b",
    )
    parser.add_argument(
        "--no-opt",
        action="store_true",
        help="fig3: skip the exact OPT solves",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="PATH",
        help="also write a Markdown report here",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render terminal line charts under each sweep table",
    )
    return parser


def _overrides(args: argparse.Namespace) -> dict:
    """The config fields the user set on the command line.

    Only these are overridden — each experiment keeps its figure-specific
    regime (topology, value model, request windows) unless explicitly
    swept.
    """
    fields = {
        "seed": args.seed,
        "theta": args.theta,
        "time_limit": args.time_limit,
    }
    if args.requests:
        fields["request_counts"] = tuple(args.requests)
    return fields


def _run(args: argparse.Namespace) -> list[ExperimentResult]:
    over = _overrides(args)
    fig4b_config = ExperimentConfig(
        **{"request_counts": (50, 100), **over}
    )
    runners = {
        "fig3": lambda: run_fig3(
            fig3.default_config(**over), include_opt=not args.no_opt
        ),
        "fig4a": lambda: run_fig4a(fig4.default_config_fig4a(**over)),
        "fig4b": lambda: run_fig4b(fig4b_config, num_roundings=args.roundings),
        "fig4cd": lambda: run_fig4cd(fig4.default_config_fig4cd(**over)),
        "fig5": lambda: run_fig5(fig5.default_config(**over)),
        "ablation-theta": lambda: run_theta_ablation(),
        "ablation-limiter": lambda: run_limiter_ablation(),
        "ablation-value-model": lambda: run_value_model_ablation(),
        "ablation-k-paths": lambda: run_k_paths_ablation(),
        "ablation-seeds": lambda: run_seed_stability(),
        "ablation-seasonality": lambda: run_seasonality_ablation(),
    }
    if args.experiment == "all":
        return [runners[name]() for name in _EXPERIMENTS]
    if args.experiment == "ablations":
        return [runners[name]() for name in _ABLATIONS]
    return [runners[args.experiment]()]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="metis-repro serve",
        description=(
            "Run the profit-maximizing broker over simulated billing cycles "
            "(streaming sealed-bid admission, see repro.service)"
        ),
    )
    parser.add_argument(
        "--topology",
        choices=("b4", "sub-b4", "abilene"),
        default="b4",
        help="WAN topology served",
    )
    parser.add_argument(
        "--duration",
        type=int,
        default=12,
        metavar="T",
        help="slots per billing cycle (e.g. 288 five-minute slots per day)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=None,
        help=(
            "number of rolling billing cycles (default 1; with --listen, "
            "0 or unset serves until a signal)"
        ),
    )
    parser.add_argument(
        "--listen",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help=(
            "serve the live TCP gateway on this address instead of the "
            "simulated broker (see repro.gateway)"
        ),
    )
    parser.add_argument(
        "--slot-seconds",
        type=float,
        default=1.0,
        metavar="S",
        help="gateway only: real seconds per billing slot",
    )
    parser.add_argument(
        "--conn-buffer",
        type=int,
        default=4096,
        metavar="N",
        help="gateway only: per-connection response buffer (slow readers "
        "beyond it are disconnected)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=1,
        metavar="W",
        help="slots per admission window (batch cadence)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=100,
        metavar="K",
        help="bid arrivals per cycle (synthetic source)",
    )
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="replay a recorded trace (.json or .jsonl) instead of generating",
    )
    parser.add_argument("--seed", type=int, default=2019, help="master seed")
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help=(
            "shard the broker across N price-coordinated workers "
            "(see repro.shard; 1 = the monolithic broker)"
        ),
    )
    parser.add_argument(
        "--partition",
        choices=("hash", "region"),
        default="hash",
        help="request-to-shard rule: source-DC hash or region affinity",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="solver worker processes (>= 2 enables the pool)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="decision-cache entries (0 disables)",
    )
    parser.add_argument(
        "--lp-screen",
        action="store_true",
        help=(
            "screen each exact batch MILP with its LP relaxation bound: "
            "provably hopeless batches are declined without an integer "
            "solve (decisions unchanged)"
        ),
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        metavar="N",
        help="split admission windows into MILPs of at most N bids",
    )
    parser.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="N",
        help="admission-queue bound; bids beyond it are shed",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=None,
        help="seconds per batch MILP solve (default 60; 1 with --listen)",
    )
    parser.add_argument(
        "--cycle-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock deadline per billing cycle; solves get shrinking "
            "slices of it and degrade down the resilience ladder "
            "(exact > incumbent > lp_round > greedy) when it runs short"
        ),
    )
    parser.add_argument(
        "--breaker-failures",
        type=int,
        default=0,
        metavar="N",
        help=(
            "open a circuit breaker after N consecutive solver failures "
            "(0 disables; degraded rungs answer while it is open)"
        ),
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="seconds an open breaker waits before a half-open probe",
    )
    parser.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the JSON telemetry report here",
    )
    parser.add_argument(
        "--wal",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "journal every decision to this write-ahead log "
            "(enables crash recovery, see repro.state)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="recover committed cycles from --wal before serving the rest",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=1,
        metavar="N",
        help="publish an atomic state snapshot every N committed cycles",
    )
    parser.add_argument(
        "--fsync",
        choices=("never", "batch", "always"),
        default="batch",
        help="WAL durability: fsync never, per cycle commit, or per record",
    )
    return parser


def _parse_listen(value: str, flag: str = "--listen") -> tuple[str, int]:
    """Split a ``HOST:PORT`` address (IPv6 hosts may be bracketed)."""
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"{flag} must be HOST:PORT, got {value!r}")
    return host.strip("[]") or "127.0.0.1", int(port)


def _install_drain_signals(on_first) -> None:
    """First SIGINT/SIGTERM drains via ``on_first``; the second exits 130."""
    import os
    import signal

    seen = {"count": 0}

    def handler(signum, frame) -> None:
        seen["count"] += 1
        if seen["count"] >= 2:
            os._exit(130)
        on_first()

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)


def run_serve(argv: Sequence[str] | None = None) -> int:
    """The ``serve`` subcommand: run the broker and print its report."""
    from repro.exceptions import StateError, WorkloadError
    from repro.service import Broker, BrokerConfig, TraceSource
    from repro.service.broker import DEFAULT_TIME_LIMIT

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.resume and not args.wal:
        parser.error("--resume requires --wal")
    if args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")
    if args.listen is not None:
        return _run_serve_live(parser, args)
    try:
        fields = dict(
            topology=args.topology,
            num_cycles=1 if args.cycles is None else args.cycles,
            slots_per_cycle=args.duration,
            window=args.window,
            requests_per_cycle=args.requests,
            seed=args.seed,
            workers=args.workers,
            cache_size=args.cache_size,
            lp_screen=args.lp_screen,
            max_batch=args.max_batch,
            queue_capacity=args.queue_capacity,
            time_limit=(
                DEFAULT_TIME_LIMIT if args.time_limit is None else args.time_limit
            ),
            wal_path=args.wal,
            snapshot_every=args.snapshot_every,
            fsync=args.fsync,
            cycle_budget=args.cycle_budget,
            breaker_failures=args.breaker_failures,
            breaker_reset=args.breaker_reset,
        )
        if args.shards > 1:
            from repro.shard import ShardConfig, ShardedBroker

            config = ShardConfig(
                **fields, shards=args.shards, partition=args.partition
            )
        else:
            config = BrokerConfig(**fields)
        source = TraceSource(args.trace) if args.trace else None
    except (ValueError, OSError, WorkloadError) as exc:
        parser.error(str(exc))
    if args.shards > 1:
        broker = ShardedBroker(config, source=source)
    else:
        broker = Broker(config, source=source)
    # A first SIGINT/SIGTERM stops at the next cycle boundary — the WAL
    # commit + snapshot there make the exit durable — and still exits 0
    # with the partial report; a second signal forces exit 130.
    _install_drain_signals(broker.request_stop)
    try:
        report = broker.run(resume=args.resume)
    except StateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    headers = [
        "cycle", "requests", "accepted", "declined", "shed",
        "revenue", "cost", "profit", "wall_s",
    ]
    rows = [
        [
            c.cycle, c.num_requests, c.accepted, c.declined, c.shed,
            c.revenue, c.cost, c.profit, c.wall_seconds,
        ]
        for c in report.cycles
    ]
    print(
        format_table(
            headers,
            rows,
            float_fmt=".3f",
            title=(
                f"serve: {args.topology}, {config.num_cycles} cycle(s) "
                f"x {args.duration} slots"
            ),
        )
    )
    summary = report.summary()
    print(
        f"\ntotal profit {summary['profit']:.3f} "
        f"({summary['accepted']}/{summary['decisions']} bids accepted, "
        f"{summary['shed']} shed)"
    )
    print(
        f"throughput {summary['decisions_per_sec']:.1f} decisions/sec, "
        f"p50 {summary['latency_p50_ms']:.1f} ms, "
        f"p95 {summary['latency_p95_ms']:.1f} ms per batch"
    )
    print(
        f"cache hit rate {summary['cache_hit_rate']:.0%} "
        f"({summary['cache_hits']} hits / {summary['cache_misses']} solves), "
        f"solver time {summary['solver_seconds']:.2f}s "
        f"of {summary['wall_seconds']:.2f}s wall"
    )
    if args.shards > 1:
        print(
            f"shards {summary['num_shards']} ({args.partition}): "
            f"{summary['ledger_price_iterations']} price iteration(s), "
            f"{summary['reconciliation_evictions']} eviction(s), "
            f"concurrency {summary['shard_concurrency']}"
        )
    if args.lp_screen:
        print(
            f"warm start: {summary['screened_batches']} batch(es) screened "
            f"by LP bound, {summary['warm_start_hits']} session hit(s)"
        )
    if args.cycle_budget is not None or args.breaker_failures:
        rungs = summary.get("rung_counts", {})
        rung_line = ", ".join(
            f"{name} {rungs.get(name, 0)}"
            for name in ("exact", "incumbent", "lp_round", "greedy")
        )
        print(
            f"resilience: {rung_line}; "
            f"breaker opens {summary.get('breaker_opens', 0)}, "
            f"backoff {summary.get('backoff_seconds', 0.0):.3f}s"
        )
    if args.wal:
        line = (
            f"wal {args.wal}: {summary['wal_bytes']} bytes "
            f"(fsync={args.fsync}), snapshots {summary['snapshot_seconds']:.3f}s"
        )
        if args.resume:
            line += f", {summary['recovered_batches']} batches recovered"
        print(line)
    if args.telemetry:
        report.dump_telemetry(args.telemetry)
        print(f"telemetry written to {args.telemetry}", file=sys.stderr)
    return 0


def _run_serve_live(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    """``serve --listen``: the real-time gateway of repro.gateway."""
    import asyncio
    import json

    from repro.gateway import GatewayConfig, run_gateway

    overrides = {}
    if args.time_limit is not None:
        overrides["time_limit"] = args.time_limit
    if args.queue_capacity is not None:
        overrides["queue_capacity"] = args.queue_capacity
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    try:
        host, port = _parse_listen(args.listen)
        config = GatewayConfig(
            host=host,
            port=port,
            topology=args.topology,
            slots_per_cycle=args.duration,
            window=args.window,
            slot_seconds=args.slot_seconds,
            num_cycles=args.cycles if args.cycles else None,
            cache_size=args.cache_size,
            conn_buffer=args.conn_buffer,
            wal_path=args.wal,
            snapshot_every=args.snapshot_every,
            fsync=args.fsync,
            resume=args.resume,
            shards=args.shards,
            partition=args.partition,
            cycle_budget=args.cycle_budget,
            breaker_failures=args.breaker_failures,
            breaker_reset=args.breaker_reset,
            **overrides,
        )
    except ValueError as exc:
        parser.error(str(exc))

    async def serve() -> "object":
        from repro.gateway import GatewayServer

        server = GatewayServer(config)
        await server.start()
        server.install_signal_handlers()
        bound_host, bound_port = server.address
        horizon = config.num_cycles if config.num_cycles else "unbounded"
        print(
            f"gateway listening on {bound_host}:{bound_port} "
            f"({args.topology}, {horizon} cycle(s) x {args.duration} slots "
            f"x {args.slot_seconds}s, window {args.window})",
            file=sys.stderr,
            flush=True,
        )
        await server.wait_closed()
        return server

    server = asyncio.run(serve())
    rows = [
        [
            c.cycle, c.num_requests, c.accepted, c.declined, c.shed,
            c.revenue, c.cost, c.profit, c.wall_seconds,
        ]
        for c in server.cycles
    ]
    if rows:
        print(
            format_table(
                [
                    "cycle", "requests", "accepted", "declined", "shed",
                    "revenue", "cost", "profit", "wall_s",
                ],
                rows,
                float_fmt=".3f",
                title=f"gateway: {args.topology}, {len(rows)} cycle(s) served",
            )
        )
    report = server.report()
    gw = report["gateway"]
    lat = report["admission_latency"]
    print(
        f"\n{gw['submitted']} bids: {gw['accepted']} accepted, "
        f"{gw['rejected']} rejected, {gw['shed']} shed, "
        f"{gw['errored']} errored ({report['bids_per_sec']:.1f} bids/sec)"
    )
    print(
        f"admission latency p50 {lat['p50_ms']:.1f} ms, "
        f"p99 {lat['p99_ms']:.1f} ms, p999 {lat['p999_ms']:.1f} ms"
    )
    if args.wal:
        print(f"wal {args.wal}: {report['wal_bytes']} bytes (fsync={args.fsync})")
    if args.telemetry:
        with open(args.telemetry, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"telemetry written to {args.telemetry}", file=sys.stderr)
    return 0


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="metis-repro loadgen",
        description=(
            "Flood a running 'serve --listen' gateway with an open-loop "
            "bid stream and report throughput + admission-latency tails"
        ),
    )
    parser.add_argument(
        "--connect",
        type=str,
        default="127.0.0.1:7440",
        metavar="HOST:PORT",
        help="gateway address",
    )
    parser.add_argument(
        "--bids", type=int, default=10_000, metavar="N", help="bids to submit"
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=1000.0,
        metavar="R",
        help="mean arrival rate, bids/sec",
    )
    parser.add_argument(
        "--process",
        choices=("constant", "poisson", "burst"),
        default="poisson",
        help="arrival process shape",
    )
    parser.add_argument(
        "--burst-period",
        type=float,
        default=1.0,
        metavar="S",
        help="burst process: seconds per on/off period",
    )
    parser.add_argument(
        "--burst-duty",
        type=float,
        default=0.2,
        metavar="F",
        help="burst process: fraction of each period spent bursting",
    )
    parser.add_argument(
        "--connections", type=int, default=4, help="parallel TCP connections"
    )
    parser.add_argument("--seed", type=int, default=2019, help="master seed")
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="replay a recorded trace instead of synthesizing bids",
    )
    parser.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="PATH",
        help="dump the JSON load report here",
    )
    return parser


def run_loadgen(argv: Sequence[str] | None = None) -> int:
    """The ``loadgen`` subcommand: drive a live gateway, print the report."""
    import asyncio
    import itertools
    import json

    from repro.exceptions import GatewayError, WorkloadError
    from repro.loadgen import LoadGenerator, make_arrivals, probe_gateway, synthesize_bids
    from repro.service.broker import _make_topology
    from repro.service.ingest import TraceSource

    parser = build_loadgen_parser()
    args = parser.parse_args(argv)
    try:
        host, port = _parse_listen(args.connect, flag="--connect")
        arrivals = make_arrivals(
            args.process,
            args.rate,
            seed=args.seed,
            period=args.burst_period,
            duty=args.burst_duty,
        )
    except ValueError as exc:
        parser.error(str(exc))

    async def drive():
        hello = await probe_gateway(host, port)
        if args.trace:
            trace = TraceSource(args.trace).trace
            bids = itertools.islice(
                itertools.cycle(trace), args.bids or len(trace)
            )
        else:
            topology = _make_topology(str(hello["topology"]).lower())
            bids = synthesize_bids(
                topology,
                num_bids=args.bids,
                num_slots=int(hello["slots_per_cycle"]),
                seed=args.seed,
            )
        generator = LoadGenerator(
            host, port, arrivals=arrivals, connections=args.connections
        )
        return hello, await generator.run(bids)

    try:
        hello, report = asyncio.run(drive())
    except (ConnectionError, OSError, GatewayError, WorkloadError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    lat = report.latency.summary()
    print(
        f"loadgen -> {host}:{port} ({hello['topology']}, "
        f"{hello['slots_per_cycle']} slots x {hello['slot_seconds']}s): "
        f"{args.process} arrivals at {args.rate:.0f} bids/sec "
        f"over {report.connections} connection(s)"
    )
    print(
        f"{report.submitted} submitted: {report.accepted} accepted, "
        f"{report.rejected} rejected, {report.shed} shed, "
        f"{report.errored} errored, {report.lost} lost "
        f"in {report.duration_seconds:.2f}s "
        f"({report.decisions_per_sec:.1f} decisions/sec)"
    )
    print(
        f"end-to-end latency p50 {lat['p50_ms']:.1f} ms, "
        f"p99 {lat['p99_ms']:.1f} ms, p999 {lat['p999_ms']:.1f} ms "
        f"(max {lat['max_ms']:.1f} ms)"
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.report}", file=sys.stderr)
    if not report.reconciles():
        print(
            "error: accounting identity violated "
            f"(responded {report.responded} + lost {report.lost} "
            f"!= submitted {report.submitted})",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    if argv and argv[0] == "serve":
        return run_serve(argv[1:])
    if argv and argv[0] == "loadgen":
        return run_loadgen(argv[1:])
    args = build_parser().parse_args(argv)
    results = _run(args)
    print(render_results(results, charts=args.chart))
    if args.output:
        write_markdown_report(
            results,
            args.output,
            title="Metis reproduction — experiment run",
        )
        print(f"\nreport written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
