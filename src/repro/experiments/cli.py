"""Command-line entry point: ``python -m repro`` / ``metis-repro``.

Subcommands regenerate the paper's figures::

    metis-repro fig3 --requests 50 100 150 --seed 7
    metis-repro fig4a
    metis-repro fig4b --roundings 200
    metis-repro fig4cd
    metis-repro fig5
    metis-repro all --output results.md

Figure data is printed as aligned tables; ``--output`` additionally writes
a Markdown report.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments.ablations import (
    run_k_paths_ablation,
    run_limiter_ablation,
    run_seasonality_ablation,
    run_seed_stability,
    run_theta_ablation,
    run_value_model_ablation,
)
from repro.experiments import fig3, fig4, fig5
from repro.experiments.common import ExperimentConfig, ExperimentResult
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4cd
from repro.experiments.fig5 import run_fig5
from repro.experiments.report import render_results, write_markdown_report

__all__ = ["main", "build_parser"]

_EXPERIMENTS = ("fig3", "fig4a", "fig4b", "fig4cd", "fig5")
_ABLATIONS = (
    "ablation-theta",
    "ablation-limiter",
    "ablation-value-model",
    "ablation-k-paths",
    "ablation-seeds",
    "ablation-seasonality",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="metis-repro",
        description=(
            "Reproduce the evaluation of 'Towards Maximal Service Profit in "
            "Geo-Distributed Clouds' (ICDCS 2019)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + _ABLATIONS + ("all", "ablations"),
        help="which figure or ablation to regenerate",
    )
    parser.add_argument(
        "--requests",
        type=int,
        nargs="+",
        default=None,
        metavar="K",
        help="request-count sweep (default depends on the experiment)",
    )
    parser.add_argument("--seed", type=int, default=2019, help="master seed")
    parser.add_argument(
        "--theta", type=int, default=30, help="Metis alternation rounds"
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        default=600.0,
        help="seconds per exact MILP solve",
    )
    parser.add_argument(
        "--roundings",
        type=int,
        default=1000,
        help="rounding repetitions for fig4b",
    )
    parser.add_argument(
        "--no-opt",
        action="store_true",
        help="fig3: skip the exact OPT solves",
    )
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        metavar="PATH",
        help="also write a Markdown report here",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render terminal line charts under each sweep table",
    )
    return parser


def _overrides(args: argparse.Namespace) -> dict:
    """The config fields the user set on the command line.

    Only these are overridden — each experiment keeps its figure-specific
    regime (topology, value model, request windows) unless explicitly
    swept.
    """
    fields = {
        "seed": args.seed,
        "theta": args.theta,
        "time_limit": args.time_limit,
    }
    if args.requests:
        fields["request_counts"] = tuple(args.requests)
    return fields


def _run(args: argparse.Namespace) -> list[ExperimentResult]:
    over = _overrides(args)
    fig4b_config = ExperimentConfig(
        **{"request_counts": (50, 100), **over}
    )
    runners = {
        "fig3": lambda: run_fig3(
            fig3.default_config(**over), include_opt=not args.no_opt
        ),
        "fig4a": lambda: run_fig4a(fig4.default_config_fig4a(**over)),
        "fig4b": lambda: run_fig4b(fig4b_config, num_roundings=args.roundings),
        "fig4cd": lambda: run_fig4cd(fig4.default_config_fig4cd(**over)),
        "fig5": lambda: run_fig5(fig5.default_config(**over)),
        "ablation-theta": lambda: run_theta_ablation(),
        "ablation-limiter": lambda: run_limiter_ablation(),
        "ablation-value-model": lambda: run_value_model_ablation(),
        "ablation-k-paths": lambda: run_k_paths_ablation(),
        "ablation-seeds": lambda: run_seed_stability(),
        "ablation-seasonality": lambda: run_seasonality_ablation(),
    }
    if args.experiment == "all":
        return [runners[name]() for name in _EXPERIMENTS]
    if args.experiment == "ablations":
        return [runners[name]() for name in _ABLATIONS]
    return [runners[args.experiment]()]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    results = _run(args)
    print(render_results(results, charts=args.chart))
    if args.output:
        write_markdown_report(
            results,
            args.output,
            title="Metis reproduction — experiment run",
        )
        print(f"\nreport written to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
