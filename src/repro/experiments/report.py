"""Report rendering for experiment results.

Renders :class:`~repro.experiments.common.ExperimentResult` tables to the
terminal and assembles the ``EXPERIMENTS.md`` record (paper claim vs
measured value per figure panel).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from pathlib import Path

from repro.experiments.charts import line_chart
from repro.experiments.common import ExperimentResult

__all__ = ["render_results", "chart_for_result", "write_markdown_report"]


def render_results(
    results: Sequence[ExperimentResult], *, charts: bool = False
) -> str:
    """All result tables (optionally with terminal charts) as one string."""
    blocks = []
    for result in results:
        blocks.append(result.to_table())
        if charts:
            chart = chart_for_result(result)
            if chart:
                blocks.append(chart)
    return "\n\n".join(blocks)


def chart_for_result(result: ExperimentResult) -> str | None:
    """A terminal line chart of a sweep result, or ``None`` if not chartable.

    Handles both layouts the experiments produce:

    * *long* format (``requests, solution, profit, ...``): the ``profit``
      column is pivoted into one series per solution;
    * *wide* format (``requests, <a>_profit, <b>_profit, ...``): every
      ``*_profit``/``*_revenue``/``*_cost`` column becomes a series.
    """
    if "requests" not in result.headers:
        return None
    x_all = result.column("requests")

    if "solution" in result.headers and "profit" in result.headers:
        solutions = list(dict.fromkeys(result.column("solution")))
        x = sorted(set(x_all))
        series = {}
        for solution in solutions:
            by_k = {
                row[result.headers.index("requests")]: row[
                    result.headers.index("profit")
                ]
                for row in result.filtered(solution=solution)
            }
            series[solution] = [by_k.get(k, float("nan")) for k in x]
    else:
        metric_headers = [
            h
            for h in result.headers
            if h.endswith(("_profit", "_revenue", "_cost"))
        ]
        if not metric_headers:
            return None
        x = x_all
        series = {h: result.column(h) for h in metric_headers}

    finite = [
        v for ys in series.values() for v in ys if not math.isnan(v)
    ]
    if len(x) < 2 or not finite:
        return None
    return line_chart(x, series, title=f"{result.experiment} (chart)")


def _markdown_table(result: ExperimentResult, float_fmt: str = ".3f") -> str:
    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, float_fmt)
        return str(value)

    lines = [
        "| " + " | ".join(result.headers) + " |",
        "|" + "|".join("---" for _ in result.headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(cell(v) for v in row) + " |" for row in result.rows
    )
    return "\n".join(lines)


def write_markdown_report(
    results: Sequence[ExperimentResult],
    path: str | Path,
    *,
    title: str = "Experiment results",
    preamble: str = "",
) -> None:
    """Write the results as a Markdown document at ``path``."""
    sections = [f"# {title}", ""]
    if preamble:
        sections.extend([preamble, ""])
    for result in results:
        sections.append(f"## {result.experiment} — {result.description}")
        sections.append("")
        sections.append(_markdown_table(result))
        if result.notes:
            sections.append("")
            sections.extend(f"> note: {note}" for note in result.notes)
        sections.append("")
    Path(path).write_text("\n".join(sections), encoding="utf-8")
