"""Multi-seed aggregation of experiment results.

A single workload draw can flatter or sandbag any scheduler; the paper's
curves are (presumably) averaged, and reviewers ask for error bars.  This
module re-runs any figure experiment across several master seeds and
aggregates every numeric column into mean and sample standard deviation,
keyed by the non-numeric columns (sweep point, solution name, ...).

Example::

    from repro.experiments import fig5, run_fig5
    from repro.experiments.multi_seed import aggregate_over_seeds

    result = aggregate_over_seeds(
        run_fig5, fig5.default_config, seeds=(1, 2, 3),
        request_counts=(100, 200),
    )
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from typing import Any

from repro.experiments.common import ExperimentConfig, ExperimentResult

__all__ = ["aggregate_over_seeds"]


def aggregate_over_seeds(
    runner: Callable[[ExperimentConfig], ExperimentResult],
    config_factory: Callable[..., ExperimentConfig],
    *,
    seeds: Sequence[int],
    key_headers: Sequence[str] | None = None,
    **config_overrides: Any,
) -> ExperimentResult:
    """Run ``runner`` once per seed and aggregate numeric columns.

    ``config_factory`` is an experiment's ``default_config`` (or any
    callable accepting the same overrides plus ``seed``).  Rows across runs
    are matched on the *key* columns — by default every non-numeric column
    plus ``requests`` (the sweep axis) when present; pass ``key_headers``
    to override.  Every other numeric column ``c`` becomes ``c_mean`` and
    ``c_std``.  Rows missing from some run (e.g. a timed-out exact solve)
    aggregate over the runs that have them, with the run count reported in
    ``n_runs``.
    """
    if not seeds:
        raise ValueError("seeds must be non-empty")
    results = [
        runner(config_factory(seed=seed, **config_overrides)) for seed in seeds
    ]

    headers = results[0].headers
    for result in results[1:]:
        if result.headers != headers:
            raise ValueError(
                f"runs disagree on headers: {headers} vs {result.headers}"
            )

    numeric_cols = _numeric_columns(results, headers)
    if key_headers is None:
        key_cols = [i for i in range(len(headers)) if i not in numeric_cols]
        if "requests" in headers:
            sweep_col = headers.index("requests")
            if sweep_col not in key_cols:
                key_cols.insert(0, sweep_col)
                key_cols.sort()
                numeric_cols = [i for i in numeric_cols if i != sweep_col]
    else:
        unknown = [h for h in key_headers if h not in headers]
        if unknown:
            raise ValueError(f"unknown key headers: {unknown}")
        key_cols = sorted(headers.index(h) for h in key_headers)
        numeric_cols = [i for i in numeric_cols if i not in key_cols]

    groups: dict[tuple, dict[int, list[float]]] = {}
    order: list[tuple] = []
    for result in results:
        for row in result.rows:
            key = tuple(row[i] for i in key_cols)
            if key not in groups:
                groups[key] = {i: [] for i in numeric_cols}
                order.append(key)
            for i in numeric_cols:
                value = row[i]
                if isinstance(value, (int, float)) and not math.isnan(value):
                    groups[key][i].append(float(value))

    out_headers = [headers[i] for i in key_cols]
    for i in numeric_cols:
        out_headers.extend([f"{headers[i]}_mean", f"{headers[i]}_std"])
    out_headers.append("n_runs")

    rows = []
    for key in order:
        row: list[Any] = list(key)
        observed = 0
        for i in numeric_cols:
            values = groups[key][i]
            observed = max(observed, len(values))
            row.extend(_mean_std(values))
        row.append(observed)
        rows.append(row)

    base = results[0]
    return ExperimentResult(
        experiment=f"{base.experiment}-x{len(seeds)}seeds",
        description=f"{base.description} (mean/std over seeds {tuple(seeds)})",
        headers=out_headers,
        rows=rows,
        notes=[note for result in results for note in result.notes],
    )


def _numeric_columns(
    results: list[ExperimentResult], headers: list[str]
) -> list[int]:
    """Columns whose every present value is an int/float (bools excluded)."""
    numeric = []
    for i in range(len(headers)):
        values = [row[i] for result in results for row in result.rows]
        if values and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in values
        ):
            numeric.append(i)
    return numeric


def _mean_std(values: list[float]) -> tuple[float, float]:
    if not values:
        return float("nan"), float("nan")
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)
