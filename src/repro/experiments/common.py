"""Shared experiment plumbing: configuration, instance building, results.

Every experiment draws its workload from the paper's synthetic model
(§V-A) over one of the two evaluation topologies, then runs a set of
solutions and collects :class:`~repro.sim.metrics.SolutionMetrics` rows.
The defaults reproduce the paper's setup: 12 monthly slots, rates uniform
in 0.1–5 Gbps (0.01–0.5 units of 10 Gbps), Poisson arrivals, random DC
pairs, Cloudflare-derived link prices.

Request values use the flat-rate model by default: customers pay a
geography-blind retail price per reserved Gbps-month, exactly the mismatch
against region-dependent wholesale transit prices that makes *declining*
requests profitable (the phenomenon Figs. 3 and 5 quantify).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.instance import SPMInstance
from repro.net.topologies import b4, sub_b4
from repro.net.topology import Topology
from repro.util.tables import format_table
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import FlatRateValueModel, ValueModel

__all__ = ["ExperimentConfig", "ExperimentResult", "make_topology", "make_instance"]

#: Flat retail price per bandwidth unit per slot used by the default value
#: model.  1.8 sits between the cheapest links (price 1 -> profitable) and
#: the expensive inter-continental ones (3.75-6.5 -> unprofitable), giving
#: the mixed-profitability request population the paper's evaluation needs.
DEFAULT_UNIT_VALUE = 1.8


@dataclass
class ExperimentConfig:
    """Parameters shared by the figure experiments.

    ``request_counts`` is the sweep of K values (the x-axis of most
    figures); ``seed`` pins workload generation and every randomized
    algorithm; ``time_limit`` bounds each exact MILP solve.
    """

    topology: str = "b4"
    request_counts: tuple[int, ...] = (50, 100, 150, 200)
    seed: int = 2019
    num_slots: int = 12
    max_duration: int | None = 4
    k_paths: int = 3
    value_model: ValueModel = field(
        default_factory=lambda: FlatRateValueModel(DEFAULT_UNIT_VALUE)
    )
    theta: int = 30
    maa_rounds: int = 5
    time_limit: float | None = 600.0

    def __post_init__(self) -> None:
        if self.topology not in ("b4", "sub-b4"):
            raise ValueError(
                f"topology must be 'b4' or 'sub-b4', got {self.topology!r}"
            )
        if not self.request_counts or any(k < 1 for k in self.request_counts):
            raise ValueError(f"bad request_counts: {self.request_counts!r}")


def make_topology(name: str) -> Topology:
    """Build one of the two evaluation topologies by name."""
    if name == "b4":
        return b4()
    if name == "sub-b4":
        return sub_b4()
    raise ValueError(f"unknown topology {name!r}")


def make_instance(config: ExperimentConfig, num_requests: int) -> SPMInstance:
    """One seeded SPM instance of ``num_requests`` under ``config``.

    The workload seed mixes in ``num_requests`` so different sweep points
    draw independent workloads while the whole sweep stays reproducible.
    """
    topology = make_topology(config.topology)
    workload = generate_workload(
        topology,
        WorkloadConfig(
            num_requests=num_requests,
            num_slots=config.num_slots,
            max_duration=config.max_duration,
            value_model=config.value_model,
        ),
        rng=config.seed * 100_003 + num_requests,
    )
    return SPMInstance.build(topology, workload, k_paths=config.k_paths)


@dataclass
class ExperimentResult:
    """A named table of experiment rows, renderable for reports."""

    experiment: str
    description: str
    headers: list[str]
    rows: list[list[Any]]
    notes: list[str] = field(default_factory=list)

    def to_table(self, *, float_fmt: str = ".3f") -> str:
        title = f"{self.experiment}: {self.description}"
        table = format_table(self.headers, self.rows, float_fmt=float_fmt, title=title)
        if self.notes:
            table += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return table

    def column(self, header: str) -> list[Any]:
        """All values of one column, by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[list[Any]]:
        """Rows whose named columns equal the given values."""
        indices = {self.headers.index(k): v for k, v in criteria.items()}
        return [
            row
            for row in self.rows
            if all(row[i] == v for i, v in indices.items())
        ]
