"""The experiment harness: one module per paper figure.

Each ``run_*`` function regenerates the data series behind one figure panel
of the paper's evaluation (§V) and returns an
:class:`~repro.experiments.common.ExperimentResult` whose rows are the
points the paper plots.  ``python -m repro`` exposes them on the command
line.
"""

from repro.experiments.common import ExperimentConfig, ExperimentResult, make_instance
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4cd
from repro.experiments.fig5 import run_fig5
from repro.experiments.multi_seed import aggregate_over_seeds
from repro.experiments.ablations import (
    run_k_paths_ablation,
    run_limiter_ablation,
    run_seasonality_ablation,
    run_seed_stability,
    run_theta_ablation,
    run_value_model_ablation,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "make_instance",
    "run_fig3",
    "run_fig4a",
    "run_fig4b",
    "run_fig4cd",
    "run_fig5",
    "run_theta_ablation",
    "run_limiter_ablation",
    "run_value_model_ablation",
    "run_k_paths_ablation",
    "run_seed_stability",
    "run_seasonality_ablation",
    "aggregate_over_seeds",
]
