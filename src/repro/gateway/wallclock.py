"""Real time for the gateway: the SimClock structure on wall deadlines.

:class:`WallClock` implements the :class:`~repro.service.clock.CycleClock`
protocol — the same cycle/window/slot partition as
:class:`~repro.service.clock.SimClock`, byte-identical ``Tick`` streams —
but additionally pins every boundary to a monotonic wall deadline:
slot ``s`` of cycle ``c`` closes ``(c * slots_per_cycle + s + 1) *
slot_seconds`` after :meth:`start`.  The gateway's serving loop sleeps to
those deadlines, so billing cycles close on real time no matter how
traffic flows; everything else (the broker core, telemetry, the queues)
consumes the protocol and cannot tell the two clocks apart — which is
exactly what lets ``run_cycle`` accept either through its ``clock``
parameter.

Time is injected (``now`` defaults to :func:`time.monotonic`) so tests
drive the clock with a fake instead of sleeping.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator

from repro.exceptions import GatewayError
from repro.service.clock import Tick

__all__ = ["WallClock"]


class WallClock:
    """Wall-time billing cycles: the gateway's deadline source.

    ``num_cycles=None`` runs unbounded (the serve-forever default);
    bounded clocks mirror :class:`SimClock` exactly.  The purely
    structural queries (:meth:`windows`, :meth:`ticks`,
    :meth:`window_of`) never look at the time source, so they agree with
    a ``SimClock`` of the same shape even before :meth:`start`.
    """

    def __init__(
        self,
        slots_per_cycle: int,
        *,
        window: int = 1,
        num_cycles: int | None = None,
        slot_seconds: float = 1.0,
        now: Callable[[], float] = time.monotonic,
    ) -> None:
        if slots_per_cycle < 1:
            raise ValueError(f"slots_per_cycle must be >= 1, got {slots_per_cycle}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if num_cycles is not None and num_cycles < 1:
            raise ValueError(f"num_cycles must be >= 1 or None, got {num_cycles}")
        if not (slot_seconds > 0):
            raise ValueError(f"slot_seconds must be > 0, got {slot_seconds!r}")
        self.slots_per_cycle = slots_per_cycle
        self.window = window
        self.num_cycles = num_cycles
        self.slot_seconds = slot_seconds
        self.now = now
        self._t0: float | None = None

    # ----------------------------------------------------- structural protocol

    @property
    def windows_per_cycle(self) -> int:
        return -(-self.slots_per_cycle // self.window)

    @property
    def cycle_seconds(self) -> float:
        return self.slots_per_cycle * self.slot_seconds

    def cycles(self) -> range:
        if self.num_cycles is None:
            raise GatewayError("an unbounded WallClock cannot enumerate cycles")
        return range(self.num_cycles)

    def windows(self, cycle: int) -> Iterator[Tick]:
        """The admission-window boundaries of one cycle, in time order."""
        if cycle < 0 or (self.num_cycles is not None and cycle >= self.num_cycles):
            raise ValueError(
                f"cycle must be in [0, {self.num_cycles}), got {cycle}"
            )
        for start in range(0, self.slots_per_cycle, self.window):
            stop = min(start + self.window, self.slots_per_cycle)
            yield Tick(cycle=cycle, window_start=start, window_stop=stop)

    def ticks(self) -> Iterator[Tick]:
        """Every admission window, cycle by cycle (finite clocks only)."""
        for cycle in self.cycles():
            yield from self.windows(cycle)

    def window_of(self, slot: int) -> int:
        if not (0 <= slot < self.slots_per_cycle):
            raise ValueError(
                f"slot must be in [0, {self.slots_per_cycle}), got {slot}"
            )
        return slot // self.window

    # ------------------------------------------------------------- wall time

    def start(self, *, at: float | None = None, cycle: int = 0) -> None:
        """Pin the epoch: cycle ``cycle`` begins now (or at ``at``).

        A resumed gateway passes the recovered ``next_cycle`` so past
        cycles' deadlines are all in the past by construction and serving
        continues at the right boundary.
        """
        if cycle < 0:
            raise ValueError(f"cycle must be >= 0, got {cycle}")
        origin = self.now() if at is None else at
        self._t0 = origin - cycle * self.cycle_seconds

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def _require_started(self) -> float:
        if self._t0 is None:
            raise GatewayError("WallClock.start() must be called first")
        return self._t0

    def elapsed(self) -> float:
        """Seconds since the (possibly back-dated) epoch."""
        return self.now() - self._require_started()

    def current_slot(self) -> int:
        """The global slot index the wall clock is currently inside."""
        return max(0, int(self.elapsed() / self.slot_seconds))

    def current_cycle(self) -> int:
        return self.current_slot() // self.slots_per_cycle

    def slot_in_cycle(self) -> int:
        return self.current_slot() % self.slots_per_cycle

    def deadline(self, tick: Tick) -> float:
        """The monotonic instant at which ``tick``'s window closes."""
        t0 = self._require_started()
        global_stop = tick.cycle * self.slots_per_cycle + tick.window_stop
        return t0 + global_stop * self.slot_seconds

    def remaining(self, deadline: float) -> float:
        """Seconds until ``deadline`` (clamped at 0)."""
        return max(0.0, deadline - self.now())

    def __repr__(self) -> str:
        horizon = "unbounded" if self.num_cycles is None else self.num_cycles
        return (
            f"WallClock(cycles={horizon}, "
            f"slots_per_cycle={self.slots_per_cycle}, window={self.window}, "
            f"slot_seconds={self.slot_seconds}, started={self.started})"
        )
