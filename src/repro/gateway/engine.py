"""The live cycle engine: ``run_cycle``'s core, fed one window at a time.

The broker's :func:`~repro.service.broker.run_cycle` assumes the whole
cycle's :class:`RequestSet` exists up front — it keys arrivals by start
slot and walks a clock.  A live gateway only learns what arrived when a
real window closes, so :class:`LiveCycleEngine` inverts the control flow:
the server pushes each window's drained batch into :meth:`decide` and the
engine maintains exactly the state ``run_cycle`` would — committed loads,
charged integer units, the assignment, per-batch telemetry records —
using the *same* primitives (:func:`solve_batch` / :func:`commit_decision`
and the shared :class:`~repro.service.cache.DecisionCache`).  Edge
indexing is derived from the topology alone, so per-batch
:class:`SPMInstance`\\ s all agree on the ledger arrays.

:meth:`close_cycle` returns an ordinary
:class:`~repro.service.broker.CycleResult`, which is what lets the
durability layer journal gateway cycles through the exact same
``batch``/``cycle`` records — and the WAL crash matrix — as broker runs.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.online import commit_decision, solve_batch
from repro.exceptions import GatewayError, SolverTimeoutError
from repro.lp.result import SolveStatus
from repro.net.topology import Topology
from repro.resilience import CircuitBreaker, CycleBudget, DegradationLadder
from repro.service.broker import CycleResult
from repro.service.cache import DecisionCache
from repro.service.telemetry import BatchRecord
from repro.workload.request import Request, RequestSet

__all__ = ["LiveCycleEngine"]


class LiveCycleEngine:
    """Streaming admission state for one gateway (cycle after cycle)."""

    def __init__(
        self,
        topology: Topology,
        slots_per_cycle: int,
        *,
        k_paths: int = 3,
        time_limit: float | None = None,
        cache: DecisionCache | None = None,
        max_batch: int | None = None,
        fast_path: bool = True,
        on_batch=None,
        budget: CycleBudget | None = None,
        breaker: CircuitBreaker | None = None,
        check_cancelled=None,
    ) -> None:
        if slots_per_cycle < 1:
            raise ValueError(f"slots_per_cycle must be >= 1, got {slots_per_cycle}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1 or None, got {max_batch}")
        self.topology = topology
        self.slots_per_cycle = slots_per_cycle
        self.k_paths = k_paths
        self.time_limit = time_limit
        self.cache = cache
        self.max_batch = max_batch
        self.fast_path = fast_path
        #: Shared wall-clock deadline for each cycle's solves; re-armed by
        #: :meth:`start_cycle`.  With a budget (or breaker) set, decisions
        #: route through a :class:`DegradationLadder` instead of the bare
        #: exact solve, so every window commits before the deadline.
        self.budget = budget
        self.breaker = breaker
        self.check_cancelled = check_cancelled
        self.ladder: DegradationLadder | None = None
        if budget is not None or breaker is not None:
            self.ladder = DegradationLadder(
                budget=budget,
                breaker=breaker,
                time_limit=time_limit,
                fast_path=fast_path,
            )
        #: Invoked with each committed :class:`BatchRecord` — the same
        #: write-ahead hook ``run_cycle`` offers the durability layer.
        self.on_batch = on_batch

        self.edges = [e.key for e in topology.edges]
        self.prices = np.array([topology.price(*key) for key in self.edges])
        #: Optional per-edge dual surcharge: when set (by the sharded
        #: gateway's bandwidth ledger), decisions are solved against the
        #: effective prices ``prices + dual_prices`` while revenue, cost
        #: and the charged ledger stay on the true prices — the same
        #: steering contract as ``run_cycle(dual_prices=...)``.
        self.dual_prices: np.ndarray | None = None
        #: (source, dest) -> candidate paths, shared across every batch
        #: instance this engine ever builds.
        self._path_cache: dict[tuple, list] = {}
        self.cycle = -1
        self.start_cycle(0)

    # ------------------------------------------------------------- lifecycle

    def start_cycle(self, cycle_index: int) -> None:
        """Open a fresh billing cycle: empty ledgers, empty assignment."""
        if cycle_index <= self.cycle:
            raise GatewayError(
                f"cycles must advance: {cycle_index} after {self.cycle}"
            )
        self.cycle = cycle_index
        if self.budget is not None:
            self.budget.restart()
        num_edges = len(self.edges)
        self.committed = np.zeros((num_edges, self.slots_per_cycle))
        self.charged = np.zeros(num_edges)
        self.assignment: dict[int, int | None] = {}
        self.requests: list[Request] = []
        self.batches: list[BatchRecord] = []
        self.revenue = 0.0
        self.shed = 0
        self._opened_at = time.perf_counter()

    def seen(self, request_id: int) -> bool:
        """Was ``request_id`` already decided (or pending) this cycle?"""
        return request_id in self.assignment

    # -------------------------------------------------------------- deciding

    def _batch_instance(self, batch: list[Request]) -> SPMInstance:
        requests = RequestSet(batch, self.slots_per_cycle)
        paths = {}
        for req in batch:
            key = (req.source, req.dest)
            cached = self._path_cache.get(key)
            if cached is None:
                cached = self.topology.candidate_paths(
                    req.source, req.dest, k=self.k_paths
                )
                self._path_cache[key] = cached
            paths[req.request_id] = cached
        return SPMInstance(self.topology, requests, paths)

    def decide(
        self,
        batch: list[Request],
        *,
        window_start: int,
        window_shed: int = 0,
    ) -> list[int | None]:
        """Decide one closed window's arrivals; returns a choice per bid.

        Splits the window into ``max_batch``-bounded MILPs exactly like
        ``run_cycle``, attaches ``window_shed`` to the window's first
        record (or a shed-only record when everything was shed), commits
        every acceptance into the cycle ledgers, and fires ``on_batch``
        per record the moment it is decided.
        """
        self.shed += window_shed
        choices: list[int | None] = []
        drained_any = False
        offset = 0
        while offset < len(batch):
            limit = len(batch) if self.max_batch is None else self.max_batch
            chunk = batch[offset : offset + limit]
            offset += len(chunk)
            chunk_ids = [req.request_id for req in chunk]
            for req in chunk:
                if req.request_id in self.assignment:
                    raise GatewayError(
                        f"request_id {req.request_id} already decided in "
                        f"cycle {self.cycle}"
                    )
            instance = self._batch_instance(chunk)
            decision_instance = instance
            dual_digest = b""
            if self.dual_prices is not None and np.any(self.dual_prices):
                decision_instance = instance.reprice(
                    instance.prices + self.dual_prices
                )
                dual_digest = hashlib.blake2b(
                    np.ascontiguousarray(self.dual_prices).tobytes(),
                    digest_size=16,
                ).digest()
            solver_start = time.perf_counter()
            decision = None
            hit = False
            timed_out = False
            suboptimal = False
            rung = "cache"
            key = None
            if self.cache is not None:
                key = self.cache.make_key(
                    instance, chunk_ids, self.committed, self.charged
                )
                if dual_digest:
                    key = (key[0] + dual_digest, key[1])
                decision = self.cache.get(key)
                hit = decision is not None
            if decision is None and self.ladder is not None:
                outcome = self.ladder.decide(
                    decision_instance,
                    chunk_ids,
                    self.committed,
                    self.charged,
                    check_cancelled=self.check_cancelled,
                )
                decision = list(outcome.choices)
                timed_out = outcome.timed_out
                suboptimal = outcome.suboptimal
                rung = outcome.rung
                if self.cache is not None and outcome.cacheable:
                    self.cache.put(key, decision)
            elif decision is None:
                rung = "exact"
                try:
                    outcome = solve_batch(
                        decision_instance,
                        chunk_ids,
                        self.committed,
                        self.charged,
                        time_limit=self.time_limit,
                        check_cancelled=self.check_cancelled,
                        fast_path=self.fast_path,
                    )
                except SolverTimeoutError:
                    decision = [None] * len(chunk_ids)
                    timed_out = True
                else:
                    decision = list(outcome.choices)
                    suboptimal = outcome.suboptimal
                    if self.cache is not None and outcome.status is SolveStatus.OPTIMAL:
                        self.cache.put(key, decision)
            solver_seconds = time.perf_counter() - solver_start

            cost_before = float(self.prices @ self.charged)
            accepted = commit_decision(
                instance, chunk_ids, decision, self.committed, self.charged
            )
            cost_after = float(self.prices @ self.charged)
            self.assignment.update(zip(chunk_ids, decision))
            self.requests.extend(chunk)
            revenue = sum(
                req.value
                for req, path in zip(chunk, decision)
                if path is not None
            )
            self.revenue += revenue
            record = BatchRecord(
                cycle=self.cycle,
                window_start=window_start,
                size=len(chunk_ids),
                accepted=accepted,
                declined=len(chunk_ids) - accepted,
                shed=0 if drained_any else window_shed,
                revenue=revenue,
                incremental_cost=cost_after - cost_before,
                solver_seconds=solver_seconds,
                cache_hit=hit,
                timed_out=timed_out,
                suboptimal=suboptimal,
                rung=rung,
            )
            self._commit_record(record)
            drained_any = True
            choices.extend(decision)
        if window_shed and not drained_any:
            # Every arrival of the window was shed: record it anyway,
            # mirroring run_cycle's shed-only records.
            self._commit_record(
                BatchRecord(
                    cycle=self.cycle,
                    window_start=window_start,
                    size=0,
                    accepted=0,
                    declined=0,
                    shed=window_shed,
                    revenue=0.0,
                    incremental_cost=0.0,
                    solver_seconds=0.0,
                    cache_hit=False,
                    rung="shed",
                )
            )
        return choices

    def _commit_record(self, record: BatchRecord) -> None:
        self.batches.append(record)
        if self.on_batch is not None:
            self.on_batch(record)

    # --------------------------------------------------------------- closing

    def close_cycle(self) -> CycleResult:
        """Finalize the open cycle into a :class:`CycleResult`.

        Revenue is the sum of accepted bids and cost is ``prices ·
        charged`` — identical to the Schedule-based accounting of
        ``run_cycle`` because :func:`commit_decision` already ratchets
        ``charged`` to the ceiling of every realized peak.
        """
        accepted = sum(1 for path in self.assignment.values() if path is not None)
        declined = len(self.assignment) - accepted
        cost = float(self.prices @ self.charged)
        return CycleResult(
            cycle=self.cycle,
            num_requests=len(self.assignment) + self.shed,
            accepted=accepted,
            declined=declined,
            shed=self.shed,
            revenue=self.revenue,
            cost=cost,
            profit=self.revenue - cost,
            wall_seconds=time.perf_counter() - self._opened_at,
            batches=list(self.batches),
            assignment=dict(self.assignment),
            purchased={
                int(edge): float(units)
                for edge, units in enumerate(self.charged)
                if units
            },
        )
