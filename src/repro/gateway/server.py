"""The asyncio bid gateway: the live broker behind a socket.

``GatewayServer`` exposes the serving loop over TCP with the
newline-delimited JSON protocol of :mod:`repro.gateway.protocol`.  The
architecture is one event loop with three kinds of actors:

* **connection readers** (one per client) parse bid lines, answer
  malformed input with structured per-line errors, and either admit each
  bid into the global bounded admission queue or — when the queue is
  full — shed it with an immediate response;
* **one decision loop** sleeps to :class:`~repro.gateway.WallClock`
  deadlines; at each admission-window close it drains the queue and
  decides the batch exactly through :class:`LiveCycleEngine` (the same
  incremental MILP, decision cache and integer-unit charging as the
  offline-clocked broker), then routes each verdict back through its
  connection's bounded :class:`ResponseChannel`;
* **connection writers** (one per client) pump responses with real
  ``drain()`` backpressure; a reader too slow to keep up overflows its
  channel and is disconnected rather than allowed to stall decisions.

Billing cycles close on real deadlines.  With ``wal_path`` set, every
decision is journaled and every cycle committed through the *same*
durability layer as the broker (:mod:`repro.state`), so a crashed
gateway's WAL recovers bit-identically to what was acknowledged.  On
SIGINT/SIGTERM the gateway drains: pending bids are decided, the open
cycle is committed and snapshotted, the WAL is fsync'd regardless of
policy (:meth:`repro.state.Journal.close` with ``sync=True``), clients
get a ``bye``, and the process exits 0 — a second signal aborts with
exit 130.

Exact accounting is enforced, not assumed: ``accepted + rejected + shed
+ errored == submitted`` is asserted at every cycle boundary and at
drain.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.decomp.partition import PARTITION_MODES
from repro.exceptions import GatewayError, ProtocolError
from repro.gateway.backpressure import GatewayCounters, PendingBid, ResponseChannel
from repro.gateway.engine import LiveCycleEngine
from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    bye_message,
    decision_message,
    error_message,
    hello_message,
    parse_bid_line,
)
from repro.gateway.wallclock import WallClock
from repro.resilience import CircuitBreaker, CycleBudget
from repro.service.broker import BrokerConfig, _StateWriter, _make_topology
from repro.service.cache import DecisionCache
from repro.service.ingest import AdmissionQueue, PushSource
from repro.service.telemetry import LatencyHistogram, TelemetryCollector
from repro.state import (
    WAL_FORMAT,
    FaultPlan,
    Journal,
    SimulatedCrash,
    SnapshotStore,
    broker_snapshot_state,
    config_fingerprint,
    recover,
    snapshot_path,
)
from repro.state.journal import FSYNC_POLICIES

__all__ = ["GatewayConfig", "GatewayServer", "run_gateway"]


@dataclass
class GatewayConfig:
    """Everything that pins a gateway run.

    The decision-relevant core (topology, cycle shape, ``k_paths``,
    queue bounds) mirrors :class:`~repro.service.broker.BrokerConfig`;
    what is new is real time (``slot_seconds``), the listen address, and
    the per-connection response buffer.  ``num_cycles=None`` serves until
    stopped.  ``resume=True`` (requires ``wal_path``) recovers the
    committed-cycle prefix before listening.
    """

    host: str = "127.0.0.1"
    port: int = 0
    topology: str = "b4"
    slots_per_cycle: int = 12
    window: int = 1
    slot_seconds: float = 0.1
    num_cycles: int | None = None
    k_paths: int = 3
    # Real-time defaults: admission MILPs grow superlinearly with batch
    # size (a 64-bid batch can take seconds), so live serving bounds the
    # queue, the chunk size and the per-solve budget.  A timed-out chunk
    # rejects its bids — late never blocks the clock.
    time_limit: float | None = 1.0
    queue_capacity: int | None = 256
    max_batch: int | None = 16
    cache_size: int = 1024
    conn_buffer: int = 4096
    fast_path: bool = True
    wal_path: str | Path | None = None
    snapshot_every: int = 1
    fsync: str = "batch"
    resume: bool = False
    # Sharded serving: shards > 1 swaps the single LiveCycleEngine for a
    # ShardedLiveEngine (repro.shard.live) — per-source-DC sub-engines
    # coordinated through a shared bandwidth ledger.
    shards: int = 1
    partition: str = "hash"
    # Resilience levers (repro.resilience), mirroring BrokerConfig: a
    # wall-clock budget per billing cycle routes decisions through the
    # degradation ladder; breaker_failures > 0 arms a circuit breaker
    # (one per shard when sharded) in front of the exact solver.  All
    # three are execution levers — absent from the WAL fingerprint.
    cycle_budget: float | None = None
    breaker_failures: int = 0
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.slots_per_cycle < 1:
            raise ValueError(
                f"slots_per_cycle must be >= 1, got {self.slots_per_cycle}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not (self.slot_seconds > 0):
            raise ValueError(f"slot_seconds must be > 0, got {self.slot_seconds!r}")
        if self.num_cycles is not None and self.num_cycles < 1:
            raise ValueError(
                f"num_cycles must be >= 1 or None, got {self.num_cycles}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if self.max_batch is not None and self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1 or None, got {self.max_batch}"
            )
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.conn_buffer < 1:
            raise ValueError(f"conn_buffer must be >= 1, got {self.conn_buffer}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.resume and self.wal_path is None:
            raise ValueError("resume=True requires wal_path")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"partition must be one of {PARTITION_MODES}, "
                f"got {self.partition!r}"
            )
        if self.cycle_budget is not None and not (self.cycle_budget > 0):
            raise ValueError(
                f"cycle_budget must be > 0 or None, got {self.cycle_budget!r}"
            )
        if self.breaker_failures < 0:
            raise ValueError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if not (self.breaker_reset > 0):
            raise ValueError(
                f"breaker_reset must be > 0, got {self.breaker_reset!r}"
            )

    def broker_config(self) -> BrokerConfig:
        """The decision-equivalent :class:`BrokerConfig` surrogate.

        This is what the WAL fingerprint is computed over, so a gateway
        journal refuses to resume under a changed decision-relevant
        configuration through exactly the broker's guard.  Live-only
        fields (address, ``slot_seconds``, buffers) are execution levers
        and deliberately absent, like ``workers`` for the broker.
        """
        return BrokerConfig(
            topology=self.topology,
            num_cycles=1 if self.num_cycles is None else self.num_cycles,
            slots_per_cycle=self.slots_per_cycle,
            window=self.window,
            requests_per_cycle=0,
            seed=0,
            k_paths=self.k_paths,
            max_duration=None,
            time_limit=self.time_limit,
            queue_capacity=self.queue_capacity,
            max_batch=self.max_batch,
            fast_path=self.fast_path,
            wal_path=self.wal_path,
            snapshot_every=self.snapshot_every,
            fsync=self.fsync,
        )

    def clock(self) -> WallClock:
        return WallClock(
            self.slots_per_cycle,
            window=self.window,
            num_cycles=self.num_cycles,
            slot_seconds=self.slot_seconds,
        )


class _Connection:
    """Server-side connection state: outbox, line numbers, outstanding bids."""

    __slots__ = (
        "conn_id",
        "channel",
        "pump",
        "lineno",
        "submitted",
        "responded",
        "eof",
        "outstanding",
        "_drained",
    )

    def __init__(self, conn_id: int, buffer: int) -> None:
        self.conn_id = conn_id
        self.channel = ResponseChannel(capacity=buffer)
        self.pump: asyncio.Task | None = None
        self.lineno = 0
        self.submitted = 0
        self.responded = 0
        self.eof = False
        self.outstanding = 0
        self._drained = asyncio.Event()
        self._drained.set()

    def send(self, message: dict[str, Any]) -> bool:
        delivered = self.channel.send(message)
        if delivered and message.get("type") in ("decision", "error"):
            self.responded += 1
        return delivered

    def bid_admitted(self) -> None:
        self.outstanding += 1
        self._drained.clear()

    def bid_resolved(self) -> None:
        self.outstanding -= 1
        if self.outstanding <= 0:
            self._drained.set()

    async def wait_drained(self) -> None:
        await self._drained.wait()


class GatewayServer:
    """The live gateway; see the module docstring for the architecture."""

    def __init__(
        self, config: GatewayConfig | None = None, *, faults: FaultPlan | None = None
    ) -> None:
        self.config = config if config is not None else GatewayConfig()
        self.faults = faults
        self.topology = _make_topology(self.config.topology)
        self._nodes = frozenset(self.topology.datacenters)
        self.counters = GatewayCounters()
        self.telemetry = TelemetryCollector()
        self.latency = LatencyHistogram()
        self.cycles: list = []
        #: Per-cycle realized arrivals, so a broker can replay/audit the
        #: exact traffic this gateway served (see ingest.PushSource).
        self.arrivals = PushSource(self.config.slots_per_cycle)
        self.crashed: BaseException | None = None
        self._engine: LiveCycleEngine | None = None
        self._clock: WallClock | None = None
        self._queue = AdmissionQueue(self.config.queue_capacity)
        self._pending_ids: set[int] = set()
        self._conns: dict[int, _Connection] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._next_conn_id = 0
        self._window_shed = 0
        self._stopping: asyncio.Event | None = None
        self._done: asyncio.Event | None = None
        self._ticker: asyncio.Task | None = None
        self._server: asyncio.AbstractServer | None = None
        self._journal: Journal | None = None
        self._writer: _StateWriter | None = None
        self._signals_seen = 0
        self._started_at = 0.0

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Recover (if resuming), open the WAL, bind, and start serving."""
        config = self.config
        self._stopping = asyncio.Event()
        self._done = asyncio.Event()

        next_cycle = 0
        recovered: list = []
        if config.wal_path is not None:
            fingerprint = config_fingerprint(config.broker_config())
            if config.shards > 1:
                # Sharding changes decisions (partitioned MILPs), so the
                # WAL refuses to splice runs with different shard setups.
                # Imported here: repro.shard pulls in this module's
                # package via the live engine.
                from repro.shard.recovery import shard_fingerprint

                fingerprint = shard_fingerprint(
                    fingerprint, config.shards, config.partition, "live"
                )
            wal_path = Path(config.wal_path)
            if config.resume:
                state = recover(wal_path, fingerprint=fingerprint)
                recovered = state.cycles
                next_cycle = state.next_cycle
            self._journal = Journal.open(
                wal_path,
                fsync=config.fsync,
                fsync_hook=(
                    self.faults.fsync_hook() if self.faults is not None else None
                ),
            )
            self._journal.append(
                {
                    "type": "open",
                    "format": WAL_FORMAT,
                    "fingerprint": fingerprint,
                    "next_cycle": next_cycle,
                }
            )
            self._journal.commit()
            self._writer = _StateWriter(
                self._journal,
                SnapshotStore(snapshot_path(wal_path)),
                fingerprint,
                config.broker_config(),
                self.faults,
                completed=list(recovered),
            )
        for result in recovered:
            self.cycles.append(result)
            for record in result.batches:
                self.telemetry.record_batch(record)
            self.telemetry.record_cycle(result.cycle, result.profit)
        self.telemetry.recovered_batches = sum(len(c.batches) for c in recovered)

        cache = (
            DecisionCache(config.cache_size) if config.cache_size > 0 else None
        )
        budget = (
            CycleBudget(config.cycle_budget)
            if config.cycle_budget is not None
            else None
        )
        check_cancelled = None
        if self.faults is not None:
            faults = self.faults

            def check_cancelled() -> None:
                faults.maybe_hang_solver()

        if config.shards > 1:
            from repro.shard.live import ShardedLiveEngine

            self._engine = ShardedLiveEngine(
                self.topology,
                config.slots_per_cycle,
                shards=config.shards,
                partition=config.partition,
                k_paths=config.k_paths,
                time_limit=config.time_limit,
                cache=cache,
                max_batch=config.max_batch,
                fast_path=config.fast_path,
                on_batch=self._on_batch,
                budget=budget,
                breaker_failures=config.breaker_failures,
                breaker_reset=config.breaker_reset,
                check_cancelled=check_cancelled,
            )
        else:
            breaker = (
                CircuitBreaker(
                    failure_threshold=config.breaker_failures,
                    reset_seconds=config.breaker_reset,
                )
                if config.breaker_failures > 0
                else None
            )
            self._engine = LiveCycleEngine(
                self.topology,
                config.slots_per_cycle,
                k_paths=config.k_paths,
                time_limit=config.time_limit,
                cache=cache,
                max_batch=config.max_batch,
                fast_path=config.fast_path,
                on_batch=self._on_batch,
                budget=budget,
                breaker=breaker,
                check_cancelled=check_cancelled,
            )
        if next_cycle > 0:
            self._engine.start_cycle(next_cycle)

        self._clock = config.clock()
        self._clock.start(cycle=next_cycle)
        self._started_at = time.perf_counter()
        self._server = await asyncio.start_server(
            self._handle_conn, config.host, config.port
        )
        self._ticker = asyncio.create_task(self._serve_windows())

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is resolved when config said 0."""
        if self._server is None or not self._server.sockets:
            raise GatewayError("gateway is not listening")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def request_stop(self) -> None:
        """Begin a graceful drain (idempotent, callable from handlers)."""
        if self._stopping is not None:
            self._stopping.set()

    async def stop(self) -> None:
        """Drain and shut down: decide pending, commit, flush, disconnect."""
        self.request_stop()
        await self.wait_closed()

    async def wait_closed(self) -> None:
        """Block until the gateway has fully shut down; re-raise crashes."""
        if self._done is None:
            return
        await self._done.wait()
        if self.crashed is not None:
            raise self.crashed

    def install_signal_handlers(self) -> None:
        """SIGINT/SIGTERM → graceful drain; a second signal → exit 130."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, self._on_signal)

    def _on_signal(self) -> None:
        self._signals_seen += 1
        if self._signals_seen >= 2:
            # Forced: abandon the drain. 130 = interrupted, by convention.
            os._exit(130)
        self.request_stop()

    # ------------------------------------------------------------ serving loop

    def _on_batch(self, record) -> None:
        self.telemetry.record_batch(record)
        if self._writer is not None:
            self._writer.on_batch(record)

    async def _serve_windows(self) -> None:
        config = self.config
        try:
            cycle = self._engine.cycle
            while config.num_cycles is None or cycle < config.num_cycles:
                stopped = False
                for tick in self._clock.windows(cycle):
                    stopped = await self._wait_until(self._clock.deadline(tick))
                    self._close_window(tick)
                    if stopped:
                        break
                self._commit_cycle()
                if stopped:
                    return
                cycle += 1
                if config.num_cycles is None or cycle < config.num_cycles:
                    self._engine.start_cycle(cycle)
        except SimulatedCrash as exc:
            # The fault harness "killed" us: leave everything un-flushed
            # exactly as a real crash would and surface via wait_closed().
            self.crashed = exc
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # pragma: no cover - defensive
            self.crashed = exc
        finally:
            await self._shutdown()

    async def _wait_until(self, deadline: float) -> bool:
        """Sleep to ``deadline``; ``True`` when a drain interrupted the wait."""
        while True:
            if self._stopping.is_set():
                return True
            remaining = self._clock.remaining(deadline)
            if remaining <= 0:
                return False
            try:
                await asyncio.wait_for(self._stopping.wait(), timeout=remaining)
                return True
            except asyncio.TimeoutError:
                return False

    def _close_window(self, tick) -> None:
        """Drain and decide one admission window, then route the verdicts."""
        bids = self._queue.drain()
        window_shed = self._window_shed
        self._window_shed = 0
        choices = self._engine.decide(
            [bid.request for bid in bids],
            window_start=tick.window_start,
            window_shed=window_shed,
        )
        now = time.monotonic()
        for bid, choice in zip(bids, choices):
            self._pending_ids.discard(bid.request.request_id)
            latency = max(0.0, now - bid.submitted_at)
            self.latency.record(latency)
            if choice is not None:
                self.counters.accepted += 1
                verdict = "accept"
            else:
                self.counters.rejected += 1
                verdict = "reject"
            delivered = bid.channel.send(
                decision_message(
                    request_id=bid.request.request_id,
                    decision=verdict,
                    path=choice,
                    cycle=tick.cycle,
                    window_start=tick.window_start,
                    latency_ms=latency * 1e3,
                )
            )
            if not delivered:
                self.counters.responses_dropped += 1
            bid.channel.bid_resolved()

    def _commit_cycle(self) -> None:
        result = self._engine.close_cycle()
        self.counters.assert_reconciled(
            pending=len(self._queue), where=f"cycle {result.cycle} commit"
        )
        self.arrivals.feed(result.cycle, list(self._engine.requests))
        if self._writer is not None:
            self._writer.commit_cycle(result)
        self.cycles.append(result)
        self.telemetry.record_cycle(result.cycle, result.profit)
        shard_counters = getattr(self._engine, "shard_counters", None)
        if shard_counters is not None:
            for shard_id, counters in shard_counters().items():
                self.telemetry.record_shard(shard_id, counters)
            self.telemetry.ledger_price_iterations = (
                self._engine.ledger.price_iterations
            )

    async def _shutdown(self) -> None:
        """Tear down: close the listener, flush the WAL, say goodbye."""
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
        if self._journal is not None:
            if self.crashed is None:
                # Drain path: a final snapshot plus a forced fsync, so the
                # exit is durable even under fsync="never".
                if self._writer is not None and self.cycles:
                    state = broker_snapshot_state(
                        self._writer.fingerprint,
                        self._writer.config,
                        self._writer.completed,
                    )
                    self._writer.snapshot_seconds += (
                        self._writer.snapshots.publish(state)
                    )
                self._journal.close(sync=True)
            # On a simulated crash the journal is deliberately left
            # unclosed: flushed appends survive, nothing else does.
        self.telemetry.wall_seconds = time.perf_counter() - self._started_at
        self.telemetry.wal_bytes = (
            self._journal.size_bytes if self._journal is not None else 0
        )
        engine = self._engine
        if engine is not None:
            fleet_counters = getattr(engine, "breaker_counters", None)
            breaker = getattr(engine, "breaker", None)
            if fleet_counters is not None:
                totals = fleet_counters()
                self.telemetry.breaker_opens = totals["opens"]
                self.telemetry.breaker_failures = totals["failures"]
                self.telemetry.breaker_probes = totals["probes"]
                self.telemetry.breaker_short_circuits = totals["short_circuits"]
            elif breaker is not None:
                self.telemetry.breaker_opens = breaker.opens
                self.telemetry.breaker_failures = breaker.failures
                self.telemetry.breaker_probes = breaker.probes
                self.telemetry.breaker_short_circuits = breaker.short_circuits
        self.telemetry.snapshot_seconds = (
            self._writer.snapshot_seconds if self._writer is not None else 0.0
        )
        pumps = []
        for conn in list(self._conns.values()):
            conn.send(
                bye_message(
                    submitted=conn.submitted,
                    responded=conn.responded,
                    reason="drain" if self.crashed is None else "crash",
                )
            )
            conn.channel.close_when_done()
            if conn.pump is not None:
                pumps.append(conn.pump)
        if pumps:
            # Best-effort delivery of the goodbye before readers are cut.
            await asyncio.wait(pumps, timeout=2.0)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._done.set()

    # -------------------------------------------------------------- connections

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        conn = _Connection(conn_id, self.config.conn_buffer)
        self._conns[conn_id] = conn
        pump = asyncio.create_task(conn.channel.pump(writer))
        conn.pump = pump
        config = self.config
        conn.send(
            hello_message(
                topology=self.topology.name,
                slots_per_cycle=config.slots_per_cycle,
                window=config.window,
                slot_seconds=config.slot_seconds,
                num_cycles=config.num_cycles,
            )
        )
        try:
            while not conn.channel.dead:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # An overlong line: count it, answer structurally, and
                    # close — the stream cannot be resynchronized.
                    conn.lineno += 1
                    self.counters.submitted += 1
                    self.counters.errored += 1
                    conn.send(
                        error_message(
                            conn.lineno,
                            f"line {conn.lineno}: bid line exceeds the "
                            "stream limit",
                        )
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # EOF: client half-closed after its last bid
                conn.lineno += 1
                if not line.strip():
                    continue
                self._submit(conn, line)
            conn.eof = True
            # Let every in-flight bid resolve before the goodbye, so a
            # well-behaved client always sees all its decisions.
            await conn.wait_drained()
            if not self._stopping.is_set():
                conn.send(
                    bye_message(
                        submitted=conn.submitted,
                        responded=conn.responded,
                        reason="overflow" if conn.channel.dead else "eof",
                    )
                )
            conn.channel.close_when_done()
            await pump
        except asyncio.CancelledError:
            # Cancellation here is the server tearing this connection down
            # at shutdown (the bye already went out): end quietly instead
            # of re-raising into asyncio.streams' done-callback.
            conn.channel.close_when_done()
            pump.cancel()
            await asyncio.gather(pump, return_exceptions=True)
        finally:
            self._conns.pop(conn_id, None)
            self._conn_tasks.discard(task)

    def _submit(self, conn: _Connection, line: bytes) -> None:
        """Account one received bid line: error, shed, or admit."""
        self.counters.submitted += 1
        conn.submitted += 1
        try:
            request = parse_bid_line(
                line,
                conn.lineno,
                num_slots=self.config.slots_per_cycle,
                nodes=self._nodes,
            )
        except ProtocolError as exc:
            self.counters.errored += 1
            conn.send(error_message(exc.lineno, str(exc)))
            return
        if self._engine.seen(request.request_id) or (
            request.request_id in self._pending_ids
        ):
            self.counters.errored += 1
            conn.send(
                error_message(
                    conn.lineno,
                    f"line {conn.lineno}: duplicate request_id "
                    f"{request.request_id} in cycle {self._engine.cycle}",
                )
            )
            return
        if self._stopping.is_set():
            # Draining: no new work is admitted; shed with an answer.
            self._respond_shed(conn, request)
            return
        bid = PendingBid(
            request=request,
            channel=conn,
            submitted_at=time.monotonic(),
            lineno=conn.lineno,
        )
        if self._queue.offer(bid):
            self._pending_ids.add(request.request_id)
            conn.bid_admitted()
        else:
            self._respond_shed(conn, request)

    def _respond_shed(self, conn: _Connection, request) -> None:
        self.counters.shed += 1
        self._window_shed += 1
        self.latency.record(0.0)
        engine = self._engine
        delivered = conn.send(
            decision_message(
                request_id=request.request_id,
                decision="shed",
                path=None,
                cycle=engine.cycle,
                window_start=0,
                latency_ms=0.0,
            )
        )
        if not delivered:
            self.counters.responses_dropped += 1

    # ------------------------------------------------------------------ report

    def report(self) -> dict[str, Any]:
        """The run summary: broker telemetry + gateway ledgers + latency."""
        summary = self.telemetry.summary()
        wall = self.telemetry.wall_seconds or (
            time.perf_counter() - self._started_at if self._started_at else 0.0
        )
        responses = self.counters.accounted
        summary.update(
            {
                "protocol": PROTOCOL_VERSION,
                "gateway": self.counters.to_dict(),
                "bids_per_sec": responses / wall if wall > 0 else 0.0,
                "admission_latency": self.latency.summary(),
            }
        )
        return summary


async def run_gateway(
    config: GatewayConfig, *, faults: FaultPlan | None = None, signals: bool = True
) -> GatewayServer:
    """Start a gateway, serve until its horizon or a signal, and drain."""
    server = GatewayServer(config, faults=faults)
    await server.start()
    if signals:
        server.install_signal_handlers()
    await server.wait_closed()
    return server
