"""The gateway wire protocol: newline-delimited JSON, trace-schema bids.

One connection carries two independent streams over a single socket:

* **client → gateway**: one bid per line, using exactly the per-request
  JSONL *trace* schema of :mod:`repro.workload.traces`
  (``request_id``/``source``/``dest``/``start``/``end``/``rate``/
  ``value``) — a recorded trace replays over the wire byte-for-byte,
  minus its header line;
* **gateway → client**: one JSON object per line, each tagged with a
  ``type``: a ``hello`` banner on connect (the serving configuration a
  client needs to build valid bids), a ``decision`` per submitted bid
  (``accept``/``reject``/``shed`` plus the chosen path and the measured
  admission latency), a structured per-line ``error`` for malformed
  input (mirroring :class:`~repro.exceptions.WorkloadError`'s line
  numbers for traces — the connection survives), and a ``bye`` with the
  connection's final accounting when the client half-closes.

Parsing never trusts the peer: every failure mode of a bid line maps to
:class:`~repro.exceptions.ProtocolError` carrying the 1-based line
number, so the server can answer with an ``error`` response instead of
dropping the connection.
"""

from __future__ import annotations

import json
from typing import Any

from repro.exceptions import ProtocolError, WorkloadError
from repro.workload.request import Request

__all__ = [
    "PROTOCOL_VERSION",
    "DECISIONS",
    "encode_message",
    "decode_message",
    "bid_to_line",
    "parse_bid_line",
    "hello_message",
    "decision_message",
    "error_message",
    "bye_message",
]

#: Wire schema version, stamped into the hello banner.
PROTOCOL_VERSION = 1

#: The admission verdicts a decision response may carry.
DECISIONS = ("accept", "reject", "shed")

#: The trace-schema fields of one bid line (all required).
_BID_FIELDS = ("request_id", "source", "dest", "start", "end", "rate", "value")


def encode_message(message: dict[str, Any]) -> bytes:
    """One response as a compact, newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes | str) -> dict[str, Any]:
    """Parse one gateway response line (the client side of the protocol)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed response line ({exc})") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("response line must be a JSON object with a 'type'")
    return message


def bid_to_line(request: Request) -> bytes:
    """Serialize one bid in the wire (= trace) schema, newline-terminated."""
    return encode_message(
        {
            "request_id": request.request_id,
            "source": str(request.source),
            "dest": str(request.dest),
            "start": request.start,
            "end": request.end,
            "rate": request.rate,
            "value": request.value,
        }
    )


def parse_bid_line(
    line: bytes | str,
    lineno: int,
    *,
    num_slots: int | None = None,
    nodes: Any = None,
) -> Request:
    """Parse one submitted bid line into a :class:`Request`.

    ``lineno`` is the 1-based line number within the connection; every
    failure raises :class:`ProtocolError` carrying it, so the caller can
    produce the structured per-line error response.  With ``num_slots``
    the bid's slot window is additionally checked against the gateway's
    billing-cycle length (the same bound :class:`RequestSet` enforces);
    with ``nodes`` (a container of valid node ids) the endpoints are
    checked against the served topology.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"line {lineno}: malformed bid line ({exc})", lineno=lineno
        ) from None
    if not isinstance(data, dict):
        raise ProtocolError(
            f"line {lineno}: bid line must be a JSON object, "
            f"got {type(data).__name__}",
            lineno=lineno,
        )
    missing = [field for field in _BID_FIELDS if field not in data]
    if missing:
        raise ProtocolError(
            f"line {lineno}: bid missing fields {missing}", lineno=lineno
        )
    try:
        request = Request(
            request_id=int(data["request_id"]),
            source=data["source"],
            dest=data["dest"],
            start=int(data["start"]),
            end=int(data["end"]),
            rate=float(data["rate"]),
            value=float(data["value"]),
        )
    except WorkloadError as exc:
        raise ProtocolError(f"line {lineno}: {exc}", lineno=lineno) from None
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            f"line {lineno}: invalid bid record ({exc!r})", lineno=lineno
        ) from None
    if num_slots is not None and request.end >= num_slots:
        raise ProtocolError(
            f"line {lineno}: bid window ends at slot {request.end}, outside "
            f"the billing cycle of {num_slots} slots",
            lineno=lineno,
        )
    if nodes is not None:
        for endpoint in (request.source, request.dest):
            if endpoint not in nodes:
                raise ProtocolError(
                    f"line {lineno}: unknown node {endpoint!r}", lineno=lineno
                )
    return request


# ----------------------------------------------------------------- responses


def hello_message(
    *,
    topology: str,
    slots_per_cycle: int,
    window: int,
    slot_seconds: float,
    num_cycles: int | None,
) -> dict[str, Any]:
    """The banner sent on connect: everything a client needs to bid."""
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "topology": topology,
        "slots_per_cycle": slots_per_cycle,
        "window": window,
        "slot_seconds": slot_seconds,
        "num_cycles": num_cycles,
    }


def decision_message(
    *,
    request_id: int,
    decision: str,
    path: int | None,
    cycle: int,
    window_start: int,
    latency_ms: float,
) -> dict[str, Any]:
    """One bid's verdict. ``latency_ms`` is submit-to-decision, gateway-side."""
    if decision not in DECISIONS:
        raise ValueError(f"decision must be one of {DECISIONS}, got {decision!r}")
    return {
        "type": "decision",
        "request_id": request_id,
        "decision": decision,
        "path": path,
        "cycle": cycle,
        "window_start": window_start,
        "latency_ms": latency_ms,
    }


def error_message(lineno: int | None, error: str) -> dict[str, Any]:
    """A structured per-line error; the connection stays usable."""
    return {"type": "error", "line": lineno, "error": error}


def bye_message(
    *, submitted: int, responded: int, reason: str = "eof"
) -> dict[str, Any]:
    """The connection's closing accounting line."""
    return {
        "type": "bye",
        "submitted": submitted,
        "responded": responded,
        "reason": reason,
    }
