"""repro.gateway — the real-time asyncio bid gateway.

The simulation broker (:mod:`repro.service`) decides bids against a
simulated clock; this package puts the *same* decision core behind a
socket and a wall clock.  ``repro serve --listen HOST:PORT`` runs a
:class:`GatewayServer`: clients submit newline-delimited JSON bids in the
recorded-trace schema, every bid gets a streamed ``accept`` / ``reject``
/ ``shed`` response, billing cycles close on real deadlines
(:class:`WallClock`), admission is bounded end to end
(:mod:`repro.gateway.backpressure`), and — with a WAL configured — every
decision flows through the durability layer of :mod:`repro.state`, so
live gateways crash-recover exactly like offline brokers.

The load side of the story lives in :mod:`repro.loadgen`.
"""

from repro.gateway.backpressure import GatewayCounters, PendingBid, ResponseChannel
from repro.gateway.engine import LiveCycleEngine
from repro.gateway.protocol import (
    DECISIONS,
    PROTOCOL_VERSION,
    bid_to_line,
    bye_message,
    decision_message,
    decode_message,
    encode_message,
    error_message,
    hello_message,
    parse_bid_line,
)
from repro.gateway.server import GatewayConfig, GatewayServer, run_gateway
from repro.gateway.wallclock import WallClock

__all__ = [
    "PROTOCOL_VERSION",
    "DECISIONS",
    "encode_message",
    "decode_message",
    "bid_to_line",
    "parse_bid_line",
    "hello_message",
    "decision_message",
    "error_message",
    "bye_message",
    "GatewayCounters",
    "PendingBid",
    "ResponseChannel",
    "LiveCycleEngine",
    "WallClock",
    "GatewayConfig",
    "GatewayServer",
    "run_gateway",
]
