"""Backpressure machinery: exact shed accounting and bounded outboxes.

Two invariants keep an overloaded gateway honest:

* **the accounting identity** — every submitted bid line ends in exactly
  one of four ledgers: ``accepted + rejected + shed + errored ==
  submitted``.  :class:`GatewayCounters` owns the ledgers and
  :meth:`GatewayCounters.assert_reconciled` enforces the identity at
  every window and cycle boundary (where nothing may be pending), so an
  accounting leak is an immediate :class:`~repro.exceptions.GatewayError`
  rather than a silently wrong profit report;
* **no unbounded buffers** — admission waits in the broker's own bounded
  :class:`~repro.service.ingest.AdmissionQueue` (overflow ⇒ shed, with
  an immediate response), and responses wait in a per-connection
  :class:`ResponseChannel` whose overflow marks the *reader* as too slow:
  the connection is dropped and the undelivered responses counted, never
  allowed to stall the decision loop or grow without bound.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import GatewayError
from repro.gateway.protocol import encode_message
from repro.workload.request import Request

__all__ = ["GatewayCounters", "PendingBid", "ResponseChannel"]


@dataclass
class GatewayCounters:
    """The gateway's global admission ledgers (one instance per server).

    ``submitted`` counts every non-empty line received; the other four
    partition it.  ``responses_dropped`` tracks decisions that could not
    be delivered to slow readers — informational only, since the
    decision itself is already booked.
    """

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    errored: int = 0
    responses_dropped: int = 0

    @property
    def decided(self) -> int:
        """Bids that reached a solver (or cache): accepted or rejected."""
        return self.accepted + self.rejected

    @property
    def accounted(self) -> int:
        return self.accepted + self.rejected + self.shed + self.errored

    def reconciles(self, *, pending: int = 0) -> bool:
        """Does the identity hold given ``pending`` undecided bids?"""
        return self.accounted + pending == self.submitted

    def assert_reconciled(self, *, pending: int = 0, where: str = "") -> None:
        """Raise :class:`GatewayError` if the accounting identity is broken."""
        if not self.reconciles(pending=pending):
            suffix = f" at {where}" if where else ""
            raise GatewayError(
                f"shed accounting violated{suffix}: accepted={self.accepted} "
                f"+ rejected={self.rejected} + shed={self.shed} "
                f"+ errored={self.errored} + pending={pending} "
                f"!= submitted={self.submitted}"
            )

    def to_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "errored": self.errored,
            "responses_dropped": self.responses_dropped,
        }

    def __repr__(self) -> str:
        return (
            f"GatewayCounters(submitted={self.submitted}, "
            f"accepted={self.accepted}, rejected={self.rejected}, "
            f"shed={self.shed}, errored={self.errored})"
        )


@dataclass
class PendingBid:
    """One admitted bid waiting for its window to close.

    ``submitted_at`` is the monotonic receive time — the start of the
    admission-latency measurement; ``channel`` routes the decision back
    to the submitting connection.
    """

    request: Request
    channel: "ResponseChannel"
    submitted_at: float
    lineno: int = 0

    # dataclass with a deque-holding channel: compare by identity only
    __eq__ = object.__eq__
    __hash__ = object.__hash__


@dataclass
class ResponseChannel:
    """A bounded per-connection outbox pumped by one writer task.

    :meth:`send` is synchronous (callable from the decision loop without
    awaiting); the pump coroutine drains the outbox through the stream
    writer with real ``drain()`` backpressure.  If a slow reader lets the
    outbox hit ``capacity``, the channel dies: further sends are counted
    in ``dropped`` and the pump closes the transport — slowness is the
    reader's problem, never the decision loop's.
    """

    capacity: int = 1024
    _outbox: deque = field(default_factory=deque)
    _wakeup: asyncio.Event = field(default_factory=asyncio.Event)
    _eof: bool = False
    dead: bool = False
    dropped: int = 0
    sent: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")

    def send(self, message: dict[str, Any]) -> bool:
        """Queue one response; ``False`` means it will never be delivered."""
        if self.dead or self._eof:
            self.dropped += 1
            return False
        if len(self._outbox) >= self.capacity:
            # The reader is not keeping up: kill the channel rather than
            # buffer without bound or block the decision loop.
            self.dead = True
            self.dropped += 1
            self._wakeup.set()
            return False
        self._outbox.append(message)
        self._wakeup.set()
        return True

    def close_when_done(self) -> None:
        """No more sends; the pump exits once the outbox drains."""
        self._eof = True
        self._wakeup.set()

    def __len__(self) -> int:
        return len(self._outbox)

    async def pump(self, writer: asyncio.StreamWriter) -> None:
        """Drain the outbox through ``writer`` until EOF or death."""
        try:
            while True:
                while self._outbox and not self.dead:
                    message = self._outbox.popleft()
                    writer.write(encode_message(message))
                    self.sent += 1
                    await writer.drain()
                if self.dead or (self._eof and not self._outbox):
                    break
                self._wakeup.clear()
                await self._wakeup.wait()
        except (ConnectionError, asyncio.CancelledError):
            self.dead = True
            self.dropped += len(self._outbox)
            self._outbox.clear()
            raise
        except OSError:
            self.dead = True
            self.dropped += len(self._outbox)
            self._outbox.clear()
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
