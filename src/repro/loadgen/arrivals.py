"""Arrival processes: when each bid leaves the load generator.

The generator is *open loop*: send times are laid out in advance by an
arrival process and never react to responses — exactly the discipline
that exposes admission-latency tails instead of hiding them behind
coordinated omission.  Each process is deterministic in its seed, so a
load run is replayable bid-for-bid.

All processes yield **inter-arrival gaps in seconds**; the client turns
the cumulative sum into absolute send deadlines.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.util.rng import ensure_rng

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "make_arrivals",
]


class ArrivalProcess(ABC):
    """A stream of inter-arrival gaps at a target mean rate (bids/sec)."""

    rate: float

    @abstractmethod
    def gaps(self) -> Iterator[float]:
        """An unbounded iterator of inter-arrival gaps (seconds, >= 0)."""

    def _check_rate(self, rate: float) -> float:
        if not (rate > 0):
            raise ValueError(f"rate must be > 0 bids/sec, got {rate!r}")
        return float(rate)


class ConstantArrivals(ArrivalProcess):
    """A perfectly paced stream: one bid every ``1/rate`` seconds."""

    def __init__(self, rate: float) -> None:
        self.rate = self._check_rate(rate)

    def gaps(self) -> Iterator[float]:
        gap = 1.0 / self.rate
        while True:
            yield gap

    def __repr__(self) -> str:
        return f"ConstantArrivals(rate={self.rate})"


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``.

    The classic open-loop model — short-range bursts arise naturally, so
    queues see realistic contention even at moderate mean rates.
    """

    def __init__(self, rate: float, *, seed: int = 0) -> None:
        self.rate = self._check_rate(rate)
        self.seed = seed

    def gaps(self) -> Iterator[float]:
        rng = ensure_rng(self.seed)
        scale = 1.0 / self.rate
        while True:
            # Draw in blocks: one numpy call per 4096 gaps, not per bid.
            for gap in rng.exponential(scale, size=4096):
                yield float(gap)

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self.rate}, seed={self.seed})"


class BurstArrivals(ArrivalProcess):
    """On/off square-wave traffic: bursts at ``rate / duty``, then silence.

    During the on-phase (fraction ``duty`` of each ``period``) bids are
    paced uniformly at ``rate / duty`` so the *mean* over a full period
    is still ``rate`` — the overload pattern that exercises shedding and
    backpressure hardest.
    """

    def __init__(self, rate: float, *, period: float = 1.0, duty: float = 0.2) -> None:
        self.rate = self._check_rate(rate)
        if not (period > 0):
            raise ValueError(f"period must be > 0 seconds, got {period!r}")
        if not (0 < duty <= 1):
            raise ValueError(f"duty must be in (0, 1], got {duty!r}")
        self.period = float(period)
        self.duty = float(duty)

    def gaps(self) -> Iterator[float]:
        burst_len = self.period * self.duty
        burst_rate = self.rate / self.duty
        per_burst = max(1, round(burst_rate * burst_len))
        gap = burst_len / per_burst
        silence = self.period - burst_len
        while True:
            for index in range(per_burst):
                # The first gap of a period carries the off-phase pause.
                yield gap + (silence if index == 0 else 0.0)

    def __repr__(self) -> str:
        return (
            f"BurstArrivals(rate={self.rate}, period={self.period}, "
            f"duty={self.duty})"
        )


def make_arrivals(
    process: str, rate: float, *, seed: int = 0, period: float = 1.0, duty: float = 0.2
) -> ArrivalProcess:
    """Build an arrival process by name (the CLI's ``--process`` values)."""
    if process == "constant":
        return ConstantArrivals(rate)
    if process == "poisson":
        return PoissonArrivals(rate, seed=seed)
    if process == "burst":
        return BurstArrivals(rate, period=period, duty=duty)
    raise ValueError(
        f"process must be one of ('constant', 'poisson', 'burst'), got {process!r}"
    )
