"""The load run's result: client-side counts, rates and latency tails."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.exceptions import GatewayError
from repro.service.telemetry import LatencyHistogram

__all__ = ["LoadReport"]


@dataclass
class LoadReport:
    """What one :class:`~repro.loadgen.LoadGenerator` run observed.

    All counts are **client-side** — decisions and errors actually read
    off the wire — so the accounting identity here is end-to-end: every
    submitted bid line must come back as exactly one of
    accept/reject/shed/error.  ``lost`` counts submissions whose response
    never arrived (a killed connection); the identity then reads
    ``accepted + rejected + shed + errored + lost == submitted``.

    ``latency`` is measured at the client from send to response receipt
    (log-bucketed, the same histogram the gateway keeps server-side), so
    the reported p50/p99/p999 include wire and queueing time — the
    number a customer would see.
    """

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    shed: int = 0
    errored: int = 0
    lost: int = 0
    connections: int = 0
    duration_seconds: float = 0.0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def responded(self) -> int:
        return self.accepted + self.rejected + self.shed + self.errored

    @property
    def decisions_per_sec(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.responded / self.duration_seconds

    def reconciles(self) -> bool:
        return self.responded + self.lost == self.submitted

    def assert_reconciled(self) -> None:
        """Raise :class:`GatewayError` unless every bid is accounted for."""
        if not self.reconciles():
            raise GatewayError(
                "load accounting violated: "
                f"accepted={self.accepted} + rejected={self.rejected} + "
                f"shed={self.shed} + errored={self.errored} + "
                f"lost={self.lost} != submitted={self.submitted}"
            )

    def merge(self, other: "LoadReport") -> None:
        """Fold another connection's counts into this report."""
        self.submitted += other.submitted
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.shed += other.shed
        self.errored += other.errored
        self.lost += other.lost
        self.latency.merge(other.latency)

    def to_dict(self) -> dict[str, Any]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "shed": self.shed,
            "errored": self.errored,
            "lost": self.lost,
            "connections": self.connections,
            "duration_seconds": self.duration_seconds,
            "decisions_per_sec": self.decisions_per_sec,
            "latency": self.latency.summary(),
        }

    def __repr__(self) -> str:
        return (
            f"LoadReport(submitted={self.submitted}, accepted={self.accepted}, "
            f"rejected={self.rejected}, shed={self.shed}, "
            f"errored={self.errored}, lost={self.lost}, "
            f"decisions_per_sec={self.decisions_per_sec:.1f})"
        )
