"""repro.loadgen — the open-loop load harness for the live gateway.

``repro loadgen`` (CLI) or :class:`LoadGenerator` (API) replays or
synthesizes bid streams — up to millions of bids — against a ``repro
serve`` gateway at a controlled arrival rate
(:class:`ConstantArrivals` / :class:`PoissonArrivals` /
:class:`BurstArrivals`), then reports decisions/sec and p50/p99/p999
admission latency plus the end-to-end accounting identity: every
submitted bid came back as exactly one accept/reject/shed/error.
"""

from repro.loadgen.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    ConstantArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.loadgen.client import LoadGenerator, probe_gateway, synthesize_bids
from repro.loadgen.report import LoadReport

__all__ = [
    "ArrivalProcess",
    "ConstantArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "make_arrivals",
    "LoadGenerator",
    "probe_gateway",
    "synthesize_bids",
    "LoadReport",
]
