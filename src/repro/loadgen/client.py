"""The open-loop load generator: millions of bids at a controlled rate.

:class:`LoadGenerator` replays any bid iterable — a recorded trace, or
the unbounded synthetic stream of :func:`synthesize_bids` — against a
running gateway.  Send times come from an
:class:`~repro.loadgen.arrivals.ArrivalProcess` laid out *before* the
run: a slow server delays responses, never submissions, so measured
latencies include every queueing effect (no coordinated omission).
Multiple connections share one global schedule, keeping the aggregate
arrival rate at the configured value regardless of fan-out.

Latency is measured client-side, send to response receipt, into the same
log-bucketed :class:`~repro.service.telemetry.LatencyHistogram` the
gateway uses — O(1) per bid, mergeable across connections, exact enough
for p999 at millions of samples.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Iterable, Iterator
from dataclasses import replace

from repro.exceptions import GatewayError
from repro.gateway.protocol import bid_to_line, decode_message
from repro.loadgen.arrivals import ArrivalProcess
from repro.loadgen.report import LoadReport
from repro.net.topology import Topology
from repro.util.rng import ensure_rng
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.request import Request

__all__ = ["LoadGenerator", "probe_gateway", "synthesize_bids"]

#: Seed stride between synthesis chunks (mirrors GeneratorSource's mixing).
_CHUNK_SEED_STRIDE = 99_991

#: Await the transport's drain() every this many writes: often enough for
#: flow control, rare enough not to throttle the sender.
_DRAIN_EVERY = 64


def synthesize_bids(
    topology: Topology,
    *,
    num_bids: int,
    num_slots: int = 12,
    seed: int = 0,
    rate_range: tuple[float, float] | None = None,
    max_duration: int | None = None,
    chunk: int = 512,
) -> Iterator[Request]:
    """Stream ``num_bids`` synthetic bids with globally unique ids.

    Generation is chunked (constant memory, one workload draw per
    ``chunk`` bids) and deterministic in ``seed``, so a million-bid load
    run is replayable exactly.  Request ids are sequential from 0 —
    unique across the whole stream, as the gateway's per-cycle duplicate
    check requires.
    """
    if num_bids < 0:
        raise ValueError(f"num_bids must be >= 0, got {num_bids}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    produced = 0
    index = 0
    while produced < num_bids:
        size = min(chunk, num_bids - produced)
        kwargs: dict = {"num_requests": size, "num_slots": num_slots}
        if rate_range is not None:
            kwargs["rate_range"] = rate_range
        if max_duration is not None:
            kwargs["max_duration"] = max_duration
        rng = ensure_rng(seed * _CHUNK_SEED_STRIDE + index)
        workload = generate_workload(topology, WorkloadConfig(**kwargs), rng=rng)
        for request in workload:
            yield replace(request, request_id=produced)
            produced += 1
        index += 1


async def probe_gateway(host: str, port: int) -> dict:
    """Fetch a gateway's hello banner (its serving configuration)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        hello = decode_message(await reader.readline())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if hello.get("type") != "hello":
        raise GatewayError(f"expected a hello banner, got {hello!r}")
    return hello


class LoadGenerator:
    """Drives one gateway with an open-loop bid stream.

    ``connections`` senders share a single arrival schedule; each bid is
    written at its precomputed deadline (immediately when behind — the
    open-loop catch-up burst, never a silent skip).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        arrivals: ArrivalProcess,
        connections: int = 1,
    ) -> None:
        if connections < 1:
            raise ValueError(f"connections must be >= 1, got {connections}")
        self.host = host
        self.port = port
        self.arrivals = arrivals
        self.connections = connections

    async def run(self, bids: Iterable[Request]) -> LoadReport:
        """Replay ``bids`` and return the merged client-side report."""
        schedule = self._schedule(bids)
        report = LoadReport(connections=self.connections)
        started = time.monotonic()
        results = await asyncio.gather(
            *(self._drive_connection(schedule) for _ in range(self.connections))
        )
        report.duration_seconds = time.monotonic() - started
        for partial in results:
            report.merge(partial)
        return report

    def _schedule(self, bids: Iterable[Request]) -> Iterator[tuple[Request, float]]:
        """Pair each bid with its absolute monotonic send deadline."""
        t0 = time.monotonic()
        at = t0
        for bid, gap in zip(bids, self.arrivals.gaps()):
            at += gap
            yield bid, at

    async def _drive_connection(
        self, schedule: Iterator[tuple[Request, float]]
    ) -> LoadReport:
        report = LoadReport()
        reader, writer = await asyncio.open_connection(self.host, self.port)
        hello = decode_message(await reader.readline())
        if hello.get("type") != "hello":
            writer.close()
            raise GatewayError(f"expected a hello banner, got {hello!r}")
        sent: dict[int, float] = {}
        consumer = asyncio.create_task(self._consume(reader, report, sent))
        try:
            pending_drain = 0
            # The schedule iterator is shared across connections; next()
            # runs between awaits on one event loop, so no lock is needed.
            for bid, deadline in schedule:
                delay = deadline - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
                sent[bid.request_id] = time.monotonic()
                writer.write(bid_to_line(bid))
                report.submitted += 1
                pending_drain += 1
                if pending_drain >= _DRAIN_EVERY:
                    pending_drain = 0
                    await writer.drain()
            await writer.drain()
            if writer.can_write_eof():
                writer.write_eof()
            await consumer
        except (ConnectionError, OSError):
            consumer.cancel()
            await asyncio.gather(consumer, return_exceptions=True)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        # Submissions whose response never came back (killed connection).
        # Each error response consumed one submitted line whose id we
        # cannot know, so those entries in ``sent`` are accounted already.
        report.lost += max(0, len(sent) - report.errored)
        return report

    async def _consume(
        self,
        reader: asyncio.StreamReader,
        report: LoadReport,
        sent: dict[int, float],
    ) -> None:
        """Read responses until bye/EOF, booking verdicts and latencies."""
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, OSError):
                return
            if not line:
                return
            message = decode_message(line)
            kind = message.get("type")
            if kind == "decision":
                sent_at = sent.pop(message["request_id"], None)
                if sent_at is not None:
                    report.latency.record(time.monotonic() - sent_at)
                verdict = message["decision"]
                if verdict == "accept":
                    report.accepted += 1
                elif verdict == "reject":
                    report.rejected += 1
                else:
                    report.shed += 1
            elif kind == "error":
                report.errored += 1
            elif kind == "bye":
                return
            # hello/unknown: ignore — forward compatibility.
