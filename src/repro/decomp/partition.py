"""Request partitioning: which shard owns which bid.

Both partitioners key on the request's *source* datacenter, so every
request of a (source, dest) pair lands in the same shard and the shard's
candidate-path cache stays as effective as the monolithic broker's.

* ``"hash"`` — a stable BLAKE2b hash of the source node id modulo the
  shard count.  Topology-agnostic, balanced in expectation, and
  independent of Python's per-process ``hash()`` randomization, so the
  same bid stream shards identically across processes and runs — the
  property the sharded WAL recovery relies on.
* ``"region"`` — group sources by :meth:`Topology.region` and deal the
  regions round-robin (in sorted region order) across shards, keeping
  intra-region traffic together; sources without a region fall back to
  the hash rule.  The region-to-shard map is derived from the *topology*
  (every datacenter's region), not from whichever sources appear in a
  given batch, so the live gateway's window-sized batches and the classic
  broker's whole-cycle partition agree shard for shard.

A partition always has exactly ``num_shards`` entries; shards that drew
no requests are empty lists (an empty
:meth:`~repro.core.instance.SPMInstance.restrict` view is valid and
solves trivially).
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable

from repro.net.topology import Topology
from repro.workload.request import Request

__all__ = [
    "PARTITION_MODES",
    "partition_requests",
    "shard_of_source",
    "source_shard_map",
]

PARTITION_MODES = ("hash", "region")


def shard_of_source(source, num_shards: int) -> int:
    """The stable shard index of a source datacenter."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    digest = hashlib.blake2b(repr(source).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big") % num_shards


def _region_shards(
    topology: Topology, sources: Iterable, num_shards: int
) -> dict:
    """Source -> shard under the region rule (hash fallback per source).

    The region list comes from the whole topology so the map does not
    depend on which sources happen to appear in this batch.
    """
    regions = sorted(
        {
            region
            for region in (
                topology.region(node) for node in topology.datacenters
            )
            if region is not None
        }
    )
    region_shard = {
        region: index % num_shards for index, region in enumerate(regions)
    }
    assignment = {}
    for source in sources:
        region = topology.region(source)
        if region is None:
            assignment[source] = shard_of_source(source, num_shards)
        else:
            assignment[source] = region_shard[region]
    return assignment


def partition_requests(
    topology: Topology,
    requests: Iterable[Request],
    num_shards: int,
    mode: str = "hash",
) -> list[list[int]]:
    """Split request ids into ``num_shards`` lists (request order kept).

    ``mode`` is one of :data:`PARTITION_MODES`.  Every request id appears
    in exactly one shard; shards may be empty.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if mode not in PARTITION_MODES:
        raise ValueError(
            f"mode must be one of {PARTITION_MODES}, got {mode!r}"
        )
    requests = list(requests)
    by_source = source_shard_map(
        topology, {req.source for req in requests}, num_shards, mode
    )
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    for req in requests:
        shards[by_source[req.source]].append(req.request_id)
    return shards


def source_shard_map(
    topology: Topology,
    sources: Iterable,
    num_shards: int,
    mode: str = "hash",
) -> dict:
    """Source datacenter -> shard index under ``mode``.

    Stable across batches: the region rule keys on the topology's full
    region list, the hash rule on the source id alone, so any subset of
    sources maps consistently with any other.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if mode not in PARTITION_MODES:
        raise ValueError(
            f"mode must be one of {PARTITION_MODES}, got {mode!r}"
        )
    sources = set(sources)
    if mode == "region":
        return _region_shards(topology, sources, num_shards)
    return {
        source: shard_of_source(source, num_shards) for source in sources
    }
