"""repro.decomp — price-coordinated decomposition of large SPM instances.

One monolithic MILP over every request of a billing cycle is the scale
ceiling of the exact path: solve time grows superlinearly in the batch
size.  This package splits an :class:`~repro.core.instance.SPMInstance`
into per-shard subproblems (requests partitioned by source-DC hash or by
region, each shard a zero-copy
:meth:`~repro.core.instance.SPMInstance.restrict` view) and coordinates
them only through per-link prices, in the dual-decomposition tradition of
large-scale bandwidth allocation:

* each shard solves its own compiled full-SPM MILP (the existing
  :mod:`repro.core.fastform` / :mod:`repro.lp.fastbuild` path) against
  the *effective* link prices ``u_e + lambda_e``;
* a :class:`BandwidthLedger` aggregates per-(edge, slot) demand across
  shards and updates the dual prices ``lambda_e`` by projected
  subgradient on the capacity violation, under a configurable step
  schedule (constant / harmonic / geometric);
* a final reconciliation pass evicts lowest-value-density acceptances
  from any still-oversubscribed (edge, slot), so the returned
  :class:`~repro.core.schedule.Schedule` is always feasible;
* the exact single-shard :func:`~repro.core.online.solve_batch` is kept
  as the equivalence oracle (:func:`solve_exact` / :func:`oracle_gap`)
  with a provable additive profit-gap bound on uncapped instances.

:mod:`repro.shard` puts this behind the service layer.
"""

from repro.decomp.ledger import (
    BandwidthLedger,
    ConstantStep,
    GeometricStep,
    HarmonicStep,
    StepSchedule,
    make_step_schedule,
)
from repro.decomp.partition import (
    PARTITION_MODES,
    partition_requests,
    shard_of_source,
    source_shard_map,
)
from repro.decomp.solver import (
    DecompConfig,
    DecompOutcome,
    ShardOutcome,
    oracle_gap,
    profit_gap_bound,
    solve_decomposed,
    solve_exact,
)

__all__ = [
    "PARTITION_MODES",
    "partition_requests",
    "shard_of_source",
    "source_shard_map",
    "StepSchedule",
    "ConstantStep",
    "HarmonicStep",
    "GeometricStep",
    "make_step_schedule",
    "BandwidthLedger",
    "DecompConfig",
    "DecompOutcome",
    "ShardOutcome",
    "solve_decomposed",
    "solve_exact",
    "oracle_gap",
    "profit_gap_bound",
]
