"""Price-coordinated decomposition of one SPM instance across shards.

:func:`solve_decomposed` is the batch entry point.  The requests are
partitioned by source DC (:mod:`repro.decomp.partition`), each shard
becomes a zero-copy :meth:`~repro.core.instance.SPMInstance.restrict`
view, and each shard's full-SPM MILP is compiled **once** through the
shared :class:`~repro.core.fastform.FormulationCompiler`.  The price
iteration then never reassembles a matrix: per round each shard's model
is re-solved under the ledger's effective link prices
``u_e + lambda_e`` via :func:`repro.lp.fastbuild.with_objective` (only
the objective tail changes — the x-block values are untouched), the
resulting per-(edge, slot) demand is posted to the
:class:`~repro.decomp.ledger.BandwidthLedger`, and the duals take one
projected-subgradient step on the capacity violation.

The duals steer *decisions* only.  All accounting — shard revenue, the
final schedule's integer-unit charging, the oracle comparison — uses the
true prices ``u_e``.

Because the duals relax (not enforce) the cross-shard capacity coupling,
the round decisions may still oversubscribe a link.  The reconciliation
pass makes the outcome unconditionally feasible: while any capped
(edge, slot) cell is oversubscribed, the accepted request with the
lowest ``(value, request_id)`` among those crossing that cell is
evicted.  Deterministic, value-ordered, and bounded by the acceptance
count, so :attr:`DecompOutcome.schedule` always passes
:meth:`~repro.core.schedule.Schedule.check_capacities`.

:func:`solve_exact` keeps the single-shard MILP as the equivalence
oracle, and :func:`profit_gap_bound` gives the additive bound the tests
assert: on an *uncapped* instance whose per-edge loads peak in a common
slot (e.g. every request spans the whole billing cycle — the default
full-cycle workload shape), splitting any assignment across ``S`` shards
costs at most ``S - 1`` extra integer units per edge (sum-of-ceilings
versus ceiling-of-sum), so::

    exact_profit - decomposed_profit  <=  (S - 1) * sum_e u_e

With edge-disjoint shards (e.g. region partition on a topology whose
regions share no links) the subproblems are independent and the
decomposed assignment matches the oracle bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.decomp.ledger import BandwidthLedger, make_step_schedule
from repro.decomp.partition import PARTITION_MODES, partition_requests
from repro.exceptions import SolverError
from repro.lp.fastbuild import with_objective
from repro.lp.solvers import solve_compiled_raw
from repro.resilience.budget import CycleBudget
from repro.resilience.ladder import greedy_admission

__all__ = [
    "DecompConfig",
    "ShardOutcome",
    "DecompOutcome",
    "solve_decomposed",
    "solve_exact",
    "oracle_gap",
    "profit_gap_bound",
]

#: Load/capacity comparisons tolerate the same float noise the schedule
#: layer absorbs before its ceiling (:data:`repro.core.schedule._CEIL_TOL`).
_TOL = 1e-9


@dataclass(frozen=True)
class DecompConfig:
    """Knobs of one decomposed solve."""

    #: Shard count; 1 degenerates to the exact single-shard solve.
    num_shards: int = 2
    #: Partition rule, one of :data:`~repro.decomp.partition.PARTITION_MODES`.
    mode: str = "hash"
    #: Price-iteration rounds (each round re-solves every shard).
    max_rounds: int = 8
    #: Stop as soon as the worst per-edge violation is at most this.
    tolerance: float = 1e-9
    #: Step schedule name: ``constant`` / ``harmonic`` / ``geometric``.
    step: str = "harmonic"
    #: Initial step size; ``None`` scales to the instance's mean link price.
    step0: float | None = None
    #: Decay factor (geometric schedule only).
    decay: float = 0.5
    #: Per-shard solve time limit in seconds (``None`` = unbounded).
    time_limit: float | None = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.mode not in PARTITION_MODES:
            raise ValueError(
                f"mode must be one of {PARTITION_MODES}, got {self.mode!r}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's final subproblem decision (true-price accounting)."""

    shard_id: int
    request_ids: tuple
    assignment: dict
    accepted: int
    revenue: float
    #: Shard-local profit: revenue minus the shard's own integer-unit cost.
    profit: float


@dataclass(frozen=True)
class DecompOutcome:
    """The feasible joint schedule plus per-shard and ledger diagnostics."""

    schedule: Schedule
    shards: list = field(default_factory=list)
    ledger: BandwidthLedger | None = None
    #: Price-iteration rounds actually run (each re-solves every shard).
    rounds: int = 0
    #: Worst per-edge violation after the last round, before reconciliation.
    max_violation: float = 0.0
    #: Request ids revoked by the reconciliation pass, in eviction order.
    evicted: tuple = ()

    @property
    def profit(self) -> float:
        return self.schedule.profit


def _ledger_for(instance: SPMInstance, config: DecompConfig) -> BandwidthLedger:
    if config.step0 is not None:
        step0 = config.step0
    else:
        step0 = max(
            float(instance.prices.mean()) if instance.prices.size else 1.0,
            1e-12,
        )
    schedule = make_step_schedule(config.step, step0, decay=config.decay)
    return BandwidthLedger.from_instance(instance, schedule=schedule)


def _choices(formulation, x: np.ndarray) -> dict[int, int | None]:
    """Raw solution vector -> request id -> chosen path index (or None)."""
    assignment: dict[int, int | None] = {}
    offsets = formulation.x_offsets
    for i, rid in enumerate(formulation.request_ids):
        weights = x[offsets[i] : offsets[i + 1]]
        best = int(np.argmax(weights)) if weights.size else 0
        assignment[rid] = best if weights.size and weights[best] > 0.5 else None
    return assignment


class _ShardProblem:
    """One shard's compiled subproblem, re-solvable under shifted prices."""

    def __init__(self, shard_id: int, instance: SPMInstance) -> None:
        self.shard_id = shard_id
        self.instance = instance
        self.formulation = instance.formulation_compiler().compile_spm(instance)
        compiled = self.formulation.compiled
        # The objective in the model's original (maximization) sense; the
        # x-block holds the request values and stays fixed across rounds.
        self._values_head = (compiled.sign * compiled.c)[
            : self.formulation.num_x
        ]
        self.assignment: dict[int, int | None] = {}

    def solve(
        self, effective_prices: np.ndarray, *, time_limit: float | None
    ) -> dict[int, int | None]:
        objective = np.concatenate([self._values_head, -effective_prices])
        raw = solve_compiled_raw(
            with_objective(self.formulation.compiled, objective),
            time_limit=time_limit,
        )
        if raw.x is None:
            raise SolverError(
                f"shard {self.shard_id} solve returned no incumbent "
                f"(status {raw.status.value})"
            )
        self.assignment = _choices(self.formulation, raw.x)
        return self.assignment

    def fallback(self, effective_prices: np.ndarray) -> dict[int, int | None]:
        """Greedy value-density decision under the effective prices.

        The budget-starved rung of the decomposition: no solver, so it
        always fits whatever deadline is left.  May oversubscribe capped
        links like any relaxed round decision — the reconciliation pass
        restores feasibility either way.
        """
        ids = list(self.instance.requests.request_ids)
        priced = self.instance.reprice(effective_prices)
        choices = greedy_admission(
            priced,
            ids,
            np.zeros((priced.num_edges, priced.num_slots)),
            np.zeros(priced.num_edges),
        )
        self.assignment = dict(zip(ids, choices))
        return self.assignment

    def outcome(self) -> ShardOutcome:
        schedule = Schedule(self.instance, self.assignment)
        return ShardOutcome(
            shard_id=self.shard_id,
            request_ids=tuple(self.instance.requests.request_ids),
            assignment=dict(self.assignment),
            accepted=schedule.num_accepted,
            revenue=schedule.revenue,
            profit=schedule.profit,
        )


def _reconcile(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    capacities: np.ndarray,
) -> list[int]:
    """Evict lowest-(value, id) acceptances until no capped cell overflows."""
    loads = instance.loads(assignment)
    evicted: list[int] = []
    while True:
        over = loads - capacities[:, None]
        cells = np.argwhere(over > _TOL)
        if cells.size == 0:
            return evicted
        worst = cells[np.argmax(over[cells[:, 0], cells[:, 1]])]
        edge_idx, slot = int(worst[0]), int(worst[1])
        best: tuple | None = None
        for rid, path_idx in assignment.items():
            if path_idx is None:
                continue
            req = instance.request(rid)
            if not (req.start <= slot <= req.end):
                continue
            if edge_idx in instance.path_edges[rid][path_idx]:
                key = (req.value, rid)
                if best is None or key < best:
                    best = key
        if best is None:  # pragma: no cover - a violated cell has a crosser
            raise SolverError(
                f"oversubscribed cell (edge {edge_idx}, slot {slot}) "
                "has no evictable request"
            )
        rid = best[1]
        req = instance.request(rid)
        edge_rows = instance.path_edges[rid][assignment[rid]]
        loads[edge_rows, req.start : req.end + 1] -= req.rate
        assignment[rid] = None
        evicted.append(rid)


def solve_decomposed(
    instance: SPMInstance,
    config: DecompConfig | None = None,
    *,
    ledger: BandwidthLedger | None = None,
    budget: "CycleBudget | None" = None,
) -> DecompOutcome:
    """Solve ``instance`` by sharded Lagrangian price iteration.

    Pass ``ledger`` to coordinate through caller-owned dual state (the
    sharded broker carries its ledger across cycles); by default a fresh
    ledger is built from the instance under ``config``'s step schedule.
    The returned outcome's schedule is always feasible for the
    topology's link ceilings.

    ``budget`` (a :class:`~repro.resilience.budget.CycleBudget`) makes
    the price iteration deadline-aware: each round's shard solves share
    a shrinking slice of the remaining budget (split across the shards
    still to solve this round, clipped to ``config.time_limit``), and an
    expired budget ends the rounds loop early — the current incumbent
    assignments are reconciled and returned instead of iterating on.
    """
    config = config or DecompConfig()
    if ledger is None:
        ledger = _ledger_for(instance, config)
    shard_ids = partition_requests(
        instance.topology, instance.requests, config.num_shards, config.mode
    )
    problems = [
        _ShardProblem(shard_id, instance.restrict(ids))
        for shard_id, ids in enumerate(shard_ids)
        if ids
    ]

    rounds = 0
    max_violation = 0.0
    deadline_hit = False
    while True:
        effective = ledger.effective_prices()
        ledger.begin_round()
        for position, problem in enumerate(problems):
            if budget is not None and not budget.affords_solver(
                shares=len(problems) - position
            ):
                # Starved mid-round: keep the shard's incumbent from the
                # previous round, or fall back to greedy if it has none.
                deadline_hit = True
                if not problem.assignment:
                    problem.fallback(effective)
                assignment = problem.assignment
            else:
                limit = config.time_limit
                if budget is not None:
                    limit = budget.solve_limit(
                        shares=len(problems) - position, cap=config.time_limit
                    )
                assignment = problem.solve(effective, time_limit=limit)
            ledger.post(problem.shard_id, problem.instance.loads(assignment))
        rounds += 1
        max_violation = (
            float(ledger.violation().max()) if ledger.num_edges else 0.0
        )
        if budget is not None and not budget.affords_solver(
            shares=max(len(problems), 1)
        ):
            deadline_hit = True
        if (
            max_violation <= config.tolerance
            or rounds >= config.max_rounds
            or not ledger.capped
            or deadline_hit
        ):
            break
        ledger.update_prices()

    assignment: dict[int, int | None] = {
        rid: None for rid in instance.requests.request_ids
    }
    for problem in problems:
        assignment.update(problem.assignment)
    evicted = _reconcile(instance, assignment, ledger.capacities)
    ledger.record_evictions(len(evicted))

    schedule = Schedule(instance, assignment)
    schedule.check_capacities(instance.topology.capacities())
    return DecompOutcome(
        schedule=schedule,
        shards=[problem.outcome() for problem in problems],
        ledger=ledger,
        rounds=rounds,
        max_violation=max_violation,
        evicted=tuple(evicted),
    )


def solve_exact(
    instance: SPMInstance, *, time_limit: float | None = None
) -> Schedule:
    """The single-shard oracle: one full-SPM MILP over every request.

    Honors the topology's per-link ceilings through the compiled model's
    ``c``-column upper bounds, so it is the exact benchmark for both the
    capped and the uncapped decomposition.
    """
    formulation = instance.formulation_compiler().compile_spm(instance)
    raw = solve_compiled_raw(formulation.compiled, time_limit=time_limit)
    if raw.x is None:
        raise SolverError(
            f"exact solve returned no incumbent (status {raw.status.value})"
        )
    return Schedule(instance, _choices(formulation, raw.x))


def profit_gap_bound(instance: SPMInstance, num_shards: int) -> float:
    """The additive decomposition penalty: ``(S - 1) * sum_e u_e``.

    Valid on uncapped instances whose per-edge loads peak in a common
    slot (in particular when every request spans the full billing
    cycle): each edge then loses at most ``S - 1`` integer purchase
    units to sum-of-ceilings versus ceiling-of-sum, and each shard's
    subproblem is otherwise solved exactly.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return float((num_shards - 1) * instance.prices.sum())


def oracle_gap(
    instance: SPMInstance, config: DecompConfig | None = None
) -> dict:
    """Decomposed-versus-exact comparison on one instance.

    Returns the two profits, their gap (``exact - decomposed``), the
    additive bound of :func:`profit_gap_bound`, and whether the gap is
    within it.  Intended for small instances where the exact MILP is
    cheap — the equivalence harness of the decomposition tests.
    """
    config = config or DecompConfig()
    outcome = solve_decomposed(instance, config)
    exact = solve_exact(instance, time_limit=config.time_limit)
    gap = exact.profit - outcome.profit
    bound = profit_gap_bound(instance, config.num_shards)
    return {
        "decomposed": outcome.profit,
        "exact": exact.profit,
        "gap": gap,
        "bound": bound,
        "within_bound": bool(gap <= bound + _TOL),
        "rounds": outcome.rounds,
        "evicted": len(outcome.evicted),
    }
