"""Price-coordinated decomposition of one SPM instance across shards.

:func:`solve_decomposed` is the batch entry point.  The requests are
partitioned by source DC (:mod:`repro.decomp.partition`), each shard
becomes a zero-copy :meth:`~repro.core.instance.SPMInstance.restrict`
view, and each shard's full-SPM MILP is compiled **once** through the
shared :class:`~repro.core.fastform.FormulationCompiler`.  The price
iteration then never reassembles a matrix: per round each shard's model
is re-solved under the ledger's effective link prices
``u_e + lambda_e`` via :func:`repro.lp.fastbuild.with_objective` (only
the objective tail changes — the x-block values are untouched), the
resulting per-(edge, slot) demand is posted to the
:class:`~repro.decomp.ledger.BandwidthLedger`, and the duals take one
projected-subgradient step on the capacity violation.

The duals steer *decisions* only.  All accounting — shard revenue, the
final schedule's integer-unit charging, the oracle comparison — uses the
true prices ``u_e``.

Because the duals relax (not enforce) the cross-shard capacity coupling,
the round decisions may still oversubscribe a link.  The reconciliation
pass makes the outcome unconditionally feasible: while any capped
(edge, slot) cell is oversubscribed, the accepted request with the
lowest ``(value, request_id)`` among those crossing that cell is
evicted.  Deterministic, value-ordered, and bounded by the acceptance
count, so :attr:`DecompOutcome.schedule` always passes
:meth:`~repro.core.schedule.Schedule.check_capacities`.

:func:`solve_exact` keeps the single-shard MILP as the equivalence
oracle, and :func:`profit_gap_bound` gives the additive bound the tests
assert: on an *uncapped* instance whose per-edge loads peak in a common
slot (e.g. every request spans the whole billing cycle — the default
full-cycle workload shape), splitting any assignment across ``S`` shards
costs at most ``S - 1`` extra integer units per edge (sum-of-ceilings
versus ceiling-of-sum), so::

    exact_profit - decomposed_profit  <=  (S - 1) * sum_e u_e

With edge-disjoint shards (e.g. region partition on a topology whose
regions share no links) the subproblems are independent and the
decomposed assignment matches the oracle bit-identically.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.decomp.ledger import BandwidthLedger, make_step_schedule
from repro.decomp.partition import PARTITION_MODES, partition_requests
from repro.exceptions import SolverError
from repro.lp.fastbuild import with_objective
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw
from repro.lp.warmstart import ResolveSession, relax
from repro.resilience.budget import CycleBudget
from repro.resilience.ladder import greedy_admission
from repro.service.pool import SolverPool

__all__ = [
    "DecompConfig",
    "ShardOutcome",
    "DecompOutcome",
    "solve_decomposed",
    "solve_exact",
    "oracle_gap",
    "profit_gap_bound",
]

#: Load/capacity comparisons tolerate the same float noise the schedule
#: layer absorbs before its ceiling (:data:`repro.core.schedule._CEIL_TOL`).
_TOL = 1e-9


@dataclass(frozen=True)
class DecompConfig:
    """Knobs of one decomposed solve."""

    #: Shard count; 1 degenerates to the exact single-shard solve.
    num_shards: int = 2
    #: Partition rule, one of :data:`~repro.decomp.partition.PARTITION_MODES`.
    mode: str = "hash"
    #: Price-iteration rounds (each round re-solves every shard).
    max_rounds: int = 8
    #: Stop as soon as the worst per-edge violation is at most this.
    tolerance: float = 1e-9
    #: Step schedule name: ``constant`` / ``harmonic`` / ``geometric``.
    step: str = "harmonic"
    #: Initial step size; ``None`` scales to the instance's mean link price.
    step0: float | None = None
    #: Decay factor (geometric schedule only).
    decay: float = 0.5
    #: Per-shard solve time limit in seconds (``None`` = unbounded).
    time_limit: float | None = None
    #: Worker processes for the per-round shard solves; ``>= 2`` runs the
    #: shards of each price round concurrently through a
    #: :class:`~repro.service.pool.SolverPool` (HiGHS holds the GIL, so
    #: concurrency must be process-based).  Ignored when a ``budget`` is
    #: passed — deadline slicing is inherently sequential.
    workers: int = 1
    #: Reuse each shard's :class:`~repro.lp.warmstart.ResolveSession`
    #: across rounds: converged effective prices repeat the exact
    #: ``(c, bounds)`` key and the cached optimum is returned without a
    #: solver call.  Bitwise-neutral — only certified results are reused.
    warm_start: bool = True
    #: Screen each shard round against its incumbent: when the round's LP
    #: relaxation bound does not beat the previous assignment re-costed
    #: under the new effective prices, keep the incumbent and skip the
    #: MILP.  Objective-optimal (the kept incumbent attains the round's
    #: optimum) but not assignment-identical to a fresh solve when the
    #: round optimum is degenerate.
    screen: bool = False
    #: Adaptive round budget: stop the price iteration after this many
    #: consecutive rounds whose max violation failed to decay below
    #: ``stall_decay`` times the previous round's.  ``0`` disables the
    #: check (always run to ``max_rounds``/tolerance).
    stall_rounds: int = 0
    #: Required per-round violation decay factor for the stall check.
    stall_decay: float = 0.9

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.mode not in PARTITION_MODES:
            raise ValueError(
                f"mode must be one of {PARTITION_MODES}, got {self.mode!r}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.stall_rounds < 0:
            raise ValueError(
                f"stall_rounds must be >= 0, got {self.stall_rounds}"
            )
        if not 0.0 < self.stall_decay <= 1.0:
            raise ValueError(
                f"stall_decay must be in (0, 1], got {self.stall_decay}"
            )


@dataclass(frozen=True)
class ShardOutcome:
    """One shard's final subproblem decision (true-price accounting)."""

    shard_id: int
    request_ids: tuple
    assignment: dict
    accepted: int
    revenue: float
    #: Shard-local profit: revenue minus the shard's own integer-unit cost.
    profit: float


@dataclass(frozen=True)
class DecompOutcome:
    """The feasible joint schedule plus per-shard and ledger diagnostics."""

    schedule: Schedule
    shards: list = field(default_factory=list)
    ledger: BandwidthLedger | None = None
    #: Price-iteration rounds actually run (each re-solves every shard).
    rounds: int = 0
    #: Worst per-edge violation after the last round, before reconciliation.
    max_violation: float = 0.0
    #: Request ids revoked by the reconciliation pass, in eviction order.
    evicted: tuple = ()
    #: Shard-round MILPs skipped by the incumbent screen.
    screened_solves: int = 0
    #: Exact-repeat + certified session hits across all shard sessions.
    warm_hits: int = 0
    #: Worker processes the round solves actually ran on (1 = in-process).
    workers: int = 1

    @property
    def profit(self) -> float:
        return self.schedule.profit


def _ledger_for(instance: SPMInstance, config: DecompConfig) -> BandwidthLedger:
    if config.step0 is not None:
        step0 = config.step0
    else:
        step0 = max(
            float(instance.prices.mean()) if instance.prices.size else 1.0,
            1e-12,
        )
    schedule = make_step_schedule(config.step, step0, decay=config.decay)
    return BandwidthLedger.from_instance(instance, schedule=schedule)


def _choices(formulation, x: np.ndarray) -> dict[int, int | None]:
    """Raw solution vector -> request id -> chosen path index (or None)."""
    assignment: dict[int, int | None] = {}
    offsets = formulation.x_offsets
    for i, rid in enumerate(formulation.request_ids):
        weights = x[offsets[i] : offsets[i + 1]]
        best = int(np.argmax(weights)) if weights.size else 0
        assignment[rid] = best if weights.size and weights[best] > 0.5 else None
    return assignment


class _ShardProblem:
    """One shard's compiled subproblem, re-solvable under shifted prices.

    Holds two :class:`~repro.lp.warmstart.ResolveSession`\\ s — one for the
    round MILPs, one for their LP relaxations — anchored once on the
    shard's compiled arrays (``with_objective``/``relax`` alias every
    array but ``c``, so the anchor survives every round).  ``last_x``
    carries the previous round's raw incumbent for the screening bound.
    """

    def __init__(self, shard_id: int, instance: SPMInstance) -> None:
        self.shard_id = shard_id
        self.instance = instance
        self.formulation = instance.formulation_compiler().compile_spm(instance)
        compiled = self.formulation.compiled
        # The objective in the model's original (maximization) sense; the
        # x-block holds the request values and stays fixed across rounds.
        self._values_head = (compiled.sign * compiled.c)[
            : self.formulation.num_x
        ]
        self.assignment: dict[int, int | None] = {}
        self.session = ResolveSession()
        self.relax_session = ResolveSession()
        self.last_x: np.ndarray | None = None
        self.screened_solves = 0

    @property
    def warm_hits(self) -> int:
        return self.session.stats.warm_hits + self.relax_session.stats.warm_hits

    def adopt(self, assignment: dict, x: np.ndarray | None) -> None:
        """Install a worker-computed round result (pooled path)."""
        self.assignment = assignment
        self.last_x = x

    def solve(
        self,
        effective_prices: np.ndarray,
        *,
        time_limit: float | None,
        warm_start: bool = False,
        screen: bool = False,
        incumbent_x: np.ndarray | None = None,
    ) -> dict[int, int | None]:
        objective = np.concatenate([self._values_head, -effective_prices])
        shifted = with_objective(self.formulation.compiled, objective)
        incumbent = self.last_x if incumbent_x is None else incumbent_x
        if screen and incumbent is not None:
            # The incumbent is still feasible (only the objective moved);
            # when the relaxation bound cannot beat its re-costed value
            # the incumbent attains this round's optimum — keep it.
            relaxed = relax(shifted)
            bound = (
                self.relax_session.solve(relaxed, time_limit=time_limit)
                if warm_start
                else solve_compiled_raw(relaxed, time_limit=time_limit)
            )
            value = float(objective @ incumbent)
            if bound.status is SolveStatus.OPTIMAL and bound.objective <= (
                value + _TOL * max(1.0, abs(value))
            ):
                self.screened_solves += 1
                self.last_x = incumbent
                self.assignment = _choices(self.formulation, incumbent)
                return self.assignment
        raw = (
            self.session.solve(shifted, time_limit=time_limit)
            if warm_start
            else solve_compiled_raw(shifted, time_limit=time_limit)
        )
        if raw.x is None:
            raise SolverError(
                f"shard {self.shard_id} solve returned no incumbent "
                f"(status {raw.status.value})"
            )
        self.last_x = raw.x
        self.assignment = _choices(self.formulation, raw.x)
        return self.assignment

    def fallback(self, effective_prices: np.ndarray) -> dict[int, int | None]:
        """Greedy value-density decision under the effective prices.

        The budget-starved rung of the decomposition: no solver, so it
        always fits whatever deadline is left.  May oversubscribe capped
        links like any relaxed round decision — the reconciliation pass
        restores feasibility either way.
        """
        ids = list(self.instance.requests.request_ids)
        priced = self.instance.reprice(effective_prices)
        choices = greedy_admission(
            priced,
            ids,
            np.zeros((priced.num_edges, priced.num_slots)),
            np.zeros(priced.num_edges),
        )
        self.assignment = dict(zip(ids, choices))
        return self.assignment

    def outcome(self) -> ShardOutcome:
        schedule = Schedule(self.instance, self.assignment)
        return ShardOutcome(
            shard_id=self.shard_id,
            request_ids=tuple(self.instance.requests.request_ids),
            assignment=dict(self.assignment),
            accepted=schedule.num_accepted,
            revenue=schedule.revenue,
            profit=schedule.profit,
        )


# Per-worker-process shard registry for the pooled round path: keyed by
# (token, shard_id) so a long-lived pool serving successive decomposed
# solves never replays a stale shard's sessions.  Entries from older
# tokens are dropped on first miss of a new token.
_WORKER_SHARDS: dict = {}
_TOKENS = itertools.count()


def _solve_shard_task(payload) -> tuple:
    """One shard's round solve inside a pool worker.

    Ships the shard instance every round (cheap at shard scale) so the
    task is idempotent and worker-affinity-free: a registry hit reuses
    the worker's warm ``_ShardProblem`` (sessions and all); a miss —
    fresh worker, restarted executor, or shard rebalanced to a different
    worker — rebuilds it from the payload.  The incumbent travels in the
    payload, so screening keeps working across worker reassignment.
    """
    token, shard_id, instance, effective, time_limit, warm, screen, last_x = (
        payload
    )
    key = (token, shard_id)
    problem = _WORKER_SHARDS.get(key)
    if problem is None:
        for stale in [k for k in _WORKER_SHARDS if k[0] != token]:
            del _WORKER_SHARDS[stale]
        problem = _ShardProblem(shard_id, instance)
        _WORKER_SHARDS[key] = problem
    screened_before = problem.screened_solves
    warm_before = problem.warm_hits
    assignment = problem.solve(
        effective,
        time_limit=time_limit,
        warm_start=warm,
        screen=screen,
        incumbent_x=last_x,
    )
    return (
        assignment,
        problem.last_x,
        problem.screened_solves - screened_before,
        problem.warm_hits - warm_before,
    )


def _reconcile(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    capacities: np.ndarray,
) -> list[int]:
    """Evict lowest-(value, id) acceptances until no capped cell overflows."""
    loads = instance.loads(assignment)
    evicted: list[int] = []
    while True:
        over = loads - capacities[:, None]
        cells = np.argwhere(over > _TOL)
        if cells.size == 0:
            return evicted
        worst = cells[np.argmax(over[cells[:, 0], cells[:, 1]])]
        edge_idx, slot = int(worst[0]), int(worst[1])
        best: tuple | None = None
        for rid, path_idx in assignment.items():
            if path_idx is None:
                continue
            req = instance.request(rid)
            if not (req.start <= slot <= req.end):
                continue
            if edge_idx in instance.path_edges[rid][path_idx]:
                key = (req.value, rid)
                if best is None or key < best:
                    best = key
        if best is None:  # pragma: no cover - a violated cell has a crosser
            raise SolverError(
                f"oversubscribed cell (edge {edge_idx}, slot {slot}) "
                "has no evictable request"
            )
        rid = best[1]
        req = instance.request(rid)
        edge_rows = instance.path_edges[rid][assignment[rid]]
        loads[edge_rows, req.start : req.end + 1] -= req.rate
        assignment[rid] = None
        evicted.append(rid)


def solve_decomposed(
    instance: SPMInstance,
    config: DecompConfig | None = None,
    *,
    ledger: BandwidthLedger | None = None,
    budget: "CycleBudget | None" = None,
    pool: SolverPool | None = None,
) -> DecompOutcome:
    """Solve ``instance`` by sharded Lagrangian price iteration.

    Pass ``ledger`` to coordinate through caller-owned dual state (the
    sharded broker carries its ledger across cycles); by default a fresh
    ledger is built from the instance under ``config``'s step schedule.
    The returned outcome's schedule is always feasible for the
    topology's link ceilings.

    ``budget`` (a :class:`~repro.resilience.budget.CycleBudget`) makes
    the price iteration deadline-aware: each round's shard solves share
    a shrinking slice of the remaining budget (split across the shards
    still to solve this round, clipped to ``config.time_limit``), and an
    expired budget ends the rounds loop early — the current incumbent
    assignments are reconciled and returned instead of iterating on.

    ``config.workers >= 2`` (or an explicit ``pool``) runs each round's
    shard solves concurrently across processes; pass a long-lived
    ``pool`` to amortize worker startup across calls (the sharded broker
    does).  A ``budget`` forces the serial path — its per-shard deadline
    slicing is ordered by construction.
    """
    config = config or DecompConfig()
    if ledger is None:
        ledger = _ledger_for(instance, config)
    shard_ids = partition_requests(
        instance.topology, instance.requests, config.num_shards, config.mode
    )
    problems = [
        _ShardProblem(shard_id, instance.restrict(ids))
        for shard_id, ids in enumerate(shard_ids)
        if ids
    ]

    use_pool = budget is None and len(problems) >= 2 and (
        pool is not None or config.workers >= 2
    )
    owned_pool: SolverPool | None = None
    if use_pool and pool is None:
        owned_pool = pool = SolverPool(
            min(config.workers, len(problems)), cache_size=0
        )
    token = (os.getpid(), next(_TOKENS))

    rounds = 0
    max_violation = 0.0
    prev_violation: float | None = None
    stalled = 0
    deadline_hit = False
    screened_solves = 0
    warm_hits = 0
    try:
        while True:
            effective = ledger.effective_prices()
            ledger.begin_round()
            if use_pool:
                payloads = [
                    (
                        token,
                        problem.shard_id,
                        problem.instance,
                        effective,
                        config.time_limit,
                        config.warm_start,
                        config.screen,
                        problem.last_x,
                    )
                    for problem in problems
                ]
                for problem, result in zip(
                    problems, pool.imap(_solve_shard_task, payloads)
                ):
                    assignment, x, screened, warm = result
                    problem.adopt(assignment, x)
                    screened_solves += screened
                    warm_hits += warm
                    ledger.post(
                        problem.shard_id, problem.instance.loads(assignment)
                    )
            else:
                for position, problem in enumerate(problems):
                    if budget is not None and not budget.affords_solver(
                        shares=len(problems) - position
                    ):
                        # Starved mid-round: keep the shard's incumbent from
                        # the previous round, or greedy if it has none.
                        deadline_hit = True
                        if not problem.assignment:
                            problem.fallback(effective)
                        assignment = problem.assignment
                    else:
                        limit = config.time_limit
                        if budget is not None:
                            limit = budget.solve_limit(
                                shares=len(problems) - position,
                                cap=config.time_limit,
                            )
                        assignment = problem.solve(
                            effective,
                            time_limit=limit,
                            warm_start=config.warm_start,
                            screen=config.screen,
                        )
                    ledger.post(
                        problem.shard_id, problem.instance.loads(assignment)
                    )
            rounds += 1
            max_violation = (
                float(ledger.violation().max()) if ledger.num_edges else 0.0
            )
            if budget is not None and not budget.affords_solver(
                shares=max(len(problems), 1)
            ):
                deadline_hit = True
            if config.stall_rounds:
                if (
                    prev_violation is not None
                    and max_violation > config.stall_decay * prev_violation
                ):
                    stalled += 1
                else:
                    stalled = 0
                prev_violation = max_violation
            if (
                max_violation <= config.tolerance
                or rounds >= config.max_rounds
                or not ledger.capped
                or deadline_hit
                or (config.stall_rounds and stalled >= config.stall_rounds)
            ):
                break
            ledger.update_prices()
    finally:
        if owned_pool is not None:
            owned_pool.shutdown()
    if not use_pool:
        screened_solves = sum(p.screened_solves for p in problems)
        warm_hits = sum(p.warm_hits for p in problems)

    assignment: dict[int, int | None] = {
        rid: None for rid in instance.requests.request_ids
    }
    for problem in problems:
        assignment.update(problem.assignment)
    evicted = _reconcile(instance, assignment, ledger.capacities)
    ledger.record_evictions(len(evicted))

    schedule = Schedule(instance, assignment)
    schedule.check_capacities(instance.topology.capacities())
    return DecompOutcome(
        schedule=schedule,
        shards=[problem.outcome() for problem in problems],
        ledger=ledger,
        rounds=rounds,
        max_violation=max_violation,
        evicted=tuple(evicted),
        screened_solves=screened_solves,
        warm_hits=warm_hits,
        workers=(pool.workers if use_pool else 1),
    )


def solve_exact(
    instance: SPMInstance, *, time_limit: float | None = None
) -> Schedule:
    """The single-shard oracle: one full-SPM MILP over every request.

    Honors the topology's per-link ceilings through the compiled model's
    ``c``-column upper bounds, so it is the exact benchmark for both the
    capped and the uncapped decomposition.
    """
    formulation = instance.formulation_compiler().compile_spm(instance)
    raw = solve_compiled_raw(formulation.compiled, time_limit=time_limit)
    if raw.x is None:
        raise SolverError(
            f"exact solve returned no incumbent (status {raw.status.value})"
        )
    return Schedule(instance, _choices(formulation, raw.x))


def profit_gap_bound(instance: SPMInstance, num_shards: int) -> float:
    """The additive decomposition penalty: ``(S - 1) * sum_e u_e``.

    Valid on uncapped instances whose per-edge loads peak in a common
    slot (in particular when every request spans the full billing
    cycle): each edge then loses at most ``S - 1`` integer purchase
    units to sum-of-ceilings versus ceiling-of-sum, and each shard's
    subproblem is otherwise solved exactly.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    return float((num_shards - 1) * instance.prices.sum())


def oracle_gap(
    instance: SPMInstance, config: DecompConfig | None = None
) -> dict:
    """Decomposed-versus-exact comparison on one instance.

    Returns the two profits, their gap (``exact - decomposed``), the
    additive bound of :func:`profit_gap_bound`, and whether the gap is
    within it.  Intended for small instances where the exact MILP is
    cheap — the equivalence harness of the decomposition tests.
    """
    config = config or DecompConfig()
    outcome = solve_decomposed(instance, config)
    exact = solve_exact(instance, time_limit=config.time_limit)
    gap = exact.profit - outcome.profit
    bound = profit_gap_bound(instance, config.num_shards)
    return {
        "decomposed": outcome.profit,
        "exact": exact.profit,
        "gap": gap,
        "bound": bound,
        "within_bound": bool(gap <= bound + _TOL),
        "rounds": outcome.rounds,
        "evicted": len(outcome.evicted),
    }
