"""The shared bandwidth ledger: demand aggregation and dual link prices.

:class:`BandwidthLedger` is the only coordination point between shards.
Per price-iteration round every shard posts its (edge, slot) demand
matrix; the ledger folds them, measures each capped link's peak
over-subscription, and raises that link's Lagrangian dual price by a
projected subgradient step::

    lambda_e  <-  max(0, lambda_e + step(k) * (peak_e - cap_e))

Uncapped links (capacity ``None``) carry no dual — the decomposition's
only coupling there is the concavity of integer-unit charging, which the
profit-gap bound of :mod:`repro.decomp.solver` accounts for instead.

The step schedule is pluggable (:class:`ConstantStep`,
:class:`HarmonicStep` — the classic diminishing ``a/(k+1)`` that
guarantees subgradient convergence, and :class:`GeometricStep`), and the
whole ledger state round-trips through :meth:`to_record` /
:meth:`apply_record` so the sharded broker can journal it next to the
per-shard WALs and restore the duals bit-identically on recovery.

``post`` is lock-protected: the sharded live engine posts from one event
loop, but the pooled broker's coordinator may later go concurrent and
the counters must stay exact either way.
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from repro.core.instance import SPMInstance

__all__ = [
    "StepSchedule",
    "ConstantStep",
    "HarmonicStep",
    "GeometricStep",
    "make_step_schedule",
    "BandwidthLedger",
]


class StepSchedule:
    """A subgradient step-size rule; ``step(k)`` for round ``k`` (0-based)."""

    name = "abstract"

    def step(self, iteration: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ConstantStep(StepSchedule):
    """A fixed step size; fast but may orbit the optimum."""

    name = "constant"

    def __init__(self, step0: float) -> None:
        if not (step0 > 0):
            raise ValueError(f"step0 must be > 0, got {step0!r}")
        self.step0 = float(step0)

    def step(self, iteration: int) -> float:
        return self.step0

    def __repr__(self) -> str:
        return f"ConstantStep({self.step0!r})"


class HarmonicStep(StepSchedule):
    """``step0 / (k + 1)`` — the diminishing, non-summable classic."""

    name = "harmonic"

    def __init__(self, step0: float) -> None:
        if not (step0 > 0):
            raise ValueError(f"step0 must be > 0, got {step0!r}")
        self.step0 = float(step0)

    def step(self, iteration: int) -> float:
        return self.step0 / (iteration + 1)

    def __repr__(self) -> str:
        return f"HarmonicStep({self.step0!r})"


class GeometricStep(StepSchedule):
    """``step0 * decay**k`` — aggressive early, quickly conservative."""

    name = "geometric"

    def __init__(self, step0: float, decay: float = 0.5) -> None:
        if not (step0 > 0):
            raise ValueError(f"step0 must be > 0, got {step0!r}")
        if not (0 < decay < 1):
            raise ValueError(f"decay must be in (0, 1), got {decay!r}")
        self.step0 = float(step0)
        self.decay = float(decay)

    def step(self, iteration: int) -> float:
        return self.step0 * self.decay**iteration

    def __repr__(self) -> str:
        return f"GeometricStep({self.step0!r}, decay={self.decay!r})"


def make_step_schedule(
    name: str, step0: float, *, decay: float = 0.5
) -> StepSchedule:
    """Build a schedule by name (``constant`` / ``harmonic`` / ``geometric``)."""
    schedules = {
        "constant": lambda: ConstantStep(step0),
        "harmonic": lambda: HarmonicStep(step0),
        "geometric": lambda: GeometricStep(step0, decay=decay),
    }
    try:
        return schedules[name]()
    except KeyError:
        raise ValueError(
            f"unknown step schedule {name!r}; "
            f"choose from {sorted(schedules)}"
        ) from None


class BandwidthLedger:
    """Shared per-link demand aggregation and dual-price state."""

    def __init__(
        self,
        edges: list,
        prices: np.ndarray,
        capacities: np.ndarray,
        num_slots: int,
        *,
        schedule: StepSchedule | None = None,
    ) -> None:
        self.edges = list(edges)
        self.prices = np.asarray(prices, dtype=float)
        #: Per-edge ceilings; ``inf`` where the topology is uncapped.
        self.capacities = np.asarray(capacities, dtype=float)
        self.num_slots = int(num_slots)
        if self.prices.size != len(self.edges):
            raise ValueError("prices must align with edges")
        if self.capacities.size != len(self.edges):
            raise ValueError("capacities must align with edges")
        if schedule is None:
            # Default: harmonic, scaled to the mean link price — one round
            # moves a unit violation by about one price unit.
            mean_price = float(self.prices.mean()) if self.prices.size else 1.0
            schedule = HarmonicStep(max(mean_price, 1e-12))
        self.schedule = schedule
        self.duals = np.zeros(len(self.edges))
        self.demand = np.zeros((len(self.edges), self.num_slots))
        #: Dual-price updates performed (the subgradient iteration count).
        self.price_iterations = 0
        #: Shard demand matrices folded in (across all rounds).
        self.posts = 0
        #: Acceptances revoked by feasibility reconciliation.
        self.evictions = 0
        self._lock = threading.Lock()

    @classmethod
    def from_instance(
        cls, instance: SPMInstance, *, schedule: StepSchedule | None = None
    ) -> "BandwidthLedger":
        """A ledger over an instance's edges, prices and topology ceilings."""
        capacities = np.array(
            [
                float("inf") if ceiling is None else float(ceiling)
                for ceiling in (
                    instance.topology.capacity(*key) for key in instance.edges
                )
            ]
        )
        return cls(
            instance.edges,
            instance.prices,
            capacities,
            instance.num_slots,
            schedule=schedule,
        )

    # ------------------------------------------------------------- rounds

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @property
    def capped(self) -> bool:
        """Does any link carry a finite ceiling (and hence a dual)?"""
        return bool(np.isfinite(self.capacities).any())

    def effective_prices(self) -> np.ndarray:
        """The shard decision prices: true ``u_e`` plus dual ``lambda_e``."""
        return self.prices + self.duals

    def begin_round(self) -> None:
        """Zero the demand aggregation for a fresh posting round."""
        with self._lock:
            self.demand[:] = 0.0

    def post(self, shard_id: int, loads: np.ndarray) -> None:
        """Fold one shard's (edge, slot) demand into the round's total."""
        loads = np.asarray(loads, dtype=float)
        if loads.shape != self.demand.shape:
            raise ValueError(
                f"loads shaped {loads.shape}, expected {self.demand.shape}"
            )
        with self._lock:
            self.demand += loads
            self.posts += 1

    def violation(self) -> np.ndarray:
        """Per-edge peak over-subscription (0 where uncapped or feasible)."""
        peaks = self.demand.max(axis=1)
        over = peaks - self.capacities
        return np.where(np.isfinite(self.capacities), np.maximum(over, 0.0), 0.0)

    def update_prices(self) -> float:
        """One projected-subgradient dual update; returns the max violation.

        The subgradient is the *signed* slack ``peak_e - cap_e`` (zero on
        uncapped edges): oversubscribed links get pricier, slack links
        relax back toward zero, and the projection keeps every dual
        non-negative.
        """
        violation = self.violation()
        worst = float(violation.max()) if violation.size else 0.0
        peaks = self.demand.max(axis=1) if self.demand.size else np.zeros(0)
        subgradient = np.where(
            np.isfinite(self.capacities), peaks - self.capacities, 0.0
        )
        step = self.schedule.step(self.price_iterations)
        with self._lock:
            self.duals = np.maximum(0.0, self.duals + step * subgradient)
            self.price_iterations += 1
        return worst

    def record_evictions(self, count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        with self._lock:
            self.evictions += count

    # ---------------------------------------------------------- journaling

    def counters(self) -> dict[str, Any]:
        """The observability block shard telemetry embeds."""
        return {
            "price_iterations": self.price_iterations,
            "posts": self.posts,
            "evictions": self.evictions,
            "active_duals": int(np.count_nonzero(self.duals)),
            "max_dual": float(self.duals.max()) if self.duals.size else 0.0,
        }

    def to_record(self) -> dict[str, Any]:
        """The journal payload restoring this ledger bit-identically."""
        return {
            "duals": self.duals.tolist(),
            "price_iterations": self.price_iterations,
            "posts": self.posts,
            "evictions": self.evictions,
        }

    def apply_record(self, record: dict[str, Any]) -> None:
        """Restore dual prices and counters from :meth:`to_record` output."""
        duals = np.asarray(record["duals"], dtype=float)
        if duals.size != self.num_edges:
            raise ValueError(
                f"ledger record has {duals.size} duals, "
                f"expected {self.num_edges}"
            )
        with self._lock:
            self.duals = duals
            self.price_iterations = int(record["price_iterations"])
            self.posts = int(record["posts"])
            self.evictions = int(record["evictions"])

    def __repr__(self) -> str:
        return (
            f"BandwidthLedger(edges={self.num_edges}, "
            f"iterations={self.price_iterations}, "
            f"evictions={self.evictions})"
        )
