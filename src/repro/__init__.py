"""repro — a reproduction of *Towards Maximal Service Profit in
Geo-Distributed Clouds* (Yang et al., ICDCS 2019).

The package implements the paper's Metis framework (alternating MAA/TAA
approximation algorithms for service-profit maximization over inter-DC
WANs) together with every substrate it needs: the WAN/topology model, the
synthetic workload model, a declarative LP/MILP layer over scipy-HiGHS, the
comparison baselines (MinCost, Amoeba, EcoFlow, exact OPT), and the
experiment harness regenerating each evaluation figure.

Quickstart::

    from repro import Metis, SPMInstance, b4, WorkloadConfig, generate_workload

    topo = b4()
    requests = generate_workload(topo, WorkloadConfig(num_requests=100), rng=7)
    instance = SPMInstance.build(topo, requests)
    outcome = Metis().solve(instance, rng=7)
    print(outcome.best.profit)

Serving loop (see :mod:`repro.service`)::

    from repro import Broker, BrokerConfig

    report = Broker(BrokerConfig(topology="b4", num_cycles=2, seed=7)).run()
    print(report.profit, report.summary()["decisions_per_sec"])
"""

from repro.core import Metis, SPMInstance
from repro.decomp import BandwidthLedger
from repro.exceptions import SolverTimeoutError
from repro.gateway import GatewayConfig, GatewayServer
from repro.loadgen import LoadGenerator
from repro.net import Topology, b4, sub_b4
from repro.resilience import (
    BreakerOpen,
    CircuitBreaker,
    CycleBudget,
    DegradationLadder,
    greedy_admission,
)
from repro.service import Broker, BrokerConfig
from repro.shard import ShardConfig, ShardedBroker
from repro.workload import Request, RequestSet, WorkloadConfig, generate_workload

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "b4",
    "sub_b4",
    "Request",
    "RequestSet",
    "WorkloadConfig",
    "generate_workload",
    "Metis",
    "SPMInstance",
    "Broker",
    "BrokerConfig",
    "ShardConfig",
    "ShardedBroker",
    "BandwidthLedger",
    "GatewayConfig",
    "GatewayServer",
    "LoadGenerator",
    "CycleBudget",
    "CircuitBreaker",
    "BreakerOpen",
    "DegradationLadder",
    "greedy_admission",
    "SolverTimeoutError",
    "__version__",
]
