"""Small argument-validation helpers used across the library.

These raise standard ``TypeError``/``ValueError`` (not :class:`ReproError`)
because a failed check is a programming error at the call site, not a domain
failure.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_type",
    "check_finite",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
]


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` unless ``value`` is an instance of ``expected``.

    ``bool`` is deliberately rejected where a numeric type is expected, since
    ``isinstance(True, int)`` would otherwise let booleans slip through.
    """
    if isinstance(value, bool) and expected in (int, float, (int, float)):
        raise TypeError(f"{name} must be {_type_name(expected)}, got bool")
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {_type_name(expected)}, got {type(value).__name__}"
        )


def _type_name(expected: type | tuple[type, ...]) -> str:
    if isinstance(expected, tuple):
        return " or ".join(t.__name__ for t in expected)
    return expected.__name__


def check_finite(name: str, value: float) -> None:
    """Raise ``ValueError`` if ``value`` is NaN or infinite."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive and finite."""
    check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_nonnegative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is >= 0 and finite."""
    check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (or strict)."""
    check_finite(name, value)
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
