"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
ready-made :class:`numpy.random.Generator`.  Centralizing the coercion here
keeps experiments reproducible: a single integer seed at the top of an
experiment fans out into independent, stable substreams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, or
    an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses :meth:`numpy.random.Generator.spawn` so the children are stable
    functions of the parent seed — re-running with the same seed reproduces
    every substream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    return list(parent.spawn(n))
