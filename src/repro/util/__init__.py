"""Shared utilities: validation helpers, RNG handling, table rendering."""

from repro.util.rng import ensure_rng, spawn_rngs
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_type,
)
from repro.util.tables import format_table

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_type",
    "format_table",
]
