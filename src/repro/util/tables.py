"""Plain-text table rendering for experiment reports.

The experiment harness prints the same rows the paper's figures plot; this
module renders them as aligned ASCII tables so terminal output and the
``EXPERIMENTS.md`` record share one formatter.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["format_table"]


def _cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    Returns the table as a single string (no trailing newline).
    """
    headers = [str(h) for h in headers]
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        str_rows.append([_cell(v, float_fmt) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
