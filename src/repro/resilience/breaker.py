"""Circuit breakers and restart backoff for the solver layer.

:class:`CircuitBreaker` is the classic three-state machine guarding a
fallible dependency (here: exact MILP solves through a worker pool):

* **closed** — requests flow normally; consecutive failures are counted;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker trips: :meth:`allow` answers ``False`` and callers route work
  to a fallback (the ladder's greedy rung) without touching the solver;
* **half-open** — once ``reset_seconds`` have passed, exactly one probe
  is allowed through; its success closes the breaker, its failure
  re-opens it for another full reset window.

:class:`ExponentialBackoff` paces executor restarts: exponentially
growing delays with *deterministic seeded jitter*, so two runs with the
same seed sleep identically (the crash-equivalence tests depend on
determinism everywhere) while a fleet of brokers with distinct seeds
de-synchronizes its restart stampedes.

Both classes take an injectable clock so tests never sleep.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from repro.exceptions import ReproError

__all__ = ["BreakerOpen", "CircuitBreaker", "ExponentialBackoff"]

#: The breaker's three states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class BreakerOpen(ReproError):
    """An operation was refused because its circuit breaker is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    ``failure_threshold`` consecutive :meth:`record_failure` calls open
    the breaker; after ``reset_seconds`` one :meth:`allow` returns
    ``True`` as the half-open probe.  Counters (``opens``, ``failures``,
    ``probes``, ``short_circuits``) feed telemetry.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_seconds < 0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds!r}")
        self.failure_threshold = failure_threshold
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._state = CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0
        self.failures = 0
        self.probes = 0
        self.short_circuits = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` (clock-aware)."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.reset_seconds
        ):
            return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?

        In the half-open state exactly one caller is granted the probe;
        everyone else is short-circuited until the probe reports back.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and not self._probing:
            self._probing = True
            self.probes += 1
            return True
        self.short_circuits += 1
        return False

    def record_success(self) -> None:
        """The guarded operation succeeded: close (or keep closed)."""
        self._consecutive = 0
        self._probing = False
        self._state = CLOSED

    def record_failure(self) -> None:
        """The guarded operation failed: count, and open on the threshold."""
        self.failures += 1
        if self._probing:
            # The half-open probe failed: straight back to open.
            self._probing = False
            self._consecutive = self.failure_threshold
        else:
            self._consecutive += 1
        if self._consecutive >= self.failure_threshold and self._state != OPEN:
            self._state = OPEN
            self.opens += 1
            self._opened_at = self._clock()
        elif self._state == OPEN:
            # Re-arm the reset window after a failed probe.
            self._opened_at = self._clock()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"consecutive={self._consecutive}/{self.failure_threshold}, "
            f"opens={self.opens})"
        )


class ExponentialBackoff:
    """Exponential delays with deterministic (seeded) jitter.

    The ``n``-th delay is ``base * factor**n``, capped at ``cap``, then
    scaled by ``1 + jitter * u`` where ``u`` is the seeded RNG's next
    uniform draw — deterministic for a fixed seed, de-correlated across
    seeds.  :attr:`total_seconds` accumulates every granted delay (the
    pool reports it to telemetry).
    """

    def __init__(
        self,
        *,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base!r}")
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor!r}")
        if cap < base:
            raise ValueError(f"cap must be >= base, got {cap!r}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter!r}")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self.jitter = float(jitter)
        self._rng = random.Random(seed)
        self._attempt = 0
        self.total_seconds = 0.0

    def next_delay(self) -> float:
        """The next delay (seconds); advances the attempt counter."""
        raw = min(self.base * self.factor**self._attempt, self.cap)
        self._attempt += 1
        delay = raw * (1.0 + self.jitter * self._rng.random())
        self.total_seconds += delay
        return delay

    def reset(self) -> None:
        """Back to the first rung (a success ends the incident)."""
        self._attempt = 0

    def __repr__(self) -> str:
        return (
            f"ExponentialBackoff(attempt={self._attempt}, "
            f"total={self.total_seconds:.3f}s)"
        )
