"""The degradation ladder: every batch gets an answer that fits its budget.

Four rungs, cheapest-feasible wins when the budget (or the breaker) says
the rungs above it no longer fit:

1. **exact** — the incremental batch MILP solved to optimality
   (:func:`repro.core.online.solve_batch`, status ``OPTIMAL``);
2. **incumbent** — the same solve hit its time limit but produced a
   feasible incumbent (status ``FEASIBLE``): valid, just uncertified;
3. **lp_round** — the LP relaxation of the *same compiled model* (zeroed
   integrality, solved in milliseconds), rounded path-by-path with an
   explicit margin check so the rounding can never buy units worth more
   than the request pays;
4. **greedy** — pure-numpy value-density admission: requests in
   descending ``value / (rate * duration)`` order, each taking its
   cheapest-margin path iff the incremental charged-unit cost leaves a
   non-negative margin.  No solver, microseconds, and by construction
   link-feasible and never worse than declining the batch.

Every rung emits decisions in the same shape (`choices` tuple aligned
with the batch), so :func:`repro.core.online.commit_decision` applies
them identically and the WAL/telemetry layers only learn *which* rung
answered via :class:`LadderDecision.rung`.

Profit-safety under dual steering: when the caller hands the ladder a
repriced decision instance (effective prices ``u + lambda``, duals
``>= 0``), a non-negative margin at effective prices implies a
non-negative margin at true prices — so greedy/lp_round acceptances are
profitable under the real tariff too.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.online import _CEIL_TOL, commit_decision, solve_batch
from repro.exceptions import SolverError, SolverTimeoutError
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.budget import CycleBudget

__all__ = [
    "RUNGS",
    "LadderDecision",
    "DegradationLadder",
    "greedy_admission",
    "lp_round_admission",
]

#: Rung names, best first.  ``exact`` and ``incumbent`` share the MILP
#: dispatch (they differ only in solve status); ``lp_round`` and
#: ``greedy`` are the degraded rungs.
RUNGS = ("exact", "incumbent", "lp_round", "greedy")


@dataclass(frozen=True)
class LadderDecision:
    """One batch's decision plus which rung produced it.

    ``cacheable`` is only ``True`` for certified-optimal decisions —
    degraded rungs must not poison the decision cache, because a cache
    hit replays the decision even when the next cycle has budget for an
    exact solve.
    """

    choices: tuple
    rung: str
    timed_out: bool = False
    suboptimal: bool = False
    cacheable: bool = False
    objective: float | None = None
    #: The exact rung answered from the LP relaxation bound alone (a sound
    #: certificate — see ``lp_screen`` in :func:`repro.core.online.solve_batch`);
    #: the decision is still certified-optimal and cacheable.
    screened: bool = False


def _density_order(instance: SPMInstance, batch_ids: list[int]) -> list[int]:
    """Batch ids in descending value-density order (ties: lower id first)."""

    def density(rid: int) -> float:
        req = instance.request(rid)
        weight = float(req.rate) * float(req.end - req.start + 1)
        return float(req.value) / max(weight, 1e-12)

    return sorted(batch_ids, key=lambda rid: (-density(rid), rid))


def _path_margin(
    instance: SPMInstance,
    rid: int,
    path_idx: int,
    work_loads: np.ndarray,
    work_charged: np.ndarray,
) -> float:
    """Value minus incremental charged-unit cost of routing ``rid`` on a path.

    The incremental cost prices exactly the integer units the commit
    would ratchet ``charged`` by: the ceiling of each touched edge's new
    peak, less what is already charged, clipped at zero (riding an
    already-paid unit is free — the same accounting as the MILP's
    ``extra`` variables).
    """
    req = instance.request(rid)
    edge_idx = instance.path_edges[rid][path_idx]
    window = work_loads[edge_idx, req.start : req.end + 1] + req.rate
    new_peak = np.maximum(
        window.max(axis=1), work_loads[edge_idx].max(axis=1)
    )
    units = np.ceil(new_peak - _CEIL_TOL)
    extra = np.maximum(units - work_charged[edge_idx], 0.0)
    return float(req.value) - float(extra @ instance.prices[edge_idx])


def greedy_admission(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
) -> list[int | None]:
    """Value-density greedy admission — the ladder's always-on bottom rung.

    Pure numpy, no solver: requests in descending value-density order
    each take their best-margin candidate path iff that margin (value
    minus incremental charged-unit cost) is non-negative; everyone else
    is declined.  The input state arrays are **not** mutated — the
    returned decision has the same shape as
    :func:`repro.core.online.decide_batch` and is applied with
    :func:`repro.core.online.commit_decision`.

    Guarantees (property-tested): the decision is link-feasible on any
    instance — including :meth:`~repro.core.instance.SPMInstance.restrict`
    shards — and its committed profit is ``>= 0``, i.e. never worse than
    declining the whole batch.
    """
    work_loads = committed_loads.copy()
    work_charged = charged.copy()
    decision: dict[int, int | None] = {rid: None for rid in batch_ids}
    for rid in _density_order(instance, batch_ids):
        best_path: int | None = None
        best_margin = 0.0
        for path_idx in range(instance.num_paths(rid)):
            margin = _path_margin(
                instance, rid, path_idx, work_loads, work_charged
            )
            if margin > best_margin + 1e-12 or (
                best_path is None and margin >= best_margin
            ):
                best_path, best_margin = path_idx, margin
        if best_path is not None:
            decision[rid] = best_path
            commit_decision(
                instance, [rid], [best_path], work_loads, work_charged
            )
    return [decision[rid] for rid in batch_ids]


def lp_round_admission(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
) -> list[int | None] | None:
    """LP-relaxation rounding — the rung between incumbent and greedy.

    Compiles the *same* incremental batch model as the exact rung, zeroes
    the integrality mask, and solves the relaxation (milliseconds even
    where the MILP stalls).  The fractional solution only *guides*: per
    request we take its highest-fraction path as the candidate, walk
    requests in descending fraction order, and admit each candidate only
    if its incremental margin is non-negative — so the rounding inherits
    greedy's feasibility and profit-safety guarantees while keeping the
    LP's global view of contention.

    Returns ``None`` when the relaxation itself fails inside the limit
    (the ladder then falls through to greedy).
    """
    compiled, x_offsets = instance.batch_compiler().compile_batch(
        batch_ids, committed_loads, charged
    )
    relaxed = dataclasses.replace(
        compiled, integrality=np.zeros_like(compiled.integrality)
    )
    try:
        raw = solve_compiled_raw(
            relaxed, time_limit=time_limit, check_cancelled=check_cancelled
        )
    except SolverError:
        return None
    if raw.x is None or raw.status not in (
        SolveStatus.OPTIMAL,
        SolveStatus.FEASIBLE,
    ):
        return None

    frac = raw.x[: int(x_offsets[-1])]
    candidates: list[tuple[float, int, int]] = []
    for pos, rid in enumerate(batch_ids):
        lo, hi = int(x_offsets[pos]), int(x_offsets[pos + 1])
        local = frac[lo:hi]
        best = int(np.argmax(local))
        candidates.append((float(local[best]), rid, best))

    work_loads = committed_loads.copy()
    work_charged = charged.copy()
    decision: dict[int, int | None] = {rid: None for rid in batch_ids}
    for weight, rid, path_idx in sorted(
        candidates, key=lambda c: (-c[0], c[1])
    ):
        if weight <= 1e-6:
            continue
        margin = _path_margin(instance, rid, path_idx, work_loads, work_charged)
        if margin >= 0.0:
            decision[rid] = path_idx
            commit_decision(
                instance, [rid], [path_idx], work_loads, work_charged
            )
    return [decision[rid] for rid in batch_ids]


class DegradationLadder:
    """Route one batch to the best rung the budget and breaker still afford.

    The ladder owns no cycle state — it reads the (optional) shared
    :class:`~repro.resilience.budget.CycleBudget` for shrinking time
    limits and consults the (optional)
    :class:`~repro.resilience.breaker.CircuitBreaker` before paying for a
    MILP dispatch.  ``time_limit`` is the static per-solve cap and keeps
    its meaning under a budget (the granted slice is clipped to it).

    Per-rung decision counts accumulate in :attr:`counts` for telemetry.
    """

    def __init__(
        self,
        *,
        budget: CycleBudget | None = None,
        breaker: CircuitBreaker | None = None,
        time_limit: float | None = None,
        fast_path: bool = True,
        lp_screen: bool = False,
    ) -> None:
        self.budget = budget
        self.breaker = breaker
        self.time_limit = time_limit
        self.fast_path = fast_path
        self.lp_screen = lp_screen
        self.counts: dict[str, int] = dict.fromkeys(RUNGS, 0)
        #: Exact-rung decisions answered by the LP screen alone.
        self.screened = 0

    def _count(self, rung: str) -> None:
        self.counts[rung] = self.counts.get(rung, 0) + 1

    def solve_limit(self, *, shares: int = 1) -> float | None:
        """The time limit the exact rung would get right now."""
        if self.budget is None:
            return self.time_limit
        return self.budget.solve_limit(shares=shares, cap=self.time_limit)

    def decide(
        self,
        instance: SPMInstance,
        batch_ids: list[int],
        committed_loads: np.ndarray,
        charged: np.ndarray,
        *,
        shares: int = 1,
        check_cancelled=None,
        start: str = "exact",
    ) -> LadderDecision:
        """Decide one batch, starting at ``start`` and degrading as needed.

        ``start="exact"`` is the normal entry; callers that already know
        the exact rung failed (a pooled solve timed out, a worker died)
        re-enter at ``start="lp_round"`` to skip straight to degraded
        rungs.  ``shares`` forwards to the budget so sibling solves
        (shards, price rounds) split the slice fairly.
        """
        if start not in RUNGS:
            raise ValueError(f"unknown rung {start!r}, expected one of {RUNGS}")
        rung_at = RUNGS.index(start)
        timed_out = False

        if rung_at <= RUNGS.index("incumbent"):
            if self.breaker is not None and not self.breaker.allow():
                rung_at = RUNGS.index("greedy")
            elif self.budget is not None and not self.budget.affords_solver(
                shares=shares
            ):
                # Not enough budget for any solver dispatch: the answer
                # must come from the microsecond rung.
                rung_at = RUNGS.index("greedy")

        if rung_at <= RUNGS.index("incumbent"):
            try:
                decided = solve_batch(
                    instance,
                    batch_ids,
                    committed_loads,
                    charged,
                    time_limit=self.solve_limit(shares=shares),
                    check_cancelled=check_cancelled,
                    accept_feasible=True,
                    fast_path=self.fast_path,
                    lp_screen=self.lp_screen,
                )
            except SolverTimeoutError:
                if self.breaker is not None:
                    self.breaker.record_failure()
                timed_out = True
                rung_at = RUNGS.index("lp_round")
            else:
                if self.breaker is not None:
                    self.breaker.record_success()
                exact = decided.status is SolveStatus.OPTIMAL
                rung = "exact" if exact else "incumbent"
                self._count(rung)
                if decided.screened:
                    self.screened += 1
                return LadderDecision(
                    choices=decided.choices,
                    rung=rung,
                    suboptimal=decided.suboptimal,
                    cacheable=exact,
                    objective=decided.objective,
                    screened=decided.screened,
                )

        if rung_at <= RUNGS.index("lp_round") and (
            self.budget is None or not self.budget.expired
        ):
            choices = lp_round_admission(
                instance,
                batch_ids,
                committed_loads,
                charged,
                time_limit=self.solve_limit(shares=shares),
                check_cancelled=check_cancelled,
            )
            if choices is not None:
                self._count("lp_round")
                return LadderDecision(
                    choices=tuple(choices),
                    rung="lp_round",
                    timed_out=timed_out,
                    suboptimal=True,
                )

        choices = greedy_admission(instance, batch_ids, committed_loads, charged)
        self._count("greedy")
        return LadderDecision(
            choices=tuple(choices),
            rung="greedy",
            timed_out=timed_out,
            suboptimal=True,
        )
