"""Deadline-guaranteed serving: budgets, degradation rungs, breakers.

The profit objective only holds if the broker actually answers bids
before the billing-cycle boundary — a hung MILP solve, a flapping pool
worker or one sick shard must never stall a whole cycle.  This package
turns "crash-consistent" into "deadline-guaranteed":

* :class:`~repro.resilience.budget.CycleBudget` splits one cycle's
  wall-clock deadline into shrinking per-solve time limits;
* :class:`~repro.resilience.ladder.DegradationLadder` answers every
  batch through the cheapest rung that fits the remaining budget —
  exact MILP → feasible incumbent → LP-relaxation rounding →
  greedy value-density admission (pure numpy, always link-feasible,
  microseconds) — so a batch that blows its budget drops a rung
  instead of being declined wholesale;
* :class:`~repro.resilience.breaker.CircuitBreaker` opens after
  consecutive solver faults and routes batches straight to the greedy
  rung until a half-open probe restores exact solves, and
  :class:`~repro.resilience.breaker.ExponentialBackoff` paces
  worker-pool restarts with deterministic seeded jitter.

The admission-policy stance follows Mazzucco & Mitrani
(arXiv:1102.3703) and the profit-maximizing allocation line
(arXiv:1205.5871): under SLA pressure, answering with a cheaper policy
beats answering late — degraded-but-feasible decisions dominate missed
deadlines.
"""

from repro.resilience.breaker import BreakerOpen, CircuitBreaker, ExponentialBackoff
from repro.resilience.budget import CycleBudget
from repro.resilience.ladder import (
    RUNGS,
    DegradationLadder,
    LadderDecision,
    greedy_admission,
    lp_round_admission,
)

__all__ = [
    "CycleBudget",
    "CircuitBreaker",
    "BreakerOpen",
    "ExponentialBackoff",
    "DegradationLadder",
    "LadderDecision",
    "RUNGS",
    "greedy_admission",
    "lp_round_admission",
]
