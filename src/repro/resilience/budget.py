"""Wall-clock budgets for billing cycles.

A :class:`CycleBudget` is the single source of truth for "how much time
does this cycle have left".  The broker starts one per cycle; every
solve asks it for a time limit via :meth:`solve_limit`, which hands out
a *shrinking* slice of the remaining budget (never the whole of it), so
early batches cannot starve late ones, and the ladder can detect —
before dispatching a solver — that only the greedy rung still fits.

The budget is deliberately dumb about *what* consumes time: it reads an
injectable monotonic clock, which is also what makes it unit-testable
without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CycleBudget"]


class CycleBudget:
    """One cycle's wall-clock deadline, split into per-solve slices.

    ``deadline_seconds`` is the cycle's total decision budget.  Each call
    to :meth:`solve_limit` grants at most ``spread`` of the remaining
    time (default: half), clipped below by ``min_slice`` — the floor
    under which a MILP dispatch is pointless and the ladder should go
    straight to its greedy rung (see
    :meth:`~repro.resilience.ladder.DegradationLadder.decide`).

    ``clock`` injects the time source (monotonic seconds); tests pass a
    fake to step time deterministically.
    """

    def __init__(
        self,
        deadline_seconds: float,
        *,
        spread: float = 0.5,
        min_slice: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not (deadline_seconds > 0):
            raise ValueError(
                f"deadline_seconds must be > 0, got {deadline_seconds!r}"
            )
        if not (0 < spread <= 1):
            raise ValueError(f"spread must be in (0, 1], got {spread!r}")
        if min_slice < 0:
            raise ValueError(f"min_slice must be >= 0, got {min_slice!r}")
        self.deadline_seconds = float(deadline_seconds)
        self.spread = float(spread)
        self.min_slice = float(min_slice)
        self._clock = clock
        self._epoch = clock()

    def restart(self) -> None:
        """Re-arm the full deadline (the broker calls this per cycle)."""
        self._epoch = self._clock()

    def elapsed(self) -> float:
        return max(0.0, self._clock() - self._epoch)

    def remaining(self) -> float:
        return max(0.0, self.deadline_seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def solve_limit(
        self, *, shares: int = 1, cap: float | None = None
    ) -> float:
        """The time limit to hand the next solve (seconds, >= 0).

        ``shares`` divides the granted slice further — a shard fleet or a
        price iteration passes its remaining subproblem count so sibling
        solves share the slice fairly.  ``cap`` clips the result (the
        static per-solve ``time_limit`` config keeps meaning something
        even under a generous budget); ``None`` leaves it unclipped.

        Returns 0.0 once the budget is exhausted — callers must not
        dispatch a solver on a zero limit.
        """
        if shares < 1:
            raise ValueError(f"shares must be >= 1, got {shares}")
        remaining = self.remaining()
        if remaining <= 0.0:
            return 0.0
        limit = (remaining * self.spread) / shares
        if cap is not None:
            limit = min(limit, cap)
        return limit

    def affords_solver(self, *, shares: int = 1) -> bool:
        """Whether a solver dispatch still fits (slice >= ``min_slice``)."""
        return self.solve_limit(shares=shares) >= self.min_slice

    def __repr__(self) -> str:
        return (
            f"CycleBudget(deadline={self.deadline_seconds}, "
            f"remaining={self.remaining():.3f}s)"
        )
