"""repro.shard — the sharded multi-region broker.

The serving-layer face of :mod:`repro.decomp`: billing cycles are split
across N shard workers by source DC, each shard runs the unchanged
admission loop (in parallel processes with ``workers >= 2``), and a
shared :class:`~repro.decomp.ledger.BandwidthLedger` coordinates the
fleet through Lagrangian link prices.  Durability extends the §6 stack
journal-for-journal: one WAL per shard plus a ledger journal, with
fleet-wide bit-identical crash recovery (:mod:`repro.shard.recovery`).

Wired into the CLI as ``repro serve --shards N`` (both the classic
simulated-clock mode and the ``--listen`` live gateway).
"""

from repro.shard.broker import (
    ShardConfig,
    ShardedBroker,
    ShardedCycle,
    ShardedReport,
)
from repro.shard.live import ShardedLiveEngine
from repro.shard.recovery import (
    RecoveredShardState,
    ledger_wal_path,
    recover_sharded,
    shard_fingerprint,
    shard_wal_path,
)

__all__ = [
    "ShardConfig",
    "ShardedBroker",
    "ShardedCycle",
    "ShardedReport",
    "ShardedLiveEngine",
    "RecoveredShardState",
    "recover_sharded",
    "shard_fingerprint",
    "shard_wal_path",
    "ledger_wal_path",
]
