"""Durability layout of the sharded broker: per-shard WALs + ledger journal.

A sharded run writes ``num_shards + 1`` journals next to the configured
WAL base path:

* ``<base>.shard<k>`` — shard ``k``'s decision trail in the standard
  broker record format (``batch`` records followed by a ``cycle`` commit
  per billing cycle), so :func:`repro.state.recover` replays it
  unchanged;
* ``<base>.ledger`` — one ``ledger`` record per committed cycle carrying
  the :class:`~repro.decomp.ledger.BandwidthLedger`'s dual prices and
  counters after that cycle.

Each journal is stamped with its own fingerprint mixing the broker's
decision fingerprint with the shard topology (shard count, partition
mode, shard id), so resuming under a different sharding refuses instead
of splicing incompatible histories — the same contract the monolithic
broker's :func:`~repro.state.recovery.config_fingerprint` enforces.

Recovery takes the *minimum* committed-prefix length across every
journal: a crash can land between shard commits of the same cycle, and
the cycle only counts once every shard **and** the ledger acknowledged
it.  Shards ahead of the minimum simply re-serve the cycle (their
journals absorb the duplicate commit record deterministically), which
keeps ``recovered prefix + deterministic re-run == uninterrupted run``
bit-identical — the §6 crash-equivalence invariant, extended across the
fleet.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.exceptions import RecoveryError
from repro.state.journal import scan_wal
from repro.state.recovery import WAL_FORMAT, recover

__all__ = [
    "shard_wal_path",
    "ledger_wal_path",
    "shard_fingerprint",
    "ledger_to_record",
    "RecoveredShardState",
    "recover_sharded",
]


def shard_wal_path(base: str | Path, shard_id: int) -> Path:
    """Shard ``shard_id``'s journal path under WAL base ``base``."""
    return Path(f"{base}.shard{shard_id}")


def ledger_wal_path(base: str | Path) -> Path:
    """The bandwidth-ledger journal path under WAL base ``base``."""
    return Path(f"{base}.ledger")


def shard_fingerprint(
    base_fingerprint: str,
    num_shards: int,
    mode: str,
    shard_id: int | str,
) -> str:
    """Mix the broker fingerprint with the shard topology and identity.

    ``shard_id`` is an integer for shard journals and the string
    ``"ledger"`` for the ledger journal.
    """
    parts = (
        ("base", base_fingerprint),
        ("num_shards", num_shards),
        ("mode", mode),
        ("shard", shard_id),
    )
    digest = hashlib.blake2b(repr(parts).encode("utf-8"), digest_size=16)
    return digest.hexdigest()


def ledger_to_record(cycle: int, ledger) -> dict[str, Any]:
    """The per-cycle ledger commit record (duals + counters after it)."""
    return {"type": "ledger", "cycle": int(cycle), **ledger.to_record()}


@dataclass
class RecoveredShardState:
    """The fleet-wide committed prefix recovery reconstructed.

    ``shard_cycles[k]`` holds shard ``k``'s committed
    :class:`~repro.service.broker.CycleResult` prefix (possibly longer
    than ``next_cycle`` for shards whose commit outran the slowest
    journal — only the first ``next_cycle`` entries are trusted).
    ``duals`` is the ledger's dual-price vector after cycle
    ``next_cycle - 1`` (``None`` when no cycle committed), and
    ``ledger_records[i]`` the full ledger record of cycle ``i``.
    """

    shard_cycles: list[list]
    ledger_records: list[dict[str, Any]]
    next_cycle: int
    recovered_batches: int

    @property
    def duals(self) -> np.ndarray | None:
        if self.next_cycle == 0:
            return None
        return np.asarray(
            self.ledger_records[self.next_cycle - 1]["duals"], dtype=float
        )

    def last_ledger_record(self) -> dict[str, Any] | None:
        if self.next_cycle == 0:
            return None
        return self.ledger_records[self.next_cycle - 1]


def _recover_ledger(
    path: Path, fingerprint: str
) -> list[dict[str, Any]]:
    """The contiguous per-cycle ledger record prefix (cycle 0 upward)."""
    records, _, _ = scan_wal(path)
    by_cycle: dict[int, dict[str, Any]] = {}
    for record in records:
        kind = record.get("type")
        if kind == "open":
            if record.get("fingerprint") != fingerprint:
                raise RecoveryError(
                    f"ledger journal {path} was written under a different "
                    "shard configuration; refusing to resume"
                )
            if record.get("format") != WAL_FORMAT:
                raise RecoveryError(
                    f"ledger journal {path} uses WAL format "
                    f"{record.get('format')!r}; this build reads {WAL_FORMAT}"
                )
        elif kind == "ledger":
            by_cycle[int(record["cycle"])] = record
    prefix: list[dict[str, Any]] = []
    index = 0
    while index in by_cycle:
        prefix.append(by_cycle[index])
        index += 1
    return prefix


def recover_sharded(
    wal_base: str | Path,
    *,
    base_fingerprint: str,
    num_shards: int,
    mode: str,
) -> RecoveredShardState:
    """Reconstruct the fleet's committed-cycle prefix from every journal."""
    shard_cycles: list[list] = []
    for shard_id in range(num_shards):
        state = recover(
            shard_wal_path(wal_base, shard_id),
            fingerprint=shard_fingerprint(
                base_fingerprint, num_shards, mode, shard_id
            ),
        )
        shard_cycles.append(state.cycles)
    ledger_records = _recover_ledger(
        ledger_wal_path(wal_base),
        shard_fingerprint(base_fingerprint, num_shards, mode, "ledger"),
    )
    next_cycle = min(
        [len(cycles) for cycles in shard_cycles] + [len(ledger_records)]
    )
    recovered_batches = sum(
        len(result.batches)
        for cycles in shard_cycles
        for result in cycles[:next_cycle]
    )
    return RecoveredShardState(
        shard_cycles=shard_cycles,
        ledger_records=ledger_records,
        next_cycle=next_cycle,
        recovered_batches=recovered_batches,
    )
