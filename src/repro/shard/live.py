"""Sharded live serving: N cycle engines behind one gateway socket.

:class:`ShardedLiveEngine` is a drop-in for
:class:`~repro.gateway.engine.LiveCycleEngine` — same surface
(``cycle`` / ``requests`` / ``seen`` / ``start_cycle`` / ``decide`` /
``close_cycle``), so :class:`~repro.gateway.server.GatewayServer` swaps
it in unchanged when ``GatewayConfig.shards > 1``.  Internally each
window's batch is partitioned by source DC (the same
:func:`~repro.decomp.partition.source_shard_map` rule as the classic
sharded broker) and decided by per-shard ``LiveCycleEngine``\\ s whose
decisions are steered through a shared
:class:`~repro.decomp.ledger.BandwidthLedger`: after every window the
shards' committed loads are posted, and on any capacity violation the
ledger's dual prices are bumped so the *next* window's solves see the
surcharge.  Unlike the offline decomposition there is no reconciliation
eviction — a live gateway cannot revoke an acknowledged accept — so on
capacitated topologies the duals are the only (and eventually
sufficient) pressure valve.

Durability differs deliberately from :class:`~repro.shard.ShardedBroker`:
the live fleet shares the gateway's *single* WAL.  ``close_cycle``
merges the shard results into one combined
:class:`~repro.service.broker.CycleResult` (batch records in decision
order, per-edge purchases summed), which journals and recovers through
the unmodified single-journal path.  The ledger's duals are steering
state, not accounting state, and restart at zero on resume; the
committed profit ledger is exact either way.
"""

from __future__ import annotations

import time

import numpy as np

from repro.decomp.ledger import BandwidthLedger, make_step_schedule
from repro.decomp.partition import (
    PARTITION_MODES,
    shard_of_source,
    source_shard_map,
)
from repro.gateway.engine import LiveCycleEngine
from repro.net.topology import Topology
from repro.resilience import CircuitBreaker, CycleBudget
from repro.service.broker import CycleResult
from repro.service.cache import DecisionCache
from repro.service.telemetry import BatchRecord
from repro.workload.request import Request

__all__ = ["ShardedLiveEngine"]

_TOL = 1e-9


class ShardedLiveEngine:
    """N per-shard cycle engines coordinated by one bandwidth ledger."""

    def __init__(
        self,
        topology: Topology,
        slots_per_cycle: int,
        *,
        shards: int,
        partition: str = "hash",
        k_paths: int = 3,
        time_limit: float | None = None,
        cache: DecisionCache | None = None,
        max_batch: int | None = None,
        fast_path: bool = True,
        on_batch=None,
        step: str = "harmonic",
        step0: float | None = None,
        decay: float = 0.5,
        budget: CycleBudget | None = None,
        breaker_failures: int = 0,
        breaker_reset: float = 5.0,
        check_cancelled=None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if partition not in PARTITION_MODES:
            raise ValueError(
                f"partition must be one of {PARTITION_MODES}, got {partition!r}"
            )
        self.topology = topology
        self.num_shards = shards
        self.partition = partition
        self.on_batch = on_batch
        # Every datacenter's shard is known up front, so routing a bid is
        # a dict lookup on the hot path.
        self._shard_of = source_shard_map(
            topology, topology.datacenters, shards, partition
        )
        edges = [e.key for e in topology.edges]
        prices = np.array([topology.price(*key) for key in edges])
        capacities = np.array(
            [
                float("inf") if ceiling is None else float(ceiling)
                for ceiling in (topology.capacity(*key) for key in edges)
            ]
        )
        if step0 is None:
            step0 = max(float(prices.mean()) if prices.size else 1.0, 1e-12)
        self.ledger = BandwidthLedger(
            edges,
            prices,
            capacities,
            slots_per_cycle,
            schedule=make_step_schedule(step, step0, decay=decay),
        )
        #: One wall-clock deadline for the whole fleet's cycle: every
        #: shard engine shares it, so sequential shard decides naturally
        #: split the shrinking remaining budget.  Each engine's
        #: ``start_cycle`` re-arms it (idempotent within a cycle open).
        self.budget = budget
        #: Per-shard breakers: one sick shard degrades alone while its
        #: siblings keep solving exactly.
        self.breakers: list[CircuitBreaker | None] = [
            CircuitBreaker(
                failure_threshold=breaker_failures, reset_seconds=breaker_reset
            )
            if breaker_failures > 0
            else None
            for _ in range(shards)
        ]
        # The decision cache is shared: keys fold the per-shard committed
        # state (and the dual digest when steering), so entries never
        # collide across shards.
        self._engines = [
            LiveCycleEngine(
                topology,
                slots_per_cycle,
                k_paths=k_paths,
                time_limit=time_limit,
                cache=cache,
                max_batch=max_batch,
                fast_path=fast_path,
                on_batch=self._on_sub_batch,
                budget=budget,
                breaker=self.breakers[shard],
                check_cancelled=check_cancelled,
            )
            for shard in range(shards)
        ]
        self.requests: list[Request] = []
        self.batches: list[BatchRecord] = []
        self._last_shard_results: list[CycleResult] = []
        self._opened_at = time.perf_counter()

    # ------------------------------------------------------------- lifecycle

    @property
    def cycle(self) -> int:
        return self._engines[0].cycle

    def start_cycle(self, cycle_index: int) -> None:
        """Open ``cycle_index`` on every shard engine at once."""
        for engine in self._engines:
            engine.start_cycle(cycle_index)
        self.requests = []
        self.batches = []
        self._opened_at = time.perf_counter()

    def seen(self, request_id: int) -> bool:
        return any(engine.seen(request_id) for engine in self._engines)

    def _on_sub_batch(self, record: BatchRecord) -> None:
        # Collected in decision order across shards — this IS the batch
        # order of the combined CycleResult, so the single gateway WAL
        # journals the fleet's records exactly as they were decided.
        self.batches.append(record)
        if self.on_batch is not None:
            self.on_batch(record)

    # -------------------------------------------------------------- deciding

    def decide(
        self,
        batch: list[Request],
        *,
        window_start: int,
        window_shed: int = 0,
    ) -> list[int | None]:
        """Decide one window across the fleet; choices in input order.

        The batch splits by source shard; each sub-batch is decided by
        its engine against the ledger's current effective prices.  After
        the window, committed loads are posted and — on any violation —
        the duals are bumped, steering the next window.  ``window_shed``
        is attributed to shard 0 (sheds happen before partitioning).
        """
        steering = self.ledger.capped and np.any(self.ledger.duals)
        duals = self.ledger.duals.copy() if steering else None
        sub_batches: list[list[Request]] = [[] for _ in self._engines]
        for req in batch:
            shard = self._shard_of.get(req.source)
            if shard is None:
                # A source outside the topology map (cannot happen behind
                # the gateway's bid validation): stable hash fallback.
                shard = self._shard_of[req.source] = shard_of_source(
                    req.source, self.num_shards
                )
            sub_batches[shard].append(req)
        choice_of: dict[int, int | None] = {}
        for shard, engine in enumerate(self._engines):
            sub = sub_batches[shard]
            shed = window_shed if shard == 0 else 0
            if not sub and not shed:
                continue
            engine.dual_prices = duals
            sub_choices = engine.decide(
                sub, window_start=window_start, window_shed=shed
            )
            for req, choice in zip(sub, sub_choices):
                choice_of[req.request_id] = choice
        self.requests.extend(batch)
        if self.ledger.capped:
            self.ledger.begin_round()
            for shard, engine in enumerate(self._engines):
                self.ledger.post(shard, engine.committed)
            if float(self.ledger.violation().max(initial=0.0)) > _TOL:
                self.ledger.update_prices()
        return [choice_of[req.request_id] for req in batch]

    # --------------------------------------------------------------- closing

    def close_cycle(self) -> CycleResult:
        """Merge the shards' cycle results into one combined result."""
        results = [engine.close_cycle() for engine in self._engines]
        self._last_shard_results = results
        assignment: dict[int, int | None] = {}
        purchased: dict[int, float] = {}
        for result in results:
            assignment.update(result.assignment)
            for edge, units in result.purchased.items():
                purchased[edge] = purchased.get(edge, 0.0) + units
        return CycleResult(
            cycle=self.cycle,
            num_requests=sum(r.num_requests for r in results),
            accepted=sum(r.accepted for r in results),
            declined=sum(r.declined for r in results),
            shed=sum(r.shed for r in results),
            revenue=sum(r.revenue for r in results),
            cost=sum(r.cost for r in results),
            profit=sum(r.profit for r in results),
            wall_seconds=time.perf_counter() - self._opened_at,
            batches=list(self.batches),
            assignment=assignment,
            purchased={edge: purchased[edge] for edge in sorted(purchased)},
        )

    def shard_counters(self) -> dict[int, dict[str, float]]:
        """Per-shard counters of the last closed cycle (for telemetry)."""
        counters: dict[int, dict[str, float]] = {}
        for shard, result in enumerate(self._last_shard_results):
            counters[shard] = {
                "decisions": result.accepted + result.declined,
                "accepted": result.accepted,
                "declined": result.declined,
                "shed": result.shed,
                "revenue": result.revenue,
                "profit": result.profit,
            }
            breaker = self.breakers[shard]
            if breaker is not None:
                counters[shard]["breaker_opens"] = breaker.opens
                counters[shard]["breaker_failures"] = breaker.failures
        return counters

    def rung_counts(self) -> dict[str, int]:
        """Fleet-wide ladder rung counts (all zeros when resilience is off)."""
        totals: dict[str, int] = {}
        for engine in self._engines:
            if engine.ladder is None:
                continue
            for rung, count in engine.ladder.counts.items():
                totals[rung] = totals.get(rung, 0) + count
        return totals

    def breaker_counters(self) -> dict[str, int]:
        """Fleet-wide breaker counters summed across shards."""
        totals = {"opens": 0, "failures": 0, "probes": 0, "short_circuits": 0}
        for breaker in self.breakers:
            if breaker is None:
                continue
            totals["opens"] += breaker.opens
            totals["failures"] += breaker.failures
            totals["probes"] += breaker.probes
            totals["short_circuits"] += breaker.short_circuits
        return totals

    def __repr__(self) -> str:
        return (
            f"ShardedLiveEngine(shards={self.num_shards}, "
            f"partition={self.partition!r}, cycle={self.cycle})"
        )
