"""The sharded multi-region broker: N shard workers, one bandwidth ledger.

:class:`ShardedBroker` scales the serving loop *within* a billing cycle:
each cycle's bid stream is partitioned by source DC
(:func:`repro.decomp.partition_requests`), every shard serves its slice
through the unchanged :func:`repro.service.broker.run_cycle` admission
loop — in parallel across a :class:`~repro.service.pool.SolverPool` when
``workers >= 2`` — and the shards coordinate only through the
:class:`~repro.decomp.ledger.BandwidthLedger`:

* shard MILPs solve against the effective prices ``u_e + lambda_e``
  (``run_cycle``'s ``dual_prices`` hook); all accounting stays on the
  true prices, and each shard charges its own integer units, so a
  cycle's profit is the plain sum of shard profits — the composability
  the recovery path depends on;
* after every cycle the shards' realized (edge, slot) loads are posted
  to the ledger; on a capped topology an oversubscribed link raises its
  dual (steering the *next* cycle's decisions) and a reconciliation
  pass evicts the lowest-``(value, id)`` acceptances until the combined
  loads respect every ceiling — uncapped topologies never enter either
  branch, so the common path adds no overhead;
* with a WAL base configured, each shard journals to its own
  ``<base>.shard<k>`` log in the standard broker record format and the
  ledger to ``<base>.ledger`` (see :mod:`repro.shard.recovery`);
  ``run(resume=True)`` restores the fleet bit-identically, reusing the
  §6 fault matrix (:mod:`repro.state.faults`) journal-for-journal.

The partition is deterministic and id-stable, every shard cycle is the
deterministic monolithic serving loop, and the duals evolve as a pure
function of committed loads — so serial and pooled runs, and crashed and
uninterrupted runs, produce identical decision logs.
"""

from __future__ import annotations

import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.decomp.ledger import BandwidthLedger, make_step_schedule
from repro.decomp.partition import PARTITION_MODES, partition_requests
from repro.decomp.solver import _reconcile
from repro.resilience import CircuitBreaker, CycleBudget, DegradationLadder
from repro.service import pool as pool_mod
from repro.service.broker import (
    BrokerConfig,
    CycleResult,
    _make_topology,
    run_cycle,
)
from repro.service.cache import DecisionCache
from repro.service.ingest import ArrivalSource, GeneratorSource
from repro.service.pool import SolverPool
from repro.service.telemetry import TelemetryCollector
from repro.shard.recovery import (
    ledger_to_record,
    ledger_wal_path,
    recover_sharded,
    shard_fingerprint,
    shard_wal_path,
)
from repro.state import FaultPlan, Journal, batch_to_record, cycle_to_record
from repro.state.recovery import WAL_FORMAT, config_fingerprint
from repro.workload.generator import WorkloadConfig

__all__ = ["ShardConfig", "ShardedCycle", "ShardedReport", "ShardedBroker"]

#: Matches the schedule layer's float-noise allowance before a ceiling.
_TOL = 1e-9


@dataclass
class ShardConfig(BrokerConfig):
    """A :class:`~repro.service.broker.BrokerConfig` plus sharding knobs.

    ``shards`` fixes the worker fleet size; ``partition`` picks the
    request-to-shard rule (:data:`~repro.decomp.partition.PARTITION_MODES`);
    ``step``/``step0``/``decay`` configure the ledger's dual-price step
    schedule (``step0=None`` scales to the topology's mean link price).
    ``workers`` retains its meaning — with ``workers >= 2`` the shard
    cycles of each billing cycle are decided in parallel processes.

    The inherited resilience knobs compose with sharding: with
    ``cycle_budget`` set the fleet shares one
    :class:`~repro.resilience.budget.CycleBudget` per cycle, pooled shard
    solves become **hedged** (each shard future is awaited only for the
    remaining budget; a hung shard is degraded locally down the ladder
    while healthy shards stay exact), and ``breaker_failures`` arms one
    circuit breaker *per shard* so a chronically sick shard is routed
    straight to the greedy rung without touching the pool.
    """

    shards: int = 2
    partition: str = "hash"
    step: str = "harmonic"
    step0: float | None = None
    decay: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.partition not in PARTITION_MODES:
            raise ValueError(
                f"partition must be one of {PARTITION_MODES}, "
                f"got {self.partition!r}"
            )


@dataclass
class ShardedCycle:
    """One billing cycle across the fleet: per-shard ledgers + coordination.

    ``shard_results`` is ordered by shard id and covers every shard (empty
    shards serve an empty cycle so the per-shard journals stay cycle
    contiguous).  ``evicted`` lists the request ids the reconciliation
    pass revoked, ``max_violation`` the worst pre-reconciliation link
    oversubscription, and ``duals_after`` the ledger's dual prices once
    the cycle committed.
    """

    cycle: int
    shard_results: list[CycleResult]
    evicted: tuple = ()
    max_violation: float = 0.0
    duals_after: list[float] = field(default_factory=list)

    @property
    def profit(self) -> float:
        return sum(result.profit for result in self.shard_results)

    @property
    def revenue(self) -> float:
        return sum(result.revenue for result in self.shard_results)

    @property
    def cost(self) -> float:
        return sum(result.cost for result in self.shard_results)

    @property
    def accepted(self) -> int:
        return sum(result.accepted for result in self.shard_results)

    @property
    def num_requests(self) -> int:
        return sum(result.num_requests for result in self.shard_results)

    @property
    def declined(self) -> int:
        return sum(result.declined for result in self.shard_results)

    @property
    def shed(self) -> int:
        return sum(result.shed for result in self.shard_results)

    @property
    def wall_seconds(self) -> float:
        return sum(result.wall_seconds for result in self.shard_results)

    def assignment(self) -> dict[int, int | None]:
        """The cycle's merged request -> path decision across shards."""
        merged: dict[int, int | None] = {}
        for result in self.shard_results:
            merged.update(result.assignment)
        return merged


@dataclass
class ShardedReport:
    """A finished sharded run: per-cycle fleet ledgers plus telemetry."""

    config: ShardConfig
    cycles: list[ShardedCycle]
    telemetry: TelemetryCollector

    @property
    def profit(self) -> float:
        return sum(cycle.profit for cycle in self.cycles)

    @property
    def revenue(self) -> float:
        return sum(cycle.revenue for cycle in self.cycles)

    @property
    def num_accepted(self) -> int:
        return sum(cycle.accepted for cycle in self.cycles)

    def summary(self) -> dict:
        return self.telemetry.summary()

    def decision_log(self) -> list[tuple[int, int, int | None]]:
        """Every decision as ``(cycle, request_id, path_or_None)``.

        Canonically ordered across shards, so sharded runs compare with
        ``==`` against each other (serial/pool, crashed/uninterrupted)
        exactly like :meth:`~repro.service.broker.BrokerReport.decision_log`.
        """
        return [
            (cycle.cycle, request_id, path)
            for cycle in self.cycles
            for request_id, path in sorted(cycle.assignment().items())
        ]

    def purchases(self) -> list[list[dict[int, float]]]:
        """Per cycle, per shard: the purchased units keyed by edge index."""
        return [
            [dict(result.purchased) for result in cycle.shard_results]
            for cycle in self.cycles
        ]

    def dump_telemetry(self, path) -> None:
        self.telemetry.dump_json(path)


def _shard_cycle_worker(payload: tuple):
    """Pool entry point: serve one shard's slice of one billing cycle.

    Returns ``(shard_id, CycleResult, loads)`` — the realized (edge,
    slot) loads ride along so the coordinator can post them to the
    ledger without re-enumerating paths.
    """
    (
        shard_id,
        topology,
        requests,
        cycle_index,
        window,
        k_paths,
        time_limit,
        queue_capacity,
        max_batch,
        fast_path,
        lp_screen,
        duals,
        faults,
        cycle_budget,
    ) = payload
    check_cancelled = pool_mod.check_cancelled
    if faults is not None:
        def check_cancelled():
            faults.maybe_kill_worker(cycle_index)
            faults.maybe_hang_solver()
            faults.maybe_slow_worker()
            return pool_mod.check_cancelled()
    instance = SPMInstance.build(topology, requests, k_paths=k_paths)
    result = run_cycle(
        topology,
        requests,
        cycle_index=cycle_index,
        window=window,
        k_paths=k_paths,
        time_limit=time_limit,
        cache=pool_mod.worker_cache(),
        queue_capacity=queue_capacity,
        max_batch=max_batch,
        check_cancelled=check_cancelled,
        fast_path=fast_path,
        lp_screen=lp_screen,
        instance=instance,
        dual_prices=duals,
        budget=(
            CycleBudget(cycle_budget) if cycle_budget is not None else None
        ),
    )
    return shard_id, result, instance.loads(result.assignment)


class _ShardJournals:
    """The run's open journals: one per shard plus the ledger journal."""

    def __init__(
        self,
        wal_base: str | Path,
        config: ShardConfig,
        base_fingerprint: str,
        next_cycle: int,
        faults: FaultPlan | None,
    ) -> None:
        self.faults = faults
        fsync_hook = faults.fsync_hook() if faults is not None else None
        write_hook = faults.write_hook() if faults is not None else None
        self.shards: list[Journal] = []
        for shard_id in range(config.shards):
            journal = Journal.open(
                shard_wal_path(wal_base, shard_id),
                fsync=config.fsync,
                fsync_hook=fsync_hook,
            )
            self._stamp(
                journal,
                shard_fingerprint(
                    base_fingerprint, config.shards, config.partition, shard_id
                ),
                next_cycle,
            )
            self.shards.append(journal)
        # Only the ledger journal gets the torn-write hook: the ledger
        # record is what acknowledges a fleet cycle, so a partial ledger
        # append is the worst-placed tear the recovery path must heal.
        self.ledger = Journal.open(
            ledger_wal_path(wal_base),
            fsync=config.fsync,
            fsync_hook=fsync_hook,
            write_hook=write_hook,
        )
        self._stamp(
            self.ledger,
            shard_fingerprint(
                base_fingerprint, config.shards, config.partition, "ledger"
            ),
            next_cycle,
        )

    @staticmethod
    def _stamp(journal: Journal, fingerprint: str, next_cycle: int) -> None:
        journal.append(
            {
                "type": "open",
                "format": WAL_FORMAT,
                "fingerprint": fingerprint,
                "next_cycle": next_cycle,
            }
        )
        journal.commit()

    def commit_cycle(self, sharded: ShardedCycle, ledger) -> None:
        """Journal the cycle shard by shard (in shard order), then the ledger.

        Each shard's commit is its own durability barrier; the ledger
        record commits last and is what acknowledges the whole cycle —
        recovery trusts a cycle only once every journal carries it.
        """
        for shard_id, result in enumerate(sharded.shard_results):
            journal = self.shards[shard_id]
            for record in result.batches:
                journal.append(batch_to_record(record))
                if self.faults is not None:
                    self.faults.after_batch_append()
            journal.append(cycle_to_record(result))
            journal.commit()
            if self.faults is not None:
                self.faults.after_cycle_commit()
        self.ledger.append(ledger_to_record(sharded.cycle, ledger))
        self.ledger.commit()
        if self.faults is not None:
            self.faults.after_cycle_commit()

    @property
    def wal_bytes(self) -> int:
        return (
            sum(journal.size_bytes for journal in self.shards)
            + self.ledger.size_bytes
        )

    def close(self) -> None:
        for journal in self.shards:
            journal.close()
        self.ledger.close()


class ShardedBroker:
    """Runs the sharded serving loop over an arrival source.

    The same construction contract as :class:`~repro.service.broker.Broker`
    — default source is the seed-deterministic synthetic workload; pass a
    :class:`~repro.service.ingest.TraceSource` to replay recorded
    traffic; ``faults`` wires the §6 fault matrix into journal appends,
    cycle commits and worker kills.
    """

    def __init__(
        self,
        config: ShardConfig | None = None,
        source: ArrivalSource | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config if config is not None else ShardConfig()
        self.faults = faults
        self._stop_requested = False
        self.topology = _make_topology(self.config.topology)
        if source is None:
            source = GeneratorSource(
                self.topology,
                WorkloadConfig(
                    num_requests=self.config.requests_per_cycle,
                    num_slots=self.config.slots_per_cycle,
                    max_duration=self.config.max_duration,
                    value_model=self.config.value_model,
                ),
                seed=self.config.seed,
            )
        self.source = source

    def request_stop(self) -> None:
        """Stop at the next cycle boundary (signal-safe, like the broker)."""
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    # ------------------------------------------------------------------ run

    def _make_ledger(self) -> BandwidthLedger:
        config = self.config
        # The ledger needs only the edge order, prices and ceilings — the
        # same fixed ordering every SPMInstance over this topology uses.
        edges = [e.key for e in self.topology.edges]
        prices = np.array([self.topology.price(*key) for key in edges])
        capacities = np.array(
            [
                float("inf") if ceiling is None else float(ceiling)
                for ceiling in (
                    self.topology.capacity(*key) for key in edges
                )
            ]
        )
        step0 = config.step0
        if step0 is None:
            step0 = max(
                float(prices.mean()) if prices.size else 1.0, 1e-12
            )
        return BandwidthLedger(
            edges,
            prices,
            capacities,
            config.slots_per_cycle,
            schedule=make_step_schedule(
                config.step, step0, decay=config.decay
            ),
        )

    def run(self, *, resume: bool = False) -> ShardedReport:
        """Serve every configured cycle across the fleet.

        With ``config.wal_path`` set, every shard journals its decisions
        and the ledger its duals as cycles commit; ``resume=True`` first
        recovers the fleet-wide committed prefix and re-serves only what
        never fully committed — bit-identical to an uninterrupted run.
        """
        config = self.config
        if resume and config.wal_path is None:
            raise ValueError("resume=True requires ShardConfig.wal_path")
        t0 = time.perf_counter()
        self._worker_restarts = 0
        self._backoff_seconds = 0.0
        self._shard_concurrency = 1
        self._budget = (
            CycleBudget(config.cycle_budget)
            if config.cycle_budget is not None
            else None
        )
        self._breakers: list[CircuitBreaker | None] = [
            CircuitBreaker(
                failure_threshold=config.breaker_failures,
                reset_seconds=config.breaker_reset,
            )
            if config.breaker_failures > 0
            else None
            for _ in range(config.shards)
        ]
        self._ladders: list[DegradationLadder | None] = [
            DegradationLadder(
                budget=self._budget,
                breaker=self._breakers[shard_id],
                time_limit=config.time_limit,
                fast_path=config.fast_path,
                lp_screen=config.lp_screen,
            )
            if self._budget is not None or self._breakers[shard_id] is not None
            else None
            for shard_id in range(config.shards)
        ]
        self._hedges = [0] * config.shards

        ledger = self._make_ledger()
        completed: list[ShardedCycle] = []
        recovered_batches = 0
        journals = None
        wal_bytes = 0
        if config.wal_path is not None:
            base_fingerprint = config_fingerprint(config)
            start = 0
            if resume:
                state = recover_sharded(
                    config.wal_path,
                    base_fingerprint=base_fingerprint,
                    num_shards=config.shards,
                    mode=config.partition,
                )
                start = state.next_cycle
                recovered_batches = state.recovered_batches
                for index in range(start):
                    record = state.ledger_records[index]
                    completed.append(
                        ShardedCycle(
                            cycle=index,
                            shard_results=[
                                state.shard_cycles[shard_id][index]
                                for shard_id in range(config.shards)
                            ],
                            duals_after=list(record["duals"]),
                        )
                    )
                last = state.last_ledger_record()
                if last is not None:
                    ledger.apply_record(last)
            journals = _ShardJournals(
                config.wal_path,
                config,
                base_fingerprint,
                len(completed),
                self.faults,
            )

        try:
            fresh = self._serve(len(completed), ledger, journals)
        finally:
            if journals is not None:
                wal_bytes = journals.wal_bytes
                journals.close()
        cycles = completed + fresh
        elapsed = time.perf_counter() - t0

        telemetry = TelemetryCollector()
        for sharded in cycles:
            for result in sharded.shard_results:
                for record in result.batches:
                    telemetry.record_batch(record)
            telemetry.record_cycle(sharded.cycle, sharded.profit)
            for shard_id, result in enumerate(sharded.shard_results):
                telemetry.record_shard(
                    shard_id,
                    {
                        "decisions": result.num_requests - result.shed,
                        "accepted": result.accepted,
                        "declined": result.declined,
                        "shed": result.shed,
                        "revenue": result.revenue,
                        "profit": result.profit,
                    },
                )
        telemetry.wall_seconds = elapsed
        telemetry.recovered_batches = recovered_batches
        telemetry.wal_bytes = wal_bytes
        telemetry.worker_restarts = self._worker_restarts
        telemetry.backoff_seconds = self._backoff_seconds
        telemetry.ledger_price_iterations = ledger.price_iterations
        telemetry.reconciliation_evictions = ledger.evictions
        telemetry.shard_concurrency = self._shard_concurrency
        for shard_id, breaker in enumerate(self._breakers):
            if breaker is None and not self._hedges[shard_id]:
                continue
            section: dict = {"hedged_solves": self._hedges[shard_id]}
            if breaker is not None:
                telemetry.breaker_opens += breaker.opens
                telemetry.breaker_failures += breaker.failures
                telemetry.breaker_probes += breaker.probes
                telemetry.breaker_short_circuits += breaker.short_circuits
                section.update(
                    breaker_opens=breaker.opens,
                    breaker_failures=breaker.failures,
                    breaker_state=breaker.state,
                )
            telemetry.record_shard(shard_id, section)
        return ShardedReport(config=config, cycles=cycles, telemetry=telemetry)

    # ---------------------------------------------------------- the loop

    def _serve(
        self,
        start: int,
        ledger: BandwidthLedger,
        journals: _ShardJournals | None,
    ) -> list[ShardedCycle]:
        config = self.config
        results: list[ShardedCycle] = []
        pool = None
        caches: list[DecisionCache | None] = [
            DecisionCache(config.cache_size) if config.cache_size > 0 else None
            for _ in range(config.shards)
        ]
        try:
            if config.workers >= 2 and start < config.num_cycles:
                pool = SolverPool(
                    config.workers, cache_size=config.cache_size
                )
                self._shard_concurrency = pool.workers
            for index in range(start, config.num_cycles):
                if self._stop_requested:
                    break
                sharded = self._serve_cycle(index, ledger, pool, caches)
                if journals is not None:
                    journals.commit_cycle(sharded, ledger)
                results.append(sharded)
            if pool is not None:
                self._worker_restarts = pool.worker_restarts
                self._backoff_seconds = pool.backoff_seconds
        finally:
            if pool is not None:
                pool.shutdown()
        return results

    def _serve_cycle(
        self,
        index: int,
        ledger: BandwidthLedger,
        pool: SolverPool | None,
        caches: list[DecisionCache | None],
    ) -> ShardedCycle:
        config = self.config
        requests = self.source.cycle(index)
        shard_ids = partition_requests(
            self.topology, requests, config.shards, config.partition
        )
        if self._budget is not None:
            self._budget.restart()
        duals = ledger.duals.copy()
        payloads = [
            (
                shard_id,
                self.topology,
                requests.subset(ids),
                index,
                config.window,
                config.k_paths,
                config.time_limit,
                config.queue_capacity,
                config.max_batch,
                config.fast_path,
                config.lp_screen,
                duals,
                self.faults if pool is not None else None,
                config.cycle_budget,
            )
            for shard_id, ids in enumerate(shard_ids)
        ]

        shard_results: list[CycleResult | None] = [None] * config.shards
        ledger.begin_round()
        if pool is not None and self._budget is not None:
            outcomes = self._serve_cycle_hedged(pool, payloads, caches)
        elif pool is not None:
            outcomes = pool.imap(_shard_cycle_worker, payloads)
        else:
            outcomes = (
                self._serve_shard_serial(payload, caches)
                for payload in payloads
            )
        for shard_id, result, loads in outcomes:
            shard_results[shard_id] = result
            ledger.post(shard_id, loads)

        max_violation = (
            float(ledger.violation().max()) if ledger.num_edges else 0.0
        )
        evicted: tuple = ()
        if max_violation > _TOL:
            # Steer the next cycle's decisions, then make this one feasible.
            ledger.update_prices()
            evicted = self._reconcile_cycle(requests, shard_ids, shard_results)
            ledger.record_evictions(len(evicted))
        return ShardedCycle(
            cycle=index,
            shard_results=list(shard_results),
            evicted=evicted,
            max_violation=max_violation,
            duals_after=ledger.duals.tolist(),
        )

    def _serve_cycle_hedged(self, pool: SolverPool, payloads, caches):
        """Hedged pooled dispatch: one hung shard degrades alone.

        Every shard is submitted to the pool individually; each future is
        awaited only for the shared budget's *remaining* time.  A shard
        that blows the wait (an injected hang, a byzantine-slow worker)
        records a breaker failure and is re-decided **locally** down the
        degradation ladder — microseconds, deadline-safe — while its late
        pool result is simply discarded.  A dead worker restarts the
        executor (backoff-paced) and re-decides locally too.  Shards
        whose breaker is already open skip the pool entirely.
        """
        futures = []
        for payload in payloads:
            breaker = self._breakers[payload[0]]
            if breaker is not None and not breaker.allow():
                futures.append((payload, None))
            else:
                futures.append(
                    (payload, pool.submit(_shard_cycle_worker, payload))
                )
        for payload, future in futures:
            shard_id = payload[0]
            breaker = self._breakers[shard_id]
            if future is None:
                yield self._serve_shard_serial(payload, caches)
                continue
            timeout = max(self._budget.remaining(), self._budget.min_slice)
            try:
                outcome = future.result(timeout=timeout)
            except FutureTimeoutError:
                self._hedges[shard_id] += 1
                if breaker is not None:
                    breaker.record_failure()
                future.cancel()
                yield self._serve_shard_serial(payload, caches)
            except BrokenProcessPool:
                if breaker is not None:
                    breaker.record_failure()
                pool.restart()
                yield self._serve_shard_serial(payload, caches)
            else:
                if breaker is not None:
                    breaker.record_success()
                yield outcome

    def _serve_shard_serial(self, payload: tuple, caches):
        """The in-process twin of :func:`_shard_cycle_worker`.

        Identical decisions (the cache is exact and the loop
        deterministic); only the cache residency differs — serial shards
        keep one persistent cache per shard id instead of per process.
        Doubles as the hedged path's local fallback: with resilience
        configured the shard's ladder (shared budget, per-shard breaker)
        decides every batch, so a budget already drained by a hung pool
        solve lands the whole shard on the greedy rung.
        """
        (
            shard_id,
            topology,
            requests,
            cycle_index,
            window,
            k_paths,
            time_limit,
            queue_capacity,
            max_batch,
            fast_path,
            lp_screen,
            duals,
            _faults,
            _cycle_budget,
        ) = payload
        instance = SPMInstance.build(topology, requests, k_paths=k_paths)
        result = run_cycle(
            topology,
            requests,
            cycle_index=cycle_index,
            window=window,
            k_paths=k_paths,
            time_limit=time_limit,
            cache=caches[shard_id],
            queue_capacity=queue_capacity,
            max_batch=max_batch,
            fast_path=fast_path,
            lp_screen=lp_screen,
            instance=instance,
            dual_prices=duals,
            ladder=self._ladders[shard_id],
        )
        return shard_id, result, instance.loads(result.assignment)

    def _reconcile_cycle(
        self,
        requests,
        shard_ids: list[list[int]],
        shard_results: list[CycleResult],
    ) -> tuple:
        """Evict acceptances until the combined loads respect every ceiling.

        Runs only when a capped link is actually oversubscribed.  The
        eviction order is the deterministic lowest-``(value, id)`` rule
        of :func:`repro.decomp.solver._reconcile`; afterwards each
        affected shard's ledger (accepted counts, revenue, cost, profit,
        purchased units) is recomputed from its restricted instance under
        shard-local charging, keeping cycle profit the sum of shard
        profits.
        """
        config = self.config
        instance = SPMInstance.build(
            self.topology, requests, k_paths=config.k_paths
        )
        merged: dict[int, int | None] = {}
        for result in shard_results:
            merged.update(result.assignment)
        capacities = np.array(
            [
                float("inf") if ceiling is None else float(ceiling)
                for ceiling in (
                    self.topology.capacity(*key) for key in instance.edges
                )
            ]
        )
        evicted = _reconcile(instance, merged, capacities)
        if not evicted:
            return ()
        evicted_set = set(evicted)
        for shard_id, ids in enumerate(shard_ids):
            if not evicted_set.intersection(ids):
                continue
            result = shard_results[shard_id]
            assignment = {
                rid: (None if rid in evicted_set else path)
                for rid, path in result.assignment.items()
            }
            shard_instance = instance.restrict(
                [rid for rid in ids if rid in result.assignment]
            )
            schedule = Schedule(shard_instance, assignment)
            shard_results[shard_id] = replace(
                result,
                accepted=schedule.num_accepted,
                declined=result.declined
                + (result.accepted - schedule.num_accepted),
                revenue=schedule.revenue,
                cost=schedule.cost,
                profit=schedule.profit,
                assignment=assignment,
                purchased={
                    instance.edge_index[key]: float(units)
                    for key, units in schedule.charged.items()
                    if units
                },
            )
        return tuple(evicted)

    def with_config(self, **changes) -> "ShardedBroker":
        """A new sharded broker over the same source with fields replaced."""
        return ShardedBroker(
            replace(self.config, **changes),
            source=self.source,
            faults=self.faults,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedBroker(topology={self.topology.name!r}, "
            f"shards={self.config.shards}, cycles={self.config.num_cycles}, "
            f"workers={self.config.workers})"
        )
