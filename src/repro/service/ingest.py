"""Bid ingestion: arrival sources and the bounded admission queue.

The broker consumes sealed bids cycle by cycle from an
:class:`ArrivalSource` — either freshly drawn from the synthetic workload
model (:class:`GeneratorSource`, deterministic per seed *and* per cycle)
or replayed from a recorded trace (:class:`TraceSource`, including the
JSONL streaming format of :mod:`repro.workload.traces`).

Between arrival and decision, bids sit in an :class:`AdmissionQueue`.  The
queue is bounded: a real broker cannot buffer unbounded bursts, so bids
offered beyond ``capacity`` are *shed* — declined without ever reaching a
solver.  Draining accepts an optional batch-size limit so one admission
window can be split into several smaller MILPs when burst sizes would
otherwise blow up solve times.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from collections.abc import Iterable
from pathlib import Path

from repro.exceptions import WorkloadError
from repro.net.topology import Topology
from repro.util.rng import ensure_rng
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.request import Request, RequestSet
from repro.workload.traces import load_trace, load_trace_jsonl

__all__ = [
    "ArrivalSource",
    "GeneratorSource",
    "TraceSource",
    "PushSource",
    "AdmissionQueue",
]

#: Mixes the seed with the cycle index the same way the experiment harness
#: mixes it with the sweep point — a large prime keeps substreams disjoint.
_CYCLE_SEED_STRIDE = 100_003


class ArrivalSource(ABC):
    """Produces one billing cycle's worth of bid arrivals at a time."""

    @abstractmethod
    def cycle(self, cycle_index: int) -> RequestSet:
        """The sealed bids arriving during cycle ``cycle_index``.

        Must be deterministic in ``cycle_index``: calling it twice with the
        same index returns an identical request set, so broker runs can be
        replayed and the serial/pooled execution paths agree.
        """


class GeneratorSource(ArrivalSource):
    """Streams synthetic bids from :func:`~repro.workload.generator.generate_workload`.

    Each cycle draws an independent workload whose seed mixes the master
    ``seed`` with the cycle index, so the stream is unbounded, cycle-varied
    and still fully reproducible.
    """

    def __init__(
        self, topology: Topology, config: WorkloadConfig, *, seed: int = 0
    ) -> None:
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self.topology = topology
        self.config = config
        self.seed = seed

    def cycle(self, cycle_index: int) -> RequestSet:
        rng = ensure_rng(self.seed * _CYCLE_SEED_STRIDE + cycle_index)
        return generate_workload(self.topology, self.config, rng=rng)


class TraceSource(ArrivalSource):
    """Replays a recorded trace as the bid stream.

    ``trace`` may be a :class:`RequestSet` or a path to a saved trace
    (``.jsonl`` streams through :func:`load_trace_jsonl`, anything else
    through :func:`load_trace`).  With ``repeat=True`` (the default) every
    cycle replays the same trace — the periodic-traffic regime where the
    decision cache shines; with ``repeat=False`` the trace plays in cycle 0
    only and later cycles are idle.
    """

    def __init__(
        self,
        trace: RequestSet | str | Path,
        *,
        repeat: bool = True,
    ) -> None:
        if isinstance(trace, (str, Path)):
            path = Path(trace)
            trace = (
                load_trace_jsonl(path)
                if path.suffix == ".jsonl"
                else load_trace(path)
            )
        if not isinstance(trace, RequestSet):
            raise WorkloadError(
                f"trace must be a RequestSet or a path, got {type(trace).__name__}"
            )
        self.trace = trace
        self.repeat = repeat
        self._idle: RequestSet | None = None

    def cycle(self, cycle_index: int) -> RequestSet:
        if cycle_index == 0 or self.repeat:
            return self.trace
        # Idle cycles share one empty set: the source may be asked for
        # thousands of them, and callers rely on repeated calls returning
        # equal (here: identical) sets.
        if self._idle is None:
            self._idle = RequestSet([], self.trace.num_slots)
        return self._idle


class PushSource(ArrivalSource):
    """An arrival source fed from outside the broker — the gateway seam.

    The generator and trace sources *pull* a whole cycle's bids on
    demand; a live front end instead learns what arrived only as the
    wall clock closes each cycle.  :meth:`feed` records cycle
    ``cycle_index``'s realized arrivals (exactly once), after which
    :meth:`cycle` serves them like any other source — so a broker can
    re-run or audit precisely the traffic a gateway served, and the
    determinism contract (same index, same set) still holds.
    """

    def __init__(self, num_slots: int) -> None:
        if num_slots < 1:
            raise WorkloadError(f"num_slots must be >= 1, got {num_slots}")
        self.num_slots = num_slots
        self._cycles: dict[int, RequestSet] = {}
        self._idle: RequestSet | None = None

    def feed(self, cycle_index: int, requests: RequestSet | Iterable[Request]) -> None:
        """Record cycle ``cycle_index``'s arrivals; refuses to re-feed."""
        if cycle_index < 0:
            raise WorkloadError(f"cycle_index must be >= 0, got {cycle_index}")
        if cycle_index in self._cycles:
            raise WorkloadError(
                f"cycle {cycle_index} was already fed; sources must stay "
                "deterministic in the cycle index"
            )
        if not isinstance(requests, RequestSet):
            requests = RequestSet(requests, self.num_slots)
        elif requests.num_slots != self.num_slots:
            raise WorkloadError(
                f"fed cycle has {requests.num_slots} slots, source expects "
                f"{self.num_slots}"
            )
        self._cycles[cycle_index] = requests

    @property
    def fed_cycles(self) -> list[int]:
        return sorted(self._cycles)

    def cycle(self, cycle_index: int) -> RequestSet:
        fed = self._cycles.get(cycle_index)
        if fed is not None:
            return fed
        if self._idle is None:
            self._idle = RequestSet([], self.num_slots)
        return self._idle


class AdmissionQueue:
    """A bounded FIFO of pending bids with shed accounting.

    ``offer`` returns ``False`` (and counts the bid as shed) when the queue
    is full; ``drain`` pops up to ``limit`` bids in arrival order.
    ``capacity=None`` means unbounded — the simulation default.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self._pending: deque[Request] = deque()
        self.shed = 0

    def offer(self, request: Request) -> bool:
        if self.capacity is not None and len(self._pending) >= self.capacity:
            self.shed += 1
            return False
        self._pending.append(request)
        return True

    def drain(self, limit: int | None = None) -> list[Request]:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1 or None, got {limit}")
        count = len(self._pending) if limit is None else min(limit, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"AdmissionQueue(pending={len(self._pending)}/{cap}, shed={self.shed})"
