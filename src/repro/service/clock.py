"""The broker's simulated clock: rolling billing cycles of discrete slots.

The paper charges bandwidth per *billing cycle* (a month of slots); a
long-running provider rolls through cycle after cycle, and inside each
cycle groups arriving bids into *admission windows* of one or more slots.
:class:`SimClock` pins that three-level time structure — cycle, window,
slot — so the broker, ingest queue and telemetry all agree on it.

The clock is purely logical: advancing it costs nothing and two runs over
the same configuration tick identically, which is what makes broker runs
seed-deterministic and replayable.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["Tick", "CycleClock", "SimClock"]


@dataclass(frozen=True)
class Tick:
    """One admission-window boundary: cycle index plus the window's slots."""

    cycle: int
    window_start: int
    window_stop: int  # exclusive

    @property
    def slots(self) -> range:
        return range(self.window_start, self.window_stop)


@runtime_checkable
class CycleClock(Protocol):
    """The clock protocol the serving loop runs on.

    Anything that partitions a billing cycle into ordered admission-window
    :class:`Tick`\\ s satisfies it: :class:`SimClock` advances logically
    (two runs tick identically — the replayable default), while
    :class:`repro.gateway.WallClock` pins the same structure to real
    deadlines so cycles close on the wall clock.  ``run_cycle`` accepts
    any implementation via its ``clock`` parameter.
    """

    slots_per_cycle: int
    window: int

    def windows(self, cycle: int) -> Iterator[Tick]: ...

    def window_of(self, slot: int) -> int: ...


class SimClock:
    """Discrete simulated time over ``num_cycles`` billing cycles.

    Each cycle has ``slots_per_cycle`` slots, partitioned into admission
    windows of ``window`` slots (the last window of a cycle may be
    shorter).  ``window=1`` reproduces the slot-by-slot cadence of
    :class:`~repro.core.online.OnlineScheduler`; larger windows trade
    decision latency for bigger (jointly optimized) batch MILPs.
    """

    def __init__(
        self,
        slots_per_cycle: int,
        *,
        window: int = 1,
        num_cycles: int = 1,
    ) -> None:
        if slots_per_cycle < 1:
            raise ValueError(f"slots_per_cycle must be >= 1, got {slots_per_cycle}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if num_cycles < 1:
            raise ValueError(f"num_cycles must be >= 1, got {num_cycles}")
        self.slots_per_cycle = slots_per_cycle
        self.window = window
        self.num_cycles = num_cycles

    @property
    def windows_per_cycle(self) -> int:
        return -(-self.slots_per_cycle // self.window)

    @property
    def total_slots(self) -> int:
        return self.slots_per_cycle * self.num_cycles

    def cycles(self) -> range:
        return range(self.num_cycles)

    def windows(self, cycle: int) -> Iterator[Tick]:
        """The admission-window boundaries of one cycle, in time order."""
        if not (0 <= cycle < self.num_cycles):
            raise ValueError(
                f"cycle must be in [0, {self.num_cycles}), got {cycle}"
            )
        for start in range(0, self.slots_per_cycle, self.window):
            stop = min(start + self.window, self.slots_per_cycle)
            yield Tick(cycle=cycle, window_start=start, window_stop=stop)

    def ticks(self) -> Iterator[Tick]:
        """Every admission window of the whole run, cycle by cycle."""
        for cycle in self.cycles():
            yield from self.windows(cycle)

    def window_of(self, slot: int) -> int:
        """The window index (within a cycle) that decides slot ``slot``."""
        if not (0 <= slot < self.slots_per_cycle):
            raise ValueError(
                f"slot must be in [0, {self.slots_per_cycle}), got {slot}"
            )
        return slot // self.window

    def __repr__(self) -> str:
        return (
            f"SimClock(cycles={self.num_cycles}, "
            f"slots_per_cycle={self.slots_per_cycle}, window={self.window})"
        )
