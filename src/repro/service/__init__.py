"""The serving layer: a long-running profit-maximizing broker.

Turns the repo's one-shot solvers into a system: rolling billing cycles on
a simulated clock, streaming bid ingestion with bounded admission queues,
exact incremental-MILP batch decisions accelerated by a bounded decision
cache and a solver worker pool, and per-batch telemetry with JSON dumps.
See :mod:`repro.service.broker` for the architecture overview.
"""

from repro.service.broker import (
    Broker,
    BrokerConfig,
    BrokerReport,
    CycleResult,
    run_cycle,
)
from repro.service.cache import DecisionCache
from repro.service.clock import CycleClock, SimClock, Tick
from repro.service.ingest import (
    AdmissionQueue,
    ArrivalSource,
    GeneratorSource,
    PushSource,
    TraceSource,
)
from repro.service.pool import SolverPool, default_workers
from repro.service.telemetry import (
    BatchRecord,
    LatencyHistogram,
    TelemetryCollector,
)

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerReport",
    "CycleResult",
    "run_cycle",
    "DecisionCache",
    "CycleClock",
    "SimClock",
    "Tick",
    "AdmissionQueue",
    "ArrivalSource",
    "GeneratorSource",
    "PushSource",
    "TraceSource",
    "SolverPool",
    "default_workers",
    "BatchRecord",
    "LatencyHistogram",
    "TelemetryCollector",
]
