"""Service telemetry: per-batch counters, latency percentiles, JSON dumps.

Every admission batch the broker decides produces one :class:`BatchRecord`
(accepted/declined/shed counts, revenue, incremental bandwidth cost,
solver wall-time, cache hit).  :class:`TelemetryCollector` aggregates the
records of a whole run into the summary every perf-oriented PR needs as a
baseline: sustained decisions/sec, p50/p95/max decision latency, cache hit
rate, and the profit ledger — and serializes it to JSON so runs can be
diffed across commits.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

import math

import numpy as np

__all__ = ["BatchRecord", "LatencyHistogram", "TelemetryCollector"]


class LatencyHistogram:
    """A log-bucketed latency histogram with O(1) recording.

    Buckets are spaced geometrically (``growth`` per bucket, default ~9%)
    between ``min_seconds`` and ``max_seconds``, so the relative
    quantile error is bounded by one bucket width no matter how many
    samples land — the structure every latency-reporting path (the
    gateway's admission loop, the load generator's client-side clock)
    shares instead of keeping per-sample arrays for millions of bids.

    ``percentile`` answers from cumulative bucket counts using the bucket
    upper edge (a conservative read).  Histograms with identical bucket
    geometry can be :meth:`merge`\\ d, and the dict round-trip
    (:meth:`to_dict` / :meth:`from_dict`) is what benchmark artifacts
    embed.
    """

    def __init__(
        self,
        *,
        min_seconds: float = 1e-6,
        max_seconds: float = 300.0,
        growth: float = 1.09,
    ) -> None:
        if not (0 < min_seconds < max_seconds):
            raise ValueError(
                f"need 0 < min_seconds < max_seconds, got "
                f"{min_seconds!r}, {max_seconds!r}"
            )
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth!r}")
        self.min_seconds = min_seconds
        self.max_seconds = max_seconds
        self.growth = growth
        self._log_min = math.log(min_seconds)
        self._log_growth = math.log(growth)
        num_buckets = (
            int(math.ceil((math.log(max_seconds) - self._log_min) / self._log_growth))
            + 1
        )
        #: counts[0] is the underflow bucket (< min_seconds); the last
        #: bucket absorbs overflow (>= max_seconds).
        self.counts = np.zeros(num_buckets + 1, dtype=np.int64)
        self.total = 0
        self.sum_seconds = 0.0
        self.max_observed = 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds < self.min_seconds:
            return 0
        index = int((math.log(seconds) - self._log_min) / self._log_growth) + 1
        return min(index, len(self.counts) - 1)

    def bucket_upper(self, index: int) -> float:
        """The upper edge (seconds) of bucket ``index``."""
        if index <= 0:
            return self.min_seconds
        return min(self.min_seconds * self.growth**index, self.max_seconds)

    def record(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"latency must be >= 0, got {seconds!r}")
        self.counts[self._bucket(seconds)] += 1
        self.total += 1
        self.sum_seconds += seconds
        if seconds > self.max_observed:
            self.max_observed = seconds

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (seconds), read from bucket edges."""
        if not (0 <= q <= 100):
            raise ValueError(f"q must be in [0, 100], got {q!r}")
        if self.total == 0:
            return 0.0
        target = math.ceil(self.total * q / 100.0)
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, max(target, 1)))
        return min(self.bucket_upper(index), self.max_observed)

    @property
    def mean(self) -> float:
        return self.sum_seconds / self.total if self.total else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same geometry only)."""
        if (
            other.min_seconds != self.min_seconds
            or other.max_seconds != self.max_seconds
            or other.growth != self.growth
        ):
            raise ValueError("cannot merge histograms with different buckets")
        self.counts += other.counts
        self.total += other.total
        self.sum_seconds += other.sum_seconds
        self.max_observed = max(self.max_observed, other.max_observed)

    def summary(self) -> dict[str, float]:
        """The standard latency block: p50/p99/p999 in milliseconds."""
        return {
            "samples": self.total,
            "mean_ms": self.mean * 1e3,
            "p50_ms": self.percentile(50) * 1e3,
            "p99_ms": self.percentile(99) * 1e3,
            "p999_ms": self.percentile(99.9) * 1e3,
            "max_ms": self.max_observed * 1e3,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "min_seconds": self.min_seconds,
            "max_seconds": self.max_seconds,
            "growth": self.growth,
            "counts": self.counts.tolist(),
            "total": self.total,
            "sum_seconds": self.sum_seconds,
            "max_observed": self.max_observed,
        }

    @classmethod
    def merged(
        cls, histograms: "list[LatencyHistogram]", **kwargs
    ) -> "LatencyHistogram":
        """One histogram folding every input (all same geometry).

        The aggregation convenience shared by the multi-connection load
        generator and the sharded broker's per-shard latency roll-up:
        ``merged([])`` is an empty histogram with the given geometry.
        """
        result = cls(**kwargs)
        for histogram in histograms:
            result.merge(histogram)
        return result

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencyHistogram":
        hist = cls(
            min_seconds=data["min_seconds"],
            max_seconds=data["max_seconds"],
            growth=data["growth"],
        )
        counts = np.asarray(data["counts"], dtype=np.int64)
        if counts.shape != hist.counts.shape:
            raise ValueError("histogram counts do not match bucket geometry")
        hist.counts = counts
        hist.total = int(data["total"])
        hist.sum_seconds = float(data["sum_seconds"])
        hist.max_observed = float(data["max_observed"])
        return hist

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(samples={self.total}, "
            f"p50={self.percentile(50) * 1e3:.3f}ms, "
            f"p99={self.percentile(99) * 1e3:.3f}ms)"
        )


@dataclass(frozen=True)
class BatchRecord:
    """Counters of one decided admission batch.

    ``timed_out`` marks a batch whose exact solve hit its time limit —
    under the degradation ladder the batch is still *decided* (by a lower
    rung) rather than declined wholesale.  ``suboptimal`` marks a batch
    decided without an optimality certificate (a limit-hit feasible
    incumbent, or any degraded rung).  ``rung`` records which ladder rung
    produced the decision (see :data:`repro.resilience.ladder.RUNGS`);
    ``"exact"`` is also the value for pre-ladder records, ``"cache"``
    for decision-cache hits and ``"shed"`` for shed-only records, so old
    WALs replay with the correct default.  ``screened`` marks an exact
    decision answered by the LP relaxation bound alone (``lp_screen`` —
    certified-optimal, no integer solve dispatched); it defaults off so
    pre-screening WALs replay unchanged.
    """

    cycle: int
    window_start: int
    size: int
    accepted: int
    declined: int
    shed: int
    revenue: float
    incremental_cost: float
    solver_seconds: float
    cache_hit: bool
    timed_out: bool = False
    suboptimal: bool = False
    rung: str = "exact"
    screened: bool = False


@dataclass
class TelemetryCollector:
    """Accumulates batch records and per-cycle ledgers into one summary."""

    batches: list[BatchRecord] = field(default_factory=list)
    _cycle_profit: dict[int, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Durability counters, set by the broker when a WAL is configured:
    #: batches replayed from snapshot+journal instead of re-solved, the
    #: journal's size after the run, time spent publishing snapshots, and
    #: how often the solver pool replaced a dead worker.
    recovered_batches: int = 0
    wal_bytes: int = 0
    snapshot_seconds: float = 0.0
    worker_restarts: int = 0
    #: Resilience counters (see :mod:`repro.resilience`): seconds spent
    #: backing off between pool-executor restarts, and the circuit
    #: breaker's lifecycle counts.
    backoff_seconds: float = 0.0
    breaker_opens: int = 0
    breaker_failures: int = 0
    breaker_probes: int = 0
    breaker_short_circuits: int = 0
    #: Sharded-serving counters (see :mod:`repro.shard`): per-shard
    #: sections keyed by shard id, plus the run totals of the bandwidth
    #: ledger's dual-price iterations and reconciliation evictions.
    shards: dict[int, dict[str, Any]] = field(default_factory=dict)
    ledger_price_iterations: int = 0
    reconciliation_evictions: int = 0
    #: Worker processes the per-round shard solves ran on (1 = serial).
    shard_concurrency: int = 1
    #: Warm-start counters (see :mod:`repro.lp.warmstart`): solves the
    #: resolve sessions answered without dispatching the backend, summed
    #: across whatever sessions the run wired in (shard price loops, the
    #: decomposed solver).  ``screened_batches`` is derived from the batch
    #: records; this one is set by the component that owns the sessions.
    warm_start_hits: int = 0

    def record_batch(self, record: BatchRecord) -> None:
        self.batches.append(record)

    def record_shard(self, shard_id: int, counters: dict[str, Any]) -> None:
        """Book (or accumulate into) one shard's counter section.

        Numeric values accumulate across calls so per-cycle shard ledgers
        fold into run totals; non-numeric values overwrite.
        """
        section = self.shards.setdefault(int(shard_id), {})
        for key, value in counters.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                section[key] = value
            else:
                section[key] = section.get(key, 0) + value

    def record_cycle(self, cycle: int, profit: float) -> None:
        """Book one finished cycle's final profit.

        ``profit`` is the *schedule-level* profit (peak-based charging over
        the whole cycle), which the per-batch incremental costs must sum to
        — the consistency the broker tests assert.  ``wall_seconds`` is set
        by the broker to the run's *elapsed* time (not the per-cycle sum),
        so ``decisions_per_sec`` reflects real sustained throughput and a
        worker pool's speedup is visible in it.
        """
        self._cycle_profit[cycle] = profit

    # ------------------------------------------------------------- aggregates

    @property
    def num_decisions(self) -> int:
        """Bids decided by a solver or cache (shed bids never reach one)."""
        return sum(record.size for record in self.batches)

    @property
    def solver_seconds(self) -> float:
        return sum(record.solver_seconds for record in self.batches)

    def rung_counts(self) -> dict[str, int]:
        """Batches decided per ladder rung (see :mod:`repro.resilience`)."""
        counts: dict[str, int] = {}
        for record in self.batches:
            counts[record.rung] = counts.get(record.rung, 0) + 1
        return counts

    def latency_percentile(self, q: float) -> float:
        """The ``q``-th percentile of per-batch decision latency (seconds)."""
        if not self.batches:
            return 0.0
        times = np.array([record.solver_seconds for record in self.batches])
        return float(np.percentile(times, q))

    def latency_histogram(self, **kwargs) -> LatencyHistogram:
        """The per-batch decision latencies as a :class:`LatencyHistogram`.

        The log-bucketed form the gateway and load generator share — exact
        per-sample percentiles stay available through
        :meth:`latency_percentile` for the batch-count regime the broker
        runs in.
        """
        hist = LatencyHistogram(**kwargs)
        for record in self.batches:
            hist.record(record.solver_seconds)
        return hist

    def summary(self) -> dict[str, Any]:
        """The run-level JSON-compatible summary."""
        accepted = sum(r.accepted for r in self.batches)
        declined = sum(r.declined for r in self.batches)
        shed = sum(r.shed for r in self.batches)
        hits = sum(1 for r in self.batches if r.cache_hit)
        solved = len(self.batches) - hits
        decisions = self.num_decisions
        wall = self.wall_seconds
        payload: dict[str, Any] = {
            "cycles": len(self._cycle_profit),
            "batches": len(self.batches),
            "decisions": decisions,
            "accepted": accepted,
            "declined": declined,
            "shed": shed,
            "revenue": sum(r.revenue for r in self.batches),
            "incremental_cost": sum(r.incremental_cost for r in self.batches),
            "profit": sum(self._cycle_profit.values()),
            "profit_per_cycle": [
                self._cycle_profit[c] for c in sorted(self._cycle_profit)
            ],
            "timed_out_batches": sum(1 for r in self.batches if r.timed_out),
            "suboptimal_batches": sum(1 for r in self.batches if r.suboptimal),
            "screened_batches": sum(1 for r in self.batches if r.screened),
            "warm_start_hits": self.warm_start_hits,
            "rung_counts": self.rung_counts(),
            "cache_hits": hits,
            "cache_misses": solved,
            "cache_hit_rate": hits / len(self.batches) if self.batches else 0.0,
            "solver_seconds": self.solver_seconds,
            "wall_seconds": wall,
            "decisions_per_sec": decisions / wall if wall > 0 else 0.0,
            "latency_p50_ms": self.latency_percentile(50) * 1e3,
            "latency_p95_ms": self.latency_percentile(95) * 1e3,
            "latency_p99_ms": self.latency_percentile(99) * 1e3,
            "latency_max_ms": self.latency_percentile(100) * 1e3,
            "recovered_batches": self.recovered_batches,
            "wal_bytes": self.wal_bytes,
            "snapshot_seconds": self.snapshot_seconds,
            "worker_restarts": self.worker_restarts,
            "backoff_seconds": self.backoff_seconds,
            "breaker_opens": self.breaker_opens,
            "breaker_failures": self.breaker_failures,
            "breaker_probes": self.breaker_probes,
            "breaker_short_circuits": self.breaker_short_circuits,
            "num_shards": len(self.shards),
            "ledger_price_iterations": self.ledger_price_iterations,
            "reconciliation_evictions": self.reconciliation_evictions,
            "shard_concurrency": self.shard_concurrency,
        }
        if self.shards:
            payload["shards"] = {
                str(shard_id): dict(self.shards[shard_id])
                for shard_id in sorted(self.shards)
            }
        return payload

    def dump_json(self, path: str | Path) -> None:
        """Write the summary plus every batch record to ``path``.

        Crash-safe: the payload is written to a temporary file in the
        target directory and ``os.replace``d into place, so an
        interrupted dump leaves either the previous file or the new one —
        never truncated JSON.
        """
        path = Path(path)
        payload = {
            "summary": self.summary(),
            "batches": [asdict(record) for record in self.batches],
        }
        if self.shards:
            payload["shards"] = {
                str(shard_id): dict(self.shards[shard_id])
                for shard_id in sorted(self.shards)
            }
        parent = path.parent if str(path.parent) else Path(".")
        fd, tmp_name = tempfile.mkstemp(
            dir=parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:
        s = self.summary()
        return (
            f"TelemetryCollector(decisions={s['decisions']}, "
            f"profit={s['profit']:.3f}, hit_rate={s['cache_hit_rate']:.0%})"
        )
