"""The solver worker pool: parallel cycle decisions across processes.

Billing cycles are independent — each starts from empty committed state
and its own arrival stream — so a multi-cycle broker run parallelizes
perfectly across a :class:`concurrent.futures.ProcessPoolExecutor`.  The
same machinery shards any list of independent decision payloads (e.g.
disjoint topology shards), which is why the pool is payload-agnostic: it
maps a picklable module-level function over payloads and returns results
in submission order.

Two serving-specific behaviors are layered on top of the bare executor:

* **per-process decision cache** — each worker process owns a
  :class:`~repro.service.cache.DecisionCache` (installed by the pool
  initializer and reached via :func:`worker_cache`), so recurring
  sub-instances hit even across tasks executed by the same worker;
* **cooperative cancellation** — a shared :class:`multiprocessing.Event`
  is polled by workers between solves (via :func:`check_cancelled`, wired
  down to :func:`repro.lp.solvers.solve_compiled`); when any task fails,
  the pool sets the event and cancels queued futures so a broken run
  drains quickly instead of grinding through doomed MILPs.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable

from repro.service.cache import DecisionCache

__all__ = ["SolverPool", "worker_cache", "check_cancelled", "default_workers"]

# Per-worker-process state, installed by _initialize_worker.
_WORKER_CACHE: DecisionCache | None = None
_CANCEL_EVENT = None


def _initialize_worker(cancel_event, cache_size: int) -> None:
    global _WORKER_CACHE, _CANCEL_EVENT
    _CANCEL_EVENT = cancel_event
    _WORKER_CACHE = DecisionCache(cache_size) if cache_size > 0 else None


def worker_cache() -> DecisionCache | None:
    """This worker process's decision cache (``None`` outside a pool)."""
    return _WORKER_CACHE


def check_cancelled() -> bool:
    """Whether the owning pool has requested cooperative cancellation."""
    return _CANCEL_EVENT is not None and _CANCEL_EVENT.is_set()


def default_workers() -> int:
    """A sensible worker count: the machine's cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


class SolverPool:
    """A process pool for independent solve tasks, with ordered results.

    ``workers`` fixes the process count; ``cache_size`` sizes each worker's
    private decision cache (0 disables caching).  Use as a context manager
    or call :meth:`shutdown` explicitly.
    """

    def __init__(self, workers: int, *, cache_size: int = 1024) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.workers = workers
        self.cache_size = cache_size
        self._cancel_event = multiprocessing.Event()
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_worker,
            initargs=(self._cancel_event, cache_size),
        )

    def map(self, fn: Callable[[Any], Any], payloads: list[Any]) -> list[Any]:
        """Run ``fn(payload)`` for every payload; results in payload order.

        On the first task failure the pool cancels everything still queued,
        signals running workers to stop cooperatively, and re-raises the
        task's exception.
        """
        futures = [self._executor.submit(fn, payload) for payload in payloads]
        results = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            self.cancel()
            raise
        return results

    def cancel(self) -> None:
        """Signal cooperative cancellation and drop queued (unstarted) tasks."""
        self._cancel_event.set()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.cancel()
        self.shutdown()

    def __repr__(self) -> str:
        return f"SolverPool(workers={self.workers}, cache_size={self.cache_size})"
