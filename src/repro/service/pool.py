"""The solver worker pool: parallel cycle decisions across processes.

Billing cycles are independent — each starts from empty committed state
and its own arrival stream — so a multi-cycle broker run parallelizes
perfectly across a :class:`concurrent.futures.ProcessPoolExecutor`.  The
same machinery shards any list of independent decision payloads (e.g.
disjoint topology shards), which is why the pool is payload-agnostic: it
maps a picklable module-level function over payloads and returns results
in submission order.

Two serving-specific behaviors are layered on top of the bare executor:

* **per-process decision cache** — each worker process owns a
  :class:`~repro.service.cache.DecisionCache` (installed by the pool
  initializer and reached via :func:`worker_cache`), so recurring
  sub-instances hit even across tasks executed by the same worker;
* **cooperative cancellation** — a shared :class:`multiprocessing.Event`
  is polled by workers between solves (via :func:`check_cancelled`, wired
  down to :func:`repro.lp.solvers.solve_compiled`); when any task fails,
  the pool sets the event and cancels queued futures so a broken run
  drains quickly instead of grinding through doomed MILPs;
* **worker-death recovery** — an abruptly dead worker (OOM kill, segfault,
  the fault harness's ``os._exit``) breaks a bare
  ``ProcessPoolExecutor`` permanently.  The pool instead rebuilds the
  executor and resubmits every task that had no result yet, up to
  ``max_restarts`` times; tasks must therefore be idempotent, which
  broker cycles are (deterministic, starting from empty state).
  Consecutive rebuilds are paced by an
  :class:`~repro.resilience.breaker.ExponentialBackoff` with
  deterministic seeded jitter (a crash loop must not hot-spin the fork
  path); the accumulated sleep is exposed as :attr:`backoff_seconds`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.exceptions import SolverError
from repro.resilience.breaker import ExponentialBackoff

from repro.service.cache import DecisionCache

__all__ = ["SolverPool", "worker_cache", "check_cancelled", "default_workers"]

# Per-worker-process state, installed by _initialize_worker.
_WORKER_CACHE: DecisionCache | None = None
_CANCEL_EVENT = None


def _initialize_worker(cancel_event, cache_size: int) -> None:
    global _WORKER_CACHE, _CANCEL_EVENT
    _CANCEL_EVENT = cancel_event
    _WORKER_CACHE = DecisionCache(cache_size) if cache_size > 0 else None


def worker_cache() -> DecisionCache | None:
    """This worker process's decision cache (``None`` outside a pool)."""
    return _WORKER_CACHE


def check_cancelled() -> bool:
    """Whether the owning pool has requested cooperative cancellation."""
    return _CANCEL_EVENT is not None and _CANCEL_EVENT.is_set()


def default_workers() -> int:
    """A sensible worker count: the machine's cores, capped at 8."""
    return min(os.cpu_count() or 1, 8)


class SolverPool:
    """A process pool for independent solve tasks, with ordered results.

    ``workers`` fixes the process count; ``cache_size`` sizes each worker's
    private decision cache (0 disables caching); ``max_restarts`` bounds
    how many times a dead worker may break (and rebuild) the executor
    before the run is abandoned.  ``backoff`` paces those rebuilds
    (defaults to a seeded :class:`~repro.resilience.breaker.ExponentialBackoff`;
    pass your own to control seed/cap, and read :attr:`backoff_seconds`
    for the total sleep).  Use as a context manager or call
    :meth:`shutdown` explicitly.
    """

    def __init__(
        self,
        workers: int,
        *,
        cache_size: int = 1024,
        max_restarts: int = 3,
        backoff: ExponentialBackoff | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.workers = workers
        self.cache_size = cache_size
        self.max_restarts = max_restarts
        self.worker_restarts = 0
        self.backoff = backoff if backoff is not None else ExponentialBackoff()
        self._sleep = sleep
        self._cancel_event = multiprocessing.Event()
        self._executor = self._make_executor()

    @property
    def backoff_seconds(self) -> float:
        """Total seconds slept between executor restarts (telemetry)."""
        return self.backoff.total_seconds

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_worker,
            initargs=(self._cancel_event, self.cache_size),
        )

    def _restart_executor(self) -> None:
        self.worker_restarts += 1
        if self.worker_restarts > self.max_restarts:
            raise SolverError(
                f"worker pool broke {self.worker_restarts} times "
                f"(max_restarts={self.max_restarts}); giving up"
            )
        self._sleep(self.backoff.next_delay())
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._make_executor()

    def map(self, fn: Callable[[Any], Any], payloads: list[Any]) -> list[Any]:
        """Run ``fn(payload)`` for every payload; results in payload order.

        On the first task failure the pool cancels everything still queued,
        signals running workers to stop cooperatively, and re-raises the
        task's exception.  A *dead worker* (not a task exception) is
        handled by restarting the executor — see :meth:`imap`.
        """
        return list(self.imap(fn, payloads))

    def imap(
        self, fn: Callable[[Any], Any], payloads: list[Any]
    ) -> Iterator[Any]:
        """Yield results in payload order, as soon as each is available.

        Results stream in submission order so a consumer can act on early
        payloads (the broker journals cycle commits) while later ones are
        still solving.  When a worker process dies, every task without a
        result is resubmitted to a fresh executor; tasks that already
        completed are never re-executed, and already-yielded results are
        unaffected.
        """
        pending = list(enumerate(payloads))
        done: dict[int, Any] = {}
        next_index = 0
        while pending:
            futures = [
                (index, payload, self._executor.submit(fn, payload))
                for index, payload in pending
            ]
            retry = []
            broken = False
            for index, payload, future in futures:
                try:
                    done[index] = future.result()
                except BrokenProcessPool:
                    broken = True
                    retry.append((index, payload))
                except BaseException:
                    self.cancel()
                    raise
                else:
                    while next_index in done:
                        yield done.pop(next_index)
                        next_index += 1
            if broken:
                self._restart_executor()
            else:
                self.backoff.reset()
            pending = retry
        while next_index in done:
            yield done.pop(next_index)
            next_index += 1

    def submit(self, fn: Callable[[Any], Any], payload: Any):
        """Submit one task; returns the raw :class:`~concurrent.futures.Future`.

        The escape hatch for callers that need *per-task* deadlines —
        the sharded broker's hedged solves call
        ``future.result(timeout=...)`` per shard so one hung shard can be
        degraded alone while its siblings' results are still consumed.
        Unlike :meth:`imap`, a broken pool is the caller's to handle
        (call :meth:`restart` and resubmit, or fall back locally).
        """
        return self._executor.submit(fn, payload)

    def restart(self) -> None:
        """Rebuild the executor after a broken pool (backoff-paced).

        Public form of the recovery :meth:`imap` performs internally, for
        :meth:`submit` callers that own their retry logic.
        """
        self._restart_executor()

    def cancel(self) -> None:
        """Signal cooperative cancellation and drop queued (unstarted) tasks."""
        self._cancel_event.set()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.cancel()
        self.shutdown()

    def __repr__(self) -> str:
        return f"SolverPool(workers={self.workers}, cache_size={self.cache_size})"
