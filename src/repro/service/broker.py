"""The profit-maximizing broker: a long-running admission-serving loop.

This is the serving layer the paper's operational story implies: a
provider continuously receives first-price sealed-bid transfer requests
and must accept (with a path) or decline each one before its window
starts.  The broker runs rolling billing cycles on a simulated clock
(:class:`~repro.service.clock.SimClock`), ingests each cycle's bid stream
(:mod:`repro.service.ingest`), batches arrivals into admission windows,
and decides every batch *exactly* with the incremental MILP of
:func:`repro.core.online.build_incremental_spm` — the same integer-unit
charging the offline solutions use, so broker profit is directly
comparable to (and upper-bounded by) offline OPT on the same instance.

Scaling levers, all orthogonal to the decision logic:

* a bounded :class:`~repro.service.cache.DecisionCache` short-circuits
  repeated (residual-state, batch) sub-instances — periodic traffic makes
  whole cycles replay from cache;
* with ``workers >= 2`` independent billing cycles are dispatched to a
  :class:`~repro.service.pool.SolverPool` of processes, each with its own
  per-process cache and cooperative cancellation;
* ``max_batch`` splits oversized admission windows into bounded MILPs and
  ``queue_capacity`` sheds bids beyond what the broker will buffer.

Every decision feeds :mod:`repro.service.telemetry`, and
:meth:`BrokerReport.dump_telemetry` writes the JSON baseline (decisions
per second, latency percentiles, cache hit rate, profit ledger) that
future performance work measures against.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.online import commit_decision, solve_batch
from repro.core.schedule import Schedule
from repro.exceptions import SolverTimeoutError
from repro.lp.result import SolveStatus
from repro.net.topologies import abilene, b4, sub_b4
from repro.net.topology import Topology
from repro.resilience import CircuitBreaker, CycleBudget, DegradationLadder
from repro.service import pool as pool_mod
from repro.service.cache import DecisionCache
from repro.service.clock import SimClock
from repro.service.ingest import AdmissionQueue, ArrivalSource, GeneratorSource
from repro.service.pool import SolverPool
from repro.service.telemetry import BatchRecord, TelemetryCollector
from repro.state import (
    WAL_FORMAT,
    FaultPlan,
    Journal,
    SnapshotStore,
    batch_to_record,
    broker_snapshot_state,
    config_fingerprint,
    cycle_to_record,
    recover,
    snapshot_path,
)
from repro.state.journal import FSYNC_POLICIES
from repro.workload.generator import WorkloadConfig
from repro.workload.request import RequestSet
from repro.workload.value_models import FlatRateValueModel, ValueModel

__all__ = [
    "BrokerConfig",
    "CycleResult",
    "BrokerReport",
    "Broker",
    "run_cycle",
    "DEFAULT_TIME_LIMIT",
]

#: The single source of the per-solve time-limit default (seconds).
#: ``BrokerConfig.time_limit`` and the ``repro serve`` CLI both start
#: from this value; passing ``time_limit=None`` anywhere (including
#: :func:`run_cycle`) means *unlimited* — the solver runs to optimality.
DEFAULT_TIME_LIMIT = 60.0

#: Flat retail price per bandwidth unit per slot (see
#: :data:`repro.experiments.common.DEFAULT_UNIT_VALUE` for the rationale).
_DEFAULT_UNIT_VALUE = 1.8

_TOPOLOGIES = {"b4": b4, "sub-b4": sub_b4, "abilene": abilene}


def _make_topology(name: str | Topology) -> Topology:
    if isinstance(name, Topology):
        return name
    try:
        return _TOPOLOGIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown topology {name!r}; choose from {sorted(_TOPOLOGIES)}"
        ) from None


@dataclass
class BrokerConfig:
    """Everything that pins a broker run.

    ``slots_per_cycle`` is the billing-cycle length ``T`` (e.g. 12 monthly
    slots, or 288 five-minute slots over a day); ``window`` groups slots
    into admission windows; ``workers >= 2`` enables the process pool;
    ``cache_size=0`` disables the decision cache; ``queue_capacity`` and
    ``max_batch`` bound the admission queue and per-MILP batch size
    (``None`` = unbounded).  ``fast_path`` selects the array-native batch
    model build (default; decision-identical to the expression build,
    kept as the reference).  ``lp_screen`` enables the LP relaxation-bound
    screen for exact batch solves (:func:`repro.core.online.solve_batch`):
    hopeless batches are declined with a certificate instead of paying
    for an integer solve — decisions and profit are unchanged.

    Durability (see :mod:`repro.state`): setting ``wal_path`` makes the
    broker journal every admission decision and cycle commit to a
    write-ahead log (and publish an atomic snapshot every
    ``snapshot_every`` cycles), so a crashed run resumes bit-identically
    via ``Broker.run(resume=True)``.  ``fsync`` picks the durability/
    throughput trade-off: ``"never"``, ``"batch"`` (one fsync per cycle
    commit, the default) or ``"always"`` (one per record).

    ``time_limit`` caps each *individual* batch solve (seconds); its
    default is :data:`DEFAULT_TIME_LIMIT` and ``None`` means unlimited.
    Resilience (see :mod:`repro.resilience`): ``cycle_budget`` (seconds,
    ``None`` = off) arms a :class:`~repro.resilience.budget.CycleBudget`
    per cycle — batch solves then receive shrinking slices of the
    remaining budget (still clipped to ``time_limit``) and budget-blown
    batches degrade down the ladder instead of declining wholesale.
    ``breaker_failures`` (0 = off) arms a
    :class:`~repro.resilience.breaker.CircuitBreaker`: that many
    consecutive solver timeouts route batches straight to the greedy
    rung until a probe succeeds after ``breaker_reset`` seconds.
    """

    topology: str | Topology = "b4"
    num_cycles: int = 1
    slots_per_cycle: int = 12
    window: int = 1
    requests_per_cycle: int = 100
    seed: int = 2019
    k_paths: int = 3
    max_duration: int | None = 4
    value_model: ValueModel = field(
        default_factory=lambda: FlatRateValueModel(_DEFAULT_UNIT_VALUE)
    )
    time_limit: float | None = DEFAULT_TIME_LIMIT
    workers: int = 0
    cache_size: int = 1024
    queue_capacity: int | None = None
    max_batch: int | None = None
    fast_path: bool = True
    lp_screen: bool = False
    wal_path: str | Path | None = None
    snapshot_every: int = 1
    fsync: str = "batch"
    cycle_budget: float | None = None
    breaker_failures: int = 0
    breaker_reset: float = 5.0

    def __post_init__(self) -> None:
        if self.num_cycles < 1:
            raise ValueError(f"num_cycles must be >= 1, got {self.num_cycles}")
        if self.slots_per_cycle < 1:
            raise ValueError(
                f"slots_per_cycle must be >= 1, got {self.slots_per_cycle}"
            )
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.requests_per_cycle < 0:
            raise ValueError(
                f"requests_per_cycle must be >= 0, got {self.requests_per_cycle}"
            )
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {self.cache_size}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}"
            )
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.cycle_budget is not None and not self.cycle_budget > 0:
            raise ValueError(
                f"cycle_budget must be > 0 (or None), got {self.cycle_budget!r}"
            )
        if self.breaker_failures < 0:
            raise ValueError(
                f"breaker_failures must be >= 0, got {self.breaker_failures}"
            )
        if self.breaker_reset < 0:
            raise ValueError(
                f"breaker_reset must be >= 0, got {self.breaker_reset!r}"
            )

    def clock(self) -> SimClock:
        return SimClock(
            self.slots_per_cycle, window=self.window, num_cycles=self.num_cycles
        )


@dataclass
class CycleResult:
    """One billing cycle's ledger: counts, money, and the full assignment.

    ``accepted + declined + shed == num_requests``; ``revenue``/``cost``/
    ``profit`` use the same peak-based integer-unit charging as the offline
    solutions.  ``assignment`` maps every request id to its chosen path (or
    ``None``), so callers can rebuild the :class:`Schedule` locally — the
    worker pool ships this compact result instead of whole schedules.
    ``purchased`` is the cycle's final bandwidth purchase: charged integer
    units per (nonzero) edge index — the ledger the durability layer
    journals and the crash-equivalence tests compare exactly.
    """

    cycle: int
    num_requests: int
    accepted: int
    declined: int
    shed: int
    revenue: float
    cost: float
    profit: float
    wall_seconds: float
    batches: list[BatchRecord]
    assignment: dict[int, int | None]
    purchased: dict[int, float] = field(default_factory=dict)


def run_cycle(
    topology: Topology,
    requests: RequestSet,
    *,
    cycle_index: int = 0,
    window: int = 1,
    k_paths: int = 3,
    time_limit: float | None = None,
    cache: DecisionCache | None = None,
    queue_capacity: int | None = None,
    max_batch: int | None = None,
    check_cancelled=None,
    fast_path: bool = True,
    lp_screen: bool = False,
    on_batch=None,
    clock=None,
    instance: SPMInstance | None = None,
    dual_prices: np.ndarray | None = None,
    budget: CycleBudget | None = None,
    ladder: DegradationLadder | None = None,
) -> CycleResult:
    """Serve one billing cycle end to end; the broker's core loop.

    Deterministic given its inputs: batches form in arrival order, every
    decision is an exact MILP (or an exact cache replay), and the final
    accounting charges the ceiling of each edge's realized peak load.

    ``clock`` injects any :class:`~repro.service.clock.CycleClock`
    implementation for the window cadence (default: a fresh
    :class:`SimClock` over the cycle's slots — ``window`` is ignored when
    a clock is passed, since the clock owns the window structure).

    ``time_limit`` caps each batch solve in seconds; ``None`` means
    *unlimited* (the config-level default is
    :data:`DEFAULT_TIME_LIMIT` — see ``BrokerConfig.time_limit``).
    Degrades gracefully under ``time_limit`` pressure instead of crashing
    the serving loop: a limit-hit solve with a feasible incumbent keeps
    the incumbent (recorded ``suboptimal``); a limit-hit solve with no
    incumbent declines the whole batch (recorded ``timed_out``).  Only
    proven-optimal decisions enter the cache.

    Resilience: passing ``budget`` (restarted at cycle entry) or a
    prebuilt ``ladder`` (budget lifecycle owned by the caller — the
    sharded broker shares one budget across shard ladders) routes every
    batch through the :class:`~repro.resilience.ladder.DegradationLadder`
    instead: solves get shrinking budget slices, and a limit-hit or
    budget-starved batch is decided by a degraded rung (LP rounding,
    then greedy value-density) rather than declined.  Each record's
    ``rung`` says which rung answered.

    ``on_batch`` (when given) is invoked with each :class:`BatchRecord`
    the moment its decision is committed — the write-ahead hook the
    durability layer uses to journal decisions as they are made rather
    than at cycle end.

    ``instance`` (when given) must be the prebuilt
    :class:`SPMInstance` over exactly ``topology``/``requests`` — callers
    that need the instance afterwards (the sharded broker posts its loads
    to the bandwidth ledger) pass it in to avoid a second path
    enumeration.  ``dual_prices`` steers the *decisions* only: batch
    MILPs solve against ``u_e + dual_prices`` (a zero-copy
    :meth:`~SPMInstance.reprice` view) while every ledger figure —
    revenue, cost, profit, purchased units — stays on the true prices.
    Cache keys fold a digest of the duals, so decisions made under
    different prices never alias.
    """
    t0 = time.perf_counter()
    if ladder is None and budget is not None:
        budget.restart()
        ladder = DegradationLadder(
            budget=budget,
            time_limit=time_limit,
            fast_path=fast_path,
            lp_screen=lp_screen,
        )
    if instance is None:
        instance = SPMInstance.build(topology, requests, k_paths=k_paths)
    decision_instance = instance
    dual_digest = b""
    if dual_prices is not None:
        dual_prices = np.asarray(dual_prices, dtype=float)
        if np.any(dual_prices):
            decision_instance = instance.reprice(instance.prices + dual_prices)
            dual_digest = hashlib.blake2b(
                np.ascontiguousarray(dual_prices).tobytes(), digest_size=16
            ).digest()
    if clock is None:
        clock = SimClock(requests.num_slots, window=window)
    committed = np.zeros((instance.num_edges, instance.num_slots))
    charged = np.zeros(instance.num_edges)
    assignment: dict[int, int | None] = {}
    queue = AdmissionQueue(queue_capacity)
    batches: list[BatchRecord] = []
    prices = instance.prices

    by_start: dict[int, list] = {}
    for req in requests:
        by_start.setdefault(req.start, []).append(req)

    for tick in clock.windows(0):
        shed_before = queue.shed
        for slot in tick.slots:
            for req in by_start.get(slot, ()):
                if not queue.offer(req):
                    assignment[req.request_id] = None
        window_shed = queue.shed - shed_before

        drained_any = False
        while queue:
            batch = queue.drain(max_batch)
            batch_ids = [r.request_id for r in batch]
            solver_start = time.perf_counter()
            decision = None
            hit = False
            timed_out = False
            suboptimal = False
            screened = False
            rung = "cache"
            key = None
            if cache is not None:
                key = cache.make_key(instance, batch_ids, committed, charged)
                if dual_digest:
                    key = (key[0] + dual_digest, key[1])
                decision = cache.get(key)
                hit = decision is not None
            if decision is None and ladder is not None:
                outcome = ladder.decide(
                    decision_instance,
                    batch_ids,
                    committed,
                    charged,
                    check_cancelled=check_cancelled,
                )
                decision = list(outcome.choices)
                timed_out = outcome.timed_out
                suboptimal = outcome.suboptimal
                screened = outcome.screened
                rung = outcome.rung
                if cache is not None and outcome.cacheable:
                    cache.put(key, decision)
            elif decision is None:
                rung = "exact"
                try:
                    outcome = solve_batch(
                        decision_instance,
                        batch_ids,
                        committed,
                        charged,
                        time_limit=time_limit,
                        check_cancelled=check_cancelled,
                        fast_path=fast_path,
                        lp_screen=lp_screen,
                    )
                except SolverTimeoutError:
                    # No incumbent within the limit: decline the batch and
                    # keep serving — never crash the broker cycle.
                    decision = [None] * len(batch_ids)
                    timed_out = True
                else:
                    decision = list(outcome.choices)
                    suboptimal = outcome.suboptimal
                    screened = outcome.screened
                    if cache is not None and outcome.status is SolveStatus.OPTIMAL:
                        cache.put(key, decision)
            solver_seconds = time.perf_counter() - solver_start

            cost_before = float(prices @ charged)
            accepted = commit_decision(
                instance, batch_ids, decision, committed, charged
            )
            cost_after = float(prices @ charged)
            assignment.update(zip(batch_ids, decision))
            revenue = sum(
                instance.request(rid).value
                for rid, path in zip(batch_ids, decision)
                if path is not None
            )
            record = BatchRecord(
                cycle=cycle_index,
                window_start=tick.window_start,
                size=len(batch_ids),
                accepted=accepted,
                declined=len(batch_ids) - accepted,
                shed=0 if drained_any else window_shed,
                revenue=revenue,
                incremental_cost=cost_after - cost_before,
                solver_seconds=solver_seconds,
                cache_hit=hit,
                timed_out=timed_out,
                suboptimal=suboptimal,
                rung=rung,
                screened=screened,
            )
            batches.append(record)
            if on_batch is not None:
                on_batch(record)
            drained_any = True
        if window_shed and not drained_any:
            # Every arrival of the window was shed: record it anyway.
            record = BatchRecord(
                cycle=cycle_index,
                window_start=tick.window_start,
                size=0,
                accepted=0,
                declined=0,
                shed=window_shed,
                revenue=0.0,
                incremental_cost=0.0,
                solver_seconds=0.0,
                cache_hit=False,
                rung="shed",
            )
            batches.append(record)
            if on_batch is not None:
                on_batch(record)

    schedule = Schedule(instance, assignment)
    shed_total = queue.shed
    return CycleResult(
        cycle=cycle_index,
        num_requests=instance.num_requests,
        accepted=schedule.num_accepted,
        declined=instance.num_requests - schedule.num_accepted - shed_total,
        shed=shed_total,
        revenue=schedule.revenue,
        cost=schedule.cost,
        profit=schedule.profit,
        wall_seconds=time.perf_counter() - t0,
        batches=batches,
        assignment=dict(assignment),
        purchased={
            int(edge): float(units)
            for edge, units in enumerate(charged)
            if units
        },
    )


def _cycle_worker(payload: tuple) -> CycleResult:
    """Pool entry point: serve one cycle inside a worker process.

    Uses the worker's per-process decision cache and the pool's
    cooperative-cancellation flag (both installed by the pool initializer).
    A :class:`~repro.state.FaultPlan` riding on the payload is consulted
    at the cancellation poll, so an injected worker death or solver hang
    lands mid-cycle between solves — the crash points the pool's restart
    path and the cycle budget must survive.  ``cycle_budget`` (seconds,
    or ``None``) arms a fresh in-worker :class:`CycleBudget` so pooled
    cycles are deadline-guaranteed too.
    """
    (
        topology,
        requests,
        cycle_index,
        window,
        k_paths,
        time_limit,
        queue_capacity,
        max_batch,
        fast_path,
        lp_screen,
        faults,
        cycle_budget,
    ) = payload
    check_cancelled = pool_mod.check_cancelled
    if faults is not None:
        def check_cancelled():
            faults.maybe_kill_worker(cycle_index)
            faults.maybe_hang_solver()
            faults.maybe_slow_worker()
            return pool_mod.check_cancelled()
    return run_cycle(
        topology,
        requests,
        cycle_index=cycle_index,
        window=window,
        k_paths=k_paths,
        time_limit=time_limit,
        cache=pool_mod.worker_cache(),
        queue_capacity=queue_capacity,
        max_batch=max_batch,
        check_cancelled=check_cancelled,
        fast_path=fast_path,
        lp_screen=lp_screen,
        budget=(
            CycleBudget(cycle_budget) if cycle_budget is not None else None
        ),
    )


class _StateWriter:
    """The broker's write-through durability seam (one per run).

    Serial runs journal each decision live (``on_batch`` is handed to
    :func:`run_cycle`); pooled runs journal a cycle's records when its
    result is received in cycle order, since workers cannot share the
    journal handle.  Either way the cycle commit record plus its
    durability barrier is what acknowledges a cycle — batch records
    without a commit are re-run on recovery, never trusted.
    """

    def __init__(
        self,
        journal: Journal,
        snapshots: SnapshotStore,
        fingerprint: str,
        config: "BrokerConfig",
        faults: FaultPlan | None,
        completed: list[CycleResult],
    ) -> None:
        self.journal = journal
        self.snapshots = snapshots
        self.fingerprint = fingerprint
        self.config = config
        self.faults = faults
        self.completed = completed
        self.snapshot_seconds = 0.0
        self._live_batches = 0

    def on_batch(self, record: BatchRecord) -> None:
        self.journal.append(batch_to_record(record))
        self._live_batches += 1
        if self.faults is not None:
            self.faults.after_batch_append()

    def commit_cycle(self, result: CycleResult) -> None:
        for record in result.batches[self._live_batches:]:
            self.on_batch(record)
        self._live_batches = 0
        self.journal.append(cycle_to_record(result))
        self.journal.commit()
        self.completed.append(result)
        if self.faults is not None:
            self.faults.after_cycle_commit()
        if (result.cycle + 1) % self.config.snapshot_every == 0:
            state = broker_snapshot_state(
                self.fingerprint, self.config, self.completed
            )
            self.snapshot_seconds += self.snapshots.publish(state)


@dataclass
class BrokerReport:
    """A finished broker run: per-cycle ledgers plus aggregated telemetry."""

    config: BrokerConfig
    cycles: list[CycleResult]
    telemetry: TelemetryCollector

    @property
    def profit(self) -> float:
        return sum(c.profit for c in self.cycles)

    @property
    def revenue(self) -> float:
        return sum(c.revenue for c in self.cycles)

    @property
    def cost(self) -> float:
        return sum(c.cost for c in self.cycles)

    @property
    def num_accepted(self) -> int:
        return sum(c.accepted for c in self.cycles)

    def summary(self) -> dict:
        return self.telemetry.summary()

    def decision_log(self) -> list[tuple[int, int, int | None]]:
        """Every decision as ``(cycle, request_id, path_or_None)``.

        Canonically ordered, so two runs are comparable with ``==`` — the
        seed-determinism tests and the serial/pool equivalence tests both
        hinge on this.
        """
        return [
            (result.cycle, request_id, path)
            for result in self.cycles
            for request_id, path in sorted(result.assignment.items())
        ]

    def dump_telemetry(self, path) -> None:
        self.telemetry.dump_json(path)


class Broker:
    """Runs the serving loop over an arrival source.

    With the default source, bids come from the paper's synthetic workload
    model, cycle-varied but fully seed-deterministic.  Pass a
    :class:`~repro.service.ingest.TraceSource` to replay recorded traffic.
    """

    def __init__(
        self,
        config: BrokerConfig | None = None,
        source: ArrivalSource | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.config = config if config is not None else BrokerConfig()
        self.faults = faults
        self._stop_requested = False
        self.topology = _make_topology(self.config.topology)
        if source is None:
            source = GeneratorSource(
                self.topology,
                WorkloadConfig(
                    num_requests=self.config.requests_per_cycle,
                    num_slots=self.config.slots_per_cycle,
                    max_duration=self.config.max_duration,
                    value_model=self.config.value_model,
                ),
                seed=self.config.seed,
            )
        self.source = source

    def request_stop(self) -> None:
        """Ask a running broker to stop at the next cycle boundary.

        Signal-safe (sets a flag; no locks, no I/O), so the ``serve`` CLI
        installs it as its SIGINT/SIGTERM handler: the in-flight cycle is
        finished, journaled, committed and snapshotted as usual, then
        :meth:`run` returns the partial report — a drained exit rather
        than a torn one.  Resuming later with ``resume=True`` picks up
        exactly where the stop landed.
        """
        self._stop_requested = True

    @property
    def stop_requested(self) -> bool:
        return self._stop_requested

    def run(self, *, resume: bool = False) -> BrokerReport:
        """Serve every configured cycle and return the full report.

        With ``config.wal_path`` set, every decision is journaled and
        committed cycles are snapshotted as the run progresses; with
        ``resume=True`` the broker first recovers the committed-cycle
        prefix from the journal/snapshot and re-serves only what never
        committed — the resulting report is bit-identical to an
        uninterrupted run (the crash-equivalence invariant of
        :mod:`repro.state`).
        """
        config = self.config
        if resume and config.wal_path is None:
            raise ValueError("resume=True requires BrokerConfig.wal_path")
        t0 = time.perf_counter()
        self._worker_restarts = 0
        self._backoff_seconds = 0.0
        self._breaker = None

        recovered: list[CycleResult] = []
        recovered_batches = 0
        journal = None
        writer = None
        wal_bytes = 0
        if config.wal_path is not None:
            wal_path = Path(config.wal_path)
            fingerprint = config_fingerprint(config)
            if resume:
                state = recover(wal_path, fingerprint=fingerprint)
                recovered = state.cycles
                recovered_batches = state.recovered_batches
            journal = Journal.open(
                wal_path,
                fsync=config.fsync,
                fsync_hook=(
                    self.faults.fsync_hook() if self.faults is not None else None
                ),
            )
            journal.append(
                {
                    "type": "open",
                    "format": WAL_FORMAT,
                    "fingerprint": fingerprint,
                    "next_cycle": len(recovered),
                }
            )
            journal.commit()
            writer = _StateWriter(
                journal,
                SnapshotStore(snapshot_path(wal_path)),
                fingerprint,
                config,
                self.faults,
                completed=list(recovered),
            )

        try:
            start = len(recovered)
            if start >= config.num_cycles:
                fresh: list[CycleResult] = []
            elif config.workers >= 2 and config.num_cycles - start > 1:
                fresh = self._run_pooled(start, writer)
            else:
                fresh = self._run_serial(start, writer)
        finally:
            if journal is not None:
                wal_bytes = journal.size_bytes
                journal.close()
        results = recovered + fresh
        elapsed = time.perf_counter() - t0

        telemetry = TelemetryCollector()
        for result in results:
            for record in result.batches:
                telemetry.record_batch(record)
            telemetry.record_cycle(result.cycle, result.profit)
        telemetry.wall_seconds = elapsed
        telemetry.recovered_batches = recovered_batches
        telemetry.wal_bytes = wal_bytes
        telemetry.snapshot_seconds = (
            writer.snapshot_seconds if writer is not None else 0.0
        )
        telemetry.worker_restarts = self._worker_restarts
        telemetry.backoff_seconds = self._backoff_seconds
        if self._breaker is not None:
            telemetry.breaker_opens = self._breaker.opens
            telemetry.breaker_failures = self._breaker.failures
            telemetry.breaker_probes = self._breaker.probes
            telemetry.breaker_short_circuits = self._breaker.short_circuits
        return BrokerReport(config=config, cycles=results, telemetry=telemetry)

    def _run_serial(
        self, start: int, writer: _StateWriter | None
    ) -> list[CycleResult]:
        config = self.config
        cache = DecisionCache(config.cache_size) if config.cache_size > 0 else None
        budget = (
            CycleBudget(config.cycle_budget)
            if config.cycle_budget is not None
            else None
        )
        breaker = (
            CircuitBreaker(
                failure_threshold=config.breaker_failures,
                reset_seconds=config.breaker_reset,
            )
            if config.breaker_failures > 0
            else None
        )
        ladder = None
        if budget is not None or breaker is not None:
            ladder = DegradationLadder(
                budget=budget,
                breaker=breaker,
                time_limit=config.time_limit,
                fast_path=config.fast_path,
                lp_screen=config.lp_screen,
            )
        self._breaker = breaker
        check_cancelled = None
        if self.faults is not None:
            faults = self.faults

            def check_cancelled():
                faults.maybe_hang_solver()
                return False

        results = []
        for index in range(start, config.num_cycles):
            if self._stop_requested:
                break
            if budget is not None:
                budget.restart()
            result = run_cycle(
                self.topology,
                self.source.cycle(index),
                cycle_index=index,
                window=config.window,
                k_paths=config.k_paths,
                time_limit=config.time_limit,
                cache=cache,
                queue_capacity=config.queue_capacity,
                max_batch=config.max_batch,
                check_cancelled=check_cancelled,
                fast_path=config.fast_path,
                lp_screen=config.lp_screen,
                on_batch=writer.on_batch if writer is not None else None,
                ladder=ladder,
            )
            if writer is not None:
                writer.commit_cycle(result)
            results.append(result)
        return results

    def _run_pooled(
        self, start: int, writer: _StateWriter | None
    ) -> list[CycleResult]:
        config = self.config
        payloads = [
            (
                self.topology,
                self.source.cycle(index),
                index,
                config.window,
                config.k_paths,
                config.time_limit,
                config.queue_capacity,
                config.max_batch,
                config.fast_path,
                config.lp_screen,
                self.faults,
                config.cycle_budget,
            )
            for index in range(start, config.num_cycles)
        ]
        results = []
        with SolverPool(config.workers, cache_size=config.cache_size) as solver_pool:
            for result in solver_pool.imap(_cycle_worker, payloads):
                if writer is not None:
                    writer.commit_cycle(result)
                results.append(result)
                if self._stop_requested:
                    break
            self._worker_restarts = solver_pool.worker_restarts
            self._backoff_seconds = solver_pool.backoff_seconds
        return results

    def with_config(self, **changes) -> "Broker":
        """A new broker over the same source with config fields replaced."""
        return Broker(
            replace(self.config, **changes), source=self.source, faults=self.faults
        )

    def __repr__(self) -> str:
        return (
            f"Broker(topology={self.topology.name!r}, "
            f"cycles={self.config.num_cycles}, workers={self.config.workers})"
        )
