"""Bounded LRU cache of incremental batch decisions.

The broker's unit of work — "decide this arrival batch given the current
residual capacity" — is a pure function of (committed loads, charged
bandwidth, batch contents): :func:`repro.core.online.decide_batch` solves a
MILP determined entirely by those inputs.  Recurring traffic therefore
produces *identical* sub-instances across billing cycles (the first batch
of every cycle starts from empty state; periodic traces repeat whole
cycles), and re-solving them is pure waste.

:class:`DecisionCache` memoizes decisions under a key made of

* a **state fingerprint** — a BLAKE2b digest of the committed-load matrix
  and charged-bandwidth vector (tiny keys even for 288-slot cycles); and
* a **batch signature** — the decision-relevant tuple of every request in
  the batch (endpoints, window, rate, bid, candidate-path count), *not*
  request ids, so renumbered but otherwise identical batches still hit.

Because the key captures the full MILP input, a hit is exact: replaying
the cached path choices yields the same accounting as re-solving.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.core.instance import SPMInstance

__all__ = ["DecisionCache"]

#: (state fingerprint, batch signature)
CacheKey = tuple[bytes, tuple]
#: Chosen path index (or ``None``) per batch position.
Decision = tuple


class DecisionCache:
    """An LRU-evicting map from (state, batch) keys to batch decisions."""

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[CacheKey, Decision] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ keys

    @staticmethod
    def state_fingerprint(
        committed_loads: np.ndarray, charged: np.ndarray
    ) -> bytes:
        """A 16-byte digest of the residual-capacity state."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(np.ascontiguousarray(committed_loads).tobytes())
        digest.update(np.ascontiguousarray(charged).tobytes())
        return digest.digest()

    @staticmethod
    def batch_signature(instance: SPMInstance, batch_ids: list[int]) -> tuple:
        """The decision-relevant identity of a batch, id-free.

        Candidate paths are a function of (source, dest, k) on a fixed
        topology, so including the endpoints and the path count pins the
        feasible set without hashing the paths themselves.
        """
        rows = []
        for request_id in batch_ids:
            req = instance.request(request_id)
            rows.append(
                (
                    req.source,
                    req.dest,
                    req.start,
                    req.end,
                    req.rate,
                    req.value,
                    instance.num_paths(request_id),
                )
            )
        return tuple(rows)

    @classmethod
    def make_key(
        cls,
        instance: SPMInstance,
        batch_ids: list[int],
        committed_loads: np.ndarray,
        charged: np.ndarray,
    ) -> CacheKey:
        return (
            cls.state_fingerprint(committed_loads, charged),
            cls.batch_signature(instance, batch_ids),
        )

    # ---------------------------------------------------------------- lookup

    def get(self, key: CacheKey) -> Decision | None:
        """The cached decision for ``key``, or ``None``; counts hit/miss."""
        decision = self._entries.get(key)
        if decision is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return decision

    def put(self, key: CacheKey, decision) -> None:
        """Store ``decision`` (any sequence of path choices) under ``key``."""
        self._entries[key] = tuple(decision)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    # ----------------------------------------------------------------- stats

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
            "maxsize": self.maxsize,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"DecisionCache(entries={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
