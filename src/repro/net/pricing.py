"""Regional bandwidth pricing.

The paper sets link prices "based on the relative bandwidth prices provided
by Cloudflare" (§V-A, citing the *Bandwidth costs around the world* blog
post).  That post reports transit prices relative to a European/North
American baseline; we encode those relative magnitudes here and derive a
per-link price as the mean of the endpoint regions' prices, so
intra-continental links in cheap regions cost ~1 unit while links touching
expensive regions (Oceania, South America, Asia) cost proportionally more.

Prices are *relative*: only ratios matter to the algorithms, matching the
paper's setup where absolute dollar figures are never used.
"""

from __future__ import annotations

__all__ = ["REGION_PRICES", "region_price", "link_price"]

#: Relative price of one unit (10 Gbps) of bandwidth per billing cycle, by
#: region, normalized to Europe = 1.  Values follow the relative magnitudes
#: in Cloudflare's "Bandwidth costs around the world" post: Europe and North
#: America are the baseline, Asia ~6.5x, Latin America and Oceania ~17x.
REGION_PRICES: dict[str, float] = {
    "europe": 1.0,
    "north_america": 1.0,
    "asia": 6.5,
    "latin_america": 17.0,
    "oceania": 17.0,
    "africa": 14.0,
    "middle_east": 14.0,
}


def region_price(region: str) -> float:
    """The relative bandwidth price of ``region``.

    Region names are case-insensitive; raises ``KeyError`` with the list of
    known regions when unknown.
    """
    key = region.strip().lower()
    if key not in REGION_PRICES:
        known = ", ".join(sorted(REGION_PRICES))
        raise KeyError(f"unknown region {region!r}; known regions: {known}")
    return REGION_PRICES[key]


def link_price(region_a: str, region_b: str) -> float:
    """Relative per-unit price of a link between two regions.

    Modeled as the arithmetic mean of the endpoint regions' prices: a
    trans-pacific link pays for the expensive side, while intra-region links
    in cheap regions stay at the baseline.
    """
    return (region_price(region_a) + region_price(region_b)) / 2.0
