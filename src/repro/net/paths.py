"""Shortest-path routines: Dijkstra and Yen's k-shortest simple paths.

The SPM formulation pre-enumerates, for every request, a small set ``P_i``
of candidate simple paths between its source and destination data centers
("there are several routing paths between two data centers", paper §I).
Following the paper's MinCost baseline and the pricing model, path cost is
the sum of per-unit bandwidth prices along the path, so "shortest" here
means *cheapest*.

Both algorithms are implemented from scratch on :class:`~repro.net.graph.DiGraph`;
the test-suite cross-checks them against :mod:`networkx`.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.exceptions import NoPathError
from repro.net.graph import DiGraph

__all__ = ["Path", "dijkstra", "shortest_path", "k_shortest_paths"]

NodeId = Hashable


@dataclass(frozen=True)
class Path:
    """A simple directed path, stored as its node sequence.

    ``cost`` is the sum of edge weights along the path.  Paths compare equal
    iff their node sequences are equal; cost is derived data.
    """

    nodes: tuple[NodeId, ...]
    cost: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise ValueError("a path needs at least two nodes")
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path revisits a node: {self.nodes!r}")

    @property
    def source(self) -> NodeId:
        return self.nodes[0]

    @property
    def target(self) -> NodeId:
        return self.nodes[-1]

    @property
    def edges(self) -> tuple[tuple[NodeId, NodeId], ...]:
        """The ``(tail, head)`` pairs along the path."""
        return tuple(zip(self.nodes[:-1], self.nodes[1:]))

    def __len__(self) -> int:
        """Number of edges (hops)."""
        return len(self.nodes) - 1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self.nodes == other.nodes

    def __hash__(self) -> int:
        return hash(self.nodes)


def path_from_nodes(graph: DiGraph, nodes: Sequence[NodeId]) -> Path:
    """Build a :class:`Path` over ``graph``, computing its cost.

    Raises :class:`~repro.exceptions.EdgeNotFoundError` if any hop is missing.
    """
    cost = sum(graph.edge(t, h).weight for t, h in zip(nodes[:-1], nodes[1:]))
    return Path(tuple(nodes), cost)


def dijkstra(
    graph: DiGraph, source: NodeId
) -> tuple[dict[NodeId, float], dict[NodeId, NodeId]]:
    """Single-source shortest distances and predecessor map from ``source``.

    Returns ``(dist, prev)`` where ``dist[v]`` is the cheapest cost from
    ``source`` to ``v`` (missing if unreachable) and ``prev[v]`` is ``v``'s
    predecessor on one cheapest path.
    """
    graph._require_node(source)
    dist: dict[NodeId, float] = {source: 0.0}
    prev: dict[NodeId, NodeId] = {}
    visited: set[NodeId] = set()
    counter = 0  # tie-breaker so heapq never compares node ids
    heap: list[tuple[float, int, NodeId]] = [(0.0, counter, source)]
    while heap:
        d, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for edge in graph.successors(node):
            nd = d + edge.weight
            if nd < dist.get(edge.head, float("inf")):
                dist[edge.head] = nd
                prev[edge.head] = node
                counter += 1
                heapq.heappush(heap, (nd, counter, edge.head))
    return dist, prev


def shortest_path(graph: DiGraph, source: NodeId, target: NodeId) -> Path:
    """The cheapest simple path from ``source`` to ``target``.

    Raises :class:`~repro.exceptions.NoPathError` if ``target`` is unreachable.
    """
    graph._require_node(target)
    dist, prev = dijkstra(graph, source)
    if target not in dist:
        raise NoPathError(f"no path {source!r} -> {target!r}")
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(prev[nodes[-1]])
    nodes.reverse()
    return Path(tuple(nodes), dist[target])


def k_shortest_paths(
    graph: DiGraph, source: NodeId, target: NodeId, k: int
) -> list[Path]:
    """Yen's algorithm: up to ``k`` cheapest *simple* paths, ascending cost.

    Returns fewer than ``k`` paths when the graph does not contain that many
    simple paths.  Raises :class:`NoPathError` when no path exists at all.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    best = shortest_path(graph, source, target)
    found: list[Path] = [best]
    # Candidate heap keyed by (cost, nodes) — nodes tuple also deduplicates.
    candidates: list[tuple[float, tuple[NodeId, ...]]] = []
    seen_candidates: set[tuple[NodeId, ...]] = {best.nodes}

    while len(found) < k:
        prev_path = found[-1]
        for spur_idx in range(len(prev_path.nodes) - 1):
            spur_node = prev_path.nodes[spur_idx]
            root_nodes = prev_path.nodes[: spur_idx + 1]

            # Remove edges that would recreate an already-found path sharing
            # this root, and the root's interior nodes.
            removed_edges: set[tuple[NodeId, NodeId]] = set()
            for path in found:
                if path.nodes[: spur_idx + 1] == root_nodes and len(path.nodes) > spur_idx + 1:
                    removed_edges.add((path.nodes[spur_idx], path.nodes[spur_idx + 1]))
            banned_nodes = set(root_nodes[:-1])

            trimmed = _trimmed_graph(graph, banned_nodes, removed_edges)
            if not trimmed.has_node(spur_node) or not trimmed.has_node(target):
                continue
            try:
                spur_path = shortest_path(trimmed, spur_node, target)
            except NoPathError:
                continue

            total_nodes = root_nodes[:-1] + spur_path.nodes
            if total_nodes in seen_candidates:
                continue
            seen_candidates.add(total_nodes)
            root_cost = sum(
                graph.edge(t, h).weight
                for t, h in zip(root_nodes[:-1], root_nodes[1:])
            )
            heapq.heappush(
                candidates,
                (root_cost + spur_path.cost, tuple(total_nodes)),
            )

        if not candidates:
            break
        cost, nodes = heapq.heappop(candidates)
        found.append(Path(nodes, cost))

    return found


def _trimmed_graph(
    graph: DiGraph,
    banned_nodes: set[NodeId],
    removed_edges: set[tuple[NodeId, NodeId]],
) -> DiGraph:
    """Copy of ``graph`` without ``banned_nodes`` and ``removed_edges``."""
    g = DiGraph()
    for node in graph.nodes:
        if node not in banned_nodes:
            g.add_node(node)
    for edge in graph.edges:
        if edge.tail in banned_nodes or edge.head in banned_nodes:
            continue
        if (edge.tail, edge.head) in removed_edges:
            continue
        g.add_edge(edge.tail, edge.head, edge.weight)
    return g
