"""The :class:`Topology` model: a WAN graph plus prices and capacities.

A topology couples the directed graph with:

* ``price[edge]`` — the per-unit (10 Gbps) bandwidth price ``u_e``;
* ``capacity[edge]`` — an optional integer capacity ceiling, used by the
  bandwidth-limited problem (BL-SPM) and by Metis' BW Limiter.  ``None``
  means "unlimited" (RL-SPM: the provider may purchase as much as needed).
* ``region[node]`` — optional region label used for pricing and reporting.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.exceptions import TopologyError
from repro.net.graph import DiGraph, Edge
from repro.net.paths import Path, k_shortest_paths

__all__ = ["Topology"]

NodeId = Hashable
EdgeKey = tuple[NodeId, NodeId]


class Topology:
    """An inter-DC WAN: directed graph + per-link prices (+ capacities).

    Edge weights of the underlying graph are the per-unit bandwidth prices,
    so path enumeration naturally orders paths by cost.
    """

    def __init__(
        self,
        name: str,
        *,
        regions: Mapping[NodeId, str] | None = None,
    ) -> None:
        self.name = name
        self.graph = DiGraph()
        self._capacity: dict[EdgeKey, int | None] = {}
        self.regions: dict[NodeId, str] = dict(regions or {})

    # ----------------------------------------------------------- construction

    def add_datacenter(self, node: NodeId, region: str | None = None) -> None:
        """Add a data center; optionally record its region."""
        self.graph.add_node(node)
        if region is not None:
            self.regions[node] = region

    def add_link(
        self,
        a: NodeId,
        b: NodeId,
        price: float,
        *,
        capacity: int | None = None,
        bidirectional: bool = True,
    ) -> None:
        """Add a link of per-unit price ``price``.

        ``bidirectional=True`` (the default, matching B4's bidirectional
        links) adds both directions with the same price and capacity.
        """
        if not (price >= 0):
            raise TopologyError(f"link price must be >= 0, got {price!r}")
        if capacity is not None and (not isinstance(capacity, int) or capacity < 0):
            raise TopologyError(f"capacity must be a non-negative int, got {capacity!r}")
        self.graph.add_edge(a, b, price)
        self._capacity[(a, b)] = capacity
        if bidirectional:
            self.graph.add_edge(b, a, price)
            self._capacity[(b, a)] = capacity

    # ------------------------------------------------------------- accessors

    @property
    def datacenters(self) -> list[NodeId]:
        return self.graph.nodes

    @property
    def num_datacenters(self) -> int:
        return self.graph.num_nodes

    @property
    def edges(self) -> list[Edge]:
        return self.graph.edges

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def price(self, tail: NodeId, head: NodeId) -> float:
        """Per-unit bandwidth price ``u_e`` of the directed edge."""
        return self.graph.edge(tail, head).weight

    def capacity(self, tail: NodeId, head: NodeId) -> int | None:
        """Capacity ceiling of the directed edge (``None`` = unlimited)."""
        self.graph.edge(tail, head)  # raises if missing
        return self._capacity.get((tail, head))

    def set_capacity(self, tail: NodeId, head: NodeId, capacity: int | None) -> None:
        """Set/replace the capacity ceiling of a directed edge."""
        self.graph.edge(tail, head)
        if capacity is not None and (not isinstance(capacity, int) or capacity < 0):
            raise TopologyError(f"capacity must be a non-negative int, got {capacity!r}")
        self._capacity[(tail, head)] = capacity

    def set_uniform_capacity(self, capacity: int | None) -> None:
        """Set the same capacity on every directed edge (paper Fig. 4c/4d setup)."""
        for edge in self.edges:
            self.set_capacity(edge.tail, edge.head, capacity)

    def capacities(self) -> dict[EdgeKey, int | None]:
        """Snapshot of all directed-edge capacities."""
        return {e.key: self._capacity.get(e.key) for e in self.edges}

    def region(self, node: NodeId) -> str | None:
        self.graph._require_node(node)
        return self.regions.get(node)

    # ------------------------------------------------------------------ paths

    def candidate_paths(
        self, source: NodeId, target: NodeId, k: int = 3
    ) -> list[Path]:
        """Up to ``k`` cheapest simple paths ``source -> target`` (the set P_i)."""
        return k_shortest_paths(self.graph, source, target, k)

    # ------------------------------------------------------------------ misc

    def validate(self) -> None:
        """Sanity-check structural invariants; raises :class:`TopologyError`."""
        if self.graph.num_nodes == 0:
            raise TopologyError("topology has no data centers")
        if not self.graph.is_strongly_connected():
            raise TopologyError(f"topology {self.name!r} is not strongly connected")
        for edge in self.edges:
            if edge.key not in self._capacity:
                raise TopologyError(f"edge {edge.key!r} has no capacity record")

    def copy(self) -> "Topology":
        topo = Topology(self.name, regions=self.regions)
        for node in self.graph.nodes:
            topo.graph.add_node(node)
        for edge in self.edges:
            topo.graph.add_edge(edge.tail, edge.head, edge.weight)
            topo._capacity[edge.key] = self._capacity.get(edge.key)
        return topo

    def __repr__(self) -> str:
        return (
            f"Topology({self.name!r}, datacenters={self.num_datacenters}, "
            f"directed_edges={self.num_edges})"
        )
