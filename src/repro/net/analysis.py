"""Topology analytics: where a WAN is fragile, expensive or thin.

Used by the risk example and the reports to explain *why* a schedule or a
failure behaves the way it does:

* :func:`cheapest_path_betweenness` — how many ordered DC pairs route
  their cheapest path over each directed edge; high-betweenness edges are
  the ones whose failure strands the most traffic;
* :func:`path_diversity` — per DC pair, the number of *edge-disjoint*
  candidate paths (greedily extracted), i.e. how much rerouting slack a
  pair has;
* :func:`topology_summary` — node/edge counts, price statistics and the
  hop diameter in one record.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import NoPathError
from repro.net.paths import k_shortest_paths, shortest_path
from repro.net.topology import Topology

__all__ = [
    "cheapest_path_betweenness",
    "path_diversity",
    "TopologySummary",
    "topology_summary",
]

NodeId = Hashable
EdgeKey = tuple


def cheapest_path_betweenness(topology: Topology) -> dict[EdgeKey, int]:
    """Ordered-pair cheapest-path counts per directed edge.

    For every ordered DC pair, the cheapest path is computed and each of
    its edges credited once.  Edges on no cheapest path map to 0.
    """
    counts: dict[EdgeKey, int] = {edge.key: 0 for edge in topology.edges}
    for source in topology.datacenters:
        for dest in topology.datacenters:
            if source == dest:
                continue
            path = shortest_path(topology.graph, source, dest)
            for key in path.edges:
                counts[key] += 1
    return counts


def path_diversity(
    topology: Topology, source: NodeId, dest: NodeId, *, k: int = 6
) -> int:
    """The number of edge-disjoint paths among the ``k`` cheapest.

    Greedy extraction over Yen's enumeration: take the cheapest path, then
    repeatedly the next enumerated path sharing no directed edge with any
    taken one.  A lower bound on the true edge-disjoint path count, which
    is what rerouting slack in practice looks like when candidates are
    capped at ``k``.
    """
    try:
        candidates = k_shortest_paths(topology.graph, source, dest, k)
    except NoPathError:
        return 0
    used: set[EdgeKey] = set()
    disjoint = 0
    for path in candidates:
        edges = set(path.edges)
        if edges & used:
            continue
        used |= edges
        disjoint += 1
    return disjoint


@dataclass(frozen=True)
class TopologySummary:
    """One-record overview of a WAN."""

    name: str
    num_datacenters: int
    num_links: int
    price_min: float
    price_max: float
    price_mean: float
    hop_diameter: int
    min_pair_diversity: int

    @property
    def price_spread(self) -> float:
        """max/min price ratio — how regionally skewed the WAN's costs are."""
        if self.price_min <= 0:
            return float("inf")
        return self.price_max / self.price_min


def topology_summary(topology: Topology, *, diversity_k: int = 6) -> TopologySummary:
    """Compute a :class:`TopologySummary` for ``topology``."""
    prices = np.array([edge.weight for edge in topology.edges])
    hop_diameter = 0
    min_diversity = None
    for source in topology.datacenters:
        for dest in topology.datacenters:
            if source == dest:
                continue
            path = shortest_path(topology.graph, source, dest)
            hop_diameter = max(hop_diameter, len(path))
            diversity = path_diversity(topology, source, dest, k=diversity_k)
            if min_diversity is None or diversity < min_diversity:
                min_diversity = diversity
    return TopologySummary(
        name=topology.name,
        num_datacenters=topology.num_datacenters,
        num_links=topology.num_edges // 2,
        price_min=float(prices.min()),
        price_max=float(prices.max()),
        price_mean=float(prices.mean()),
        hop_diameter=hop_diameter,
        min_pair_diversity=int(min_diversity or 0),
    )
