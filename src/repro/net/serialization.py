"""JSON-friendly (de)serialization of topologies.

Topologies round-trip through plain dictionaries so experiments can pin the
exact network they ran on next to their results.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import TopologyError
from repro.net.topology import Topology

__all__ = ["topology_to_dict", "topology_from_dict"]

_FORMAT_VERSION = 1


def topology_to_dict(topo: Topology) -> dict[str, Any]:
    """Serialize ``topo`` to a JSON-compatible dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": topo.name,
        "datacenters": [
            {"id": str(node), "region": topo.regions.get(node)}
            for node in topo.datacenters
        ],
        "edges": [
            {
                "tail": str(edge.tail),
                "head": str(edge.head),
                "price": edge.weight,
                "capacity": topo.capacity(edge.tail, edge.head),
            }
            for edge in topo.edges
        ],
    }


def topology_from_dict(data: dict[str, Any]) -> Topology:
    """Rebuild a :class:`Topology` from :func:`topology_to_dict` output."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise TopologyError(f"unsupported topology format version: {version!r}")
    topo = Topology(data["name"])
    for dc in data["datacenters"]:
        topo.add_datacenter(dc["id"], dc.get("region"))
    for edge in data["edges"]:
        capacity = edge.get("capacity")
        if capacity is not None:
            capacity = int(capacity)
        topo.add_link(
            edge["tail"],
            edge["head"],
            float(edge["price"]),
            capacity=capacity,
            bidirectional=False,
        )
    return topo
