"""A minimal directed graph built from scratch.

The inter-DC WAN model only needs directed edges with float weights and fast
successor iteration, so this module implements exactly that rather than
pulling in a general-purpose graph library for the core data path.
(:mod:`networkx` is used in the test-suite as an independent oracle.)

Edges are identified by their ``(tail, head)`` pair; parallel edges are
rejected because an inter-DC link between two data centers is modeled as a
single directed edge whose *capacity* (not multiplicity) scales.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import EdgeNotFoundError, GraphError, NodeNotFoundError

__all__ = ["Edge", "DiGraph"]

NodeId = Hashable


@dataclass(frozen=True)
class Edge:
    """A directed edge ``tail -> head`` with a non-negative weight.

    ``weight`` is interpreted by callers — in this library it is the per-unit
    bandwidth price of the link.
    """

    tail: NodeId
    head: NodeId
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.tail == self.head:
            raise GraphError(f"self-loop edge not allowed: {self.tail!r}")
        if not (self.weight >= 0):  # also rejects NaN
            raise GraphError(f"edge weight must be >= 0, got {self.weight!r}")

    @property
    def key(self) -> tuple[NodeId, NodeId]:
        """The ``(tail, head)`` pair identifying this edge."""
        return (self.tail, self.head)

    def reversed(self) -> "Edge":
        """The opposite-direction edge with the same weight."""
        return Edge(self.head, self.tail, self.weight)


class DiGraph:
    """A simple directed graph with weighted edges and O(1) edge lookup."""

    def __init__(self) -> None:
        self._succ: dict[NodeId, dict[NodeId, Edge]] = {}
        self._pred: dict[NodeId, dict[NodeId, Edge]] = {}

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: NodeId) -> None:
        """Add ``node`` (idempotent)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def has_node(self, node: NodeId) -> bool:
        return node in self._succ

    @property
    def nodes(self) -> list[NodeId]:
        """All nodes, in insertion order."""
        return list(self._succ)

    @property
    def num_nodes(self) -> int:
        return len(self._succ)

    # ------------------------------------------------------------------ edges

    def add_edge(self, tail: NodeId, head: NodeId, weight: float = 1.0) -> Edge:
        """Add a directed edge; endpoints are created on demand.

        Raises :class:`GraphError` if the edge already exists.
        """
        edge = Edge(tail, head, weight)
        self.add_node(tail)
        self.add_node(head)
        if head in self._succ[tail]:
            raise GraphError(f"duplicate edge {tail!r} -> {head!r}")
        self._succ[tail][head] = edge
        self._pred[head][tail] = edge
        return edge

    def add_bidirectional(
        self, a: NodeId, b: NodeId, weight: float = 1.0
    ) -> tuple[Edge, Edge]:
        """Add the two directed edges of a bidirectional link."""
        return self.add_edge(a, b, weight), self.add_edge(b, a, weight)

    def has_edge(self, tail: NodeId, head: NodeId) -> bool:
        return tail in self._succ and head in self._succ[tail]

    def edge(self, tail: NodeId, head: NodeId) -> Edge:
        """Return the edge ``tail -> head`` or raise :class:`EdgeNotFoundError`."""
        try:
            return self._succ[tail][head]
        except KeyError:
            raise EdgeNotFoundError(f"no edge {tail!r} -> {head!r}") from None

    def remove_edge(self, tail: NodeId, head: NodeId) -> None:
        """Remove the edge ``tail -> head``."""
        if not self.has_edge(tail, head):
            raise EdgeNotFoundError(f"no edge {tail!r} -> {head!r}")
        del self._succ[tail][head]
        del self._pred[head][tail]

    @property
    def edges(self) -> list[Edge]:
        """All edges, grouped by tail in insertion order."""
        return [e for nbrs in self._succ.values() for e in nbrs.values()]

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    # ------------------------------------------------------------- traversal

    def successors(self, node: NodeId) -> Iterator[Edge]:
        """Iterate over out-edges of ``node``."""
        self._require_node(node)
        return iter(self._succ[node].values())

    def predecessors(self, node: NodeId) -> Iterator[Edge]:
        """Iterate over in-edges of ``node``."""
        self._require_node(node)
        return iter(self._pred[node].values())

    def out_degree(self, node: NodeId) -> int:
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        self._require_node(node)
        return len(self._pred[node])

    def _require_node(self, node: NodeId) -> None:
        if node not in self._succ:
            raise NodeNotFoundError(f"unknown node {node!r}")

    # ------------------------------------------------------------------ misc

    def copy(self) -> "DiGraph":
        """A deep-enough copy (nodes and edges; ``Edge`` is immutable)."""
        g = DiGraph()
        for node in self._succ:
            g.add_node(node)
        for edge in self.edges:
            g.add_edge(edge.tail, edge.head, edge.weight)
        return g

    def subgraph_without_edges(
        self, removed: Iterable[tuple[NodeId, NodeId]]
    ) -> "DiGraph":
        """Copy of the graph with the given ``(tail, head)`` edges removed."""
        g = self.copy()
        for tail, head in removed:
            if g.has_edge(tail, head):
                g.remove_edge(tail, head)
        return g

    def is_strongly_connected(self) -> bool:
        """True if every node reaches every other node (and the graph is nonempty)."""
        if not self._succ:
            return False
        nodes = self.nodes
        return (
            len(self._reachable(nodes[0], self._succ)) == self.num_nodes
            and len(self._reachable(nodes[0], self._pred)) == self.num_nodes
        )

    def _reachable(
        self, start: NodeId, adjacency: dict[NodeId, dict[NodeId, Edge]]
    ) -> set[NodeId]:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nbr in adjacency[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return seen

    def __contains__(self, node: NodeId) -> bool:
        return self.has_node(node)

    def __repr__(self) -> str:
        return f"DiGraph(nodes={self.num_nodes}, edges={self.num_edges})"
