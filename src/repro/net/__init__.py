"""Inter-datacenter WAN substrate.

Provides a from-scratch directed graph (:class:`DiGraph`), shortest-path and
k-shortest-path routines, the :class:`Topology` model that couples a graph
with per-link prices and capacities, regional pricing tables, and builders
for the evaluation topologies (B4, SUB-B4, synthetic WANs).
"""

from repro.net.graph import DiGraph, Edge
from repro.net.paths import Path, dijkstra, k_shortest_paths, shortest_path
from repro.net.pricing import REGION_PRICES, link_price, region_price
from repro.net.topology import Topology
from repro.net.topologies import (
    abilene,
    b4,
    line_topology,
    random_wan,
    star_topology,
    sub_b4,
)
from repro.net.serialization import topology_from_dict, topology_to_dict
from repro.net.analysis import (
    cheapest_path_betweenness,
    path_diversity,
    topology_summary,
)

__all__ = [
    "DiGraph",
    "Edge",
    "Path",
    "dijkstra",
    "shortest_path",
    "k_shortest_paths",
    "Topology",
    "REGION_PRICES",
    "region_price",
    "link_price",
    "abilene",
    "b4",
    "sub_b4",
    "line_topology",
    "star_topology",
    "random_wan",
    "topology_from_dict",
    "topology_to_dict",
    "cheapest_path_betweenness",
    "path_diversity",
    "topology_summary",
]
