"""Builders for the evaluation topologies.

* :func:`b4` — a 12-datacenter, 19-bidirectional-link reconstruction of
  Google's B4 inter-DC WAN (paper Fig. 2, citing Jain et al., SIGCOMM'13).
  Google does not publish the exact adjacency, so we encode a geographically
  plausible reconstruction with the published node/link counts: six North
  American sites, two European sites, four Asian sites.
* :func:`sub_b4` — the paper's SUB-B4: data centers DC1–DC6 and 7 of the B4
  links between them (§V-A).
* :func:`line_topology`, :func:`star_topology` — tiny analytic topologies
  for tests and examples.
* :func:`random_wan` — seeded synthetic WANs for scale studies.

Link prices follow :mod:`repro.net.pricing`: per-unit price = mean of the
endpoint regions' relative Cloudflare prices.
"""

from __future__ import annotations

import numpy as np

from repro.net.pricing import link_price
from repro.net.topology import Topology
from repro.util.rng import ensure_rng

__all__ = [
    "b4",
    "sub_b4",
    "abilene",
    "line_topology",
    "star_topology",
    "random_wan",
]

#: Region of each B4 data center in our reconstruction.
B4_REGIONS: dict[str, str] = {
    "DC1": "north_america",
    "DC2": "north_america",
    "DC3": "north_america",
    "DC4": "north_america",
    "DC5": "north_america",
    "DC6": "north_america",
    "DC7": "europe",
    "DC8": "europe",
    "DC9": "asia",
    "DC10": "asia",
    "DC11": "asia",
    "DC12": "asia",
}

#: The 19 bidirectional links of the B4 reconstruction.
B4_LINKS: tuple[tuple[str, str], ...] = (
    # North American mesh
    ("DC1", "DC2"),
    ("DC1", "DC3"),
    ("DC2", "DC3"),
    ("DC2", "DC4"),
    ("DC3", "DC4"),
    ("DC3", "DC5"),
    ("DC4", "DC5"),
    ("DC4", "DC6"),
    ("DC5", "DC6"),
    # Transatlantic
    ("DC5", "DC7"),
    ("DC6", "DC7"),
    ("DC6", "DC8"),
    # Intra-Europe
    ("DC7", "DC8"),
    # Transpacific
    ("DC1", "DC9"),
    ("DC2", "DC9"),
    ("DC1", "DC10"),
    # Intra-Asia
    ("DC9", "DC10"),
    ("DC10", "DC11"),
    ("DC11", "DC12"),
)

#: The 7 SUB-B4 links (a subset of ``B4_LINKS`` among DC1–DC6, §V-A).
SUB_B4_LINKS: tuple[tuple[str, str], ...] = (
    ("DC1", "DC2"),
    ("DC1", "DC3"),
    ("DC2", "DC3"),
    ("DC2", "DC4"),
    ("DC3", "DC4"),
    ("DC4", "DC5"),
    ("DC4", "DC6"),
)


def _build(name: str, links: tuple[tuple[str, str], ...], regions: dict[str, str]) -> Topology:
    used_nodes = sorted({n for link in links for n in link}, key=lambda s: int(s[2:]))
    topo = Topology(name)
    for node in used_nodes:
        topo.add_datacenter(node, regions[node])
    for a, b in links:
        topo.add_link(a, b, link_price(regions[a], regions[b]))
    topo.validate()
    return topo


def b4() -> Topology:
    """Google's B4 inter-DC WAN: 12 data centers, 19 bidirectional links."""
    return _build("B4", B4_LINKS, B4_REGIONS)


def sub_b4() -> Topology:
    """The paper's SUB-B4: DC1–DC6 and 7 links (small-scale WAN)."""
    return _build("SUB-B4", SUB_B4_LINKS, B4_REGIONS)


#: The Abilene / Internet2 research backbone: 11 PoPs, 14 links — a
#: standard traffic-engineering evaluation topology, included to check the
#: algorithms generalize beyond the paper's two networks.
ABILENE_LINKS: tuple[tuple[str, str], ...] = (
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "LosAngeles"),
    ("Sunnyvale", "Denver"),
    ("LosAngeles", "Houston"),
    ("Denver", "KansasCity"),
    ("KansasCity", "Houston"),
    ("KansasCity", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Atlanta", "Indianapolis"),
    ("Atlanta", "WashingtonDC"),
    ("Indianapolis", "Chicago"),
    ("Chicago", "NewYork"),
    ("NewYork", "WashingtonDC"),
)


def abilene() -> Topology:
    """The Abilene (Internet2) backbone: 11 nodes, 14 bidirectional links.

    All sites are North American, so every link carries the baseline
    price 1.0 — a uniform-price counterpoint to B4's regional spread.
    """
    nodes = sorted({n for link in ABILENE_LINKS for n in link})
    topo = Topology("Abilene")
    for node in nodes:
        topo.add_datacenter(node, "north_america")
    for a, b in ABILENE_LINKS:
        topo.add_link(a, b, link_price("north_america", "north_america"))
    topo.validate()
    return topo


def line_topology(n: int, price: float = 1.0) -> Topology:
    """A line of ``n`` data centers ``DC1 - DC2 - ... - DCn`` (tests/examples)."""
    if n < 2:
        raise ValueError(f"line topology needs >= 2 data centers, got {n}")
    topo = Topology(f"line-{n}")
    nodes = [f"DC{i}" for i in range(1, n + 1)]
    for node in nodes:
        topo.add_datacenter(node)
    for a, b in zip(nodes[:-1], nodes[1:]):
        topo.add_link(a, b, price)
    topo.validate()
    return topo


def star_topology(n_leaves: int, price: float = 1.0) -> Topology:
    """A hub ``DC0`` with ``n_leaves`` leaf data centers (tests/examples)."""
    if n_leaves < 1:
        raise ValueError(f"star topology needs >= 1 leaf, got {n_leaves}")
    topo = Topology(f"star-{n_leaves}")
    topo.add_datacenter("DC0")
    for i in range(1, n_leaves + 1):
        leaf = f"DC{i}"
        topo.add_datacenter(leaf)
        topo.add_link("DC0", leaf, price)
    topo.validate()
    return topo


def random_wan(
    n: int,
    extra_links: int,
    *,
    price_range: tuple[float, float] = (1.0, 10.0),
    rng: int | np.random.Generator | None = None,
) -> Topology:
    """A seeded random WAN: a ring of ``n`` DCs plus ``extra_links`` chords.

    The ring guarantees strong connectivity; chords add path diversity.
    Prices are drawn uniformly from ``price_range``.
    """
    if n < 3:
        raise ValueError(f"random WAN needs >= 3 data centers, got {n}")
    low, high = price_range
    if not (0 <= low <= high):
        raise ValueError(f"invalid price range {price_range!r}")
    max_extra = n * (n - 1) // 2 - n
    if extra_links < 0 or extra_links > max_extra:
        raise ValueError(
            f"extra_links must be in [0, {max_extra}] for n={n}, got {extra_links}"
        )
    gen = ensure_rng(rng)
    topo = Topology(f"random-wan-{n}")
    nodes = [f"DC{i}" for i in range(1, n + 1)]
    for node in nodes:
        topo.add_datacenter(node)
    existing: set[frozenset[str]] = set()
    for a, b in zip(nodes, nodes[1:] + nodes[:1]):
        topo.add_link(a, b, float(gen.uniform(low, high)))
        existing.add(frozenset((a, b)))
    added = 0
    while added < extra_links:
        a, b = gen.choice(nodes, size=2, replace=False)
        key = frozenset((str(a), str(b)))
        if key in existing:
            continue
        topo.add_link(str(a), str(b), float(gen.uniform(low, high)))
        existing.add(key)
        added += 1
    topo.validate()
    return topo
