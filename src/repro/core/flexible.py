"""Temporal flexibility: profit with slideable transfer windows (extension).

The paper's requests are rigid — ``[ts_i, td_i]`` is fixed at bid time.
Its related work (NetStitcher, Postcard, Amoeba) centers on the opposite
observation: bulk transfers usually tolerate *when* they run as long as
they finish by a deadline, and sliding them off each other's peaks is
where inter-DC savings come from.  This module quantifies that knob inside
the SPM model:

* each request may start up to ``slack_i`` slots later than requested,
  keeping its duration (deadline = ``td_i + slack_i``);
* the provider jointly picks acceptance, path **and start offset**;
* charging stays peak-based per link, so de-peaking directly removes
  bandwidth units.

:func:`solve_flexible_spm` solves the expanded problem exactly (binary
``x[i, j, o]`` over path x offset options); :func:`flexibility_gain`
reports profit as a function of a uniform slack budget — the "how much is
scheduling freedom worth" curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError, WorkloadError
from repro.lp.expr import LinExpr
from repro.lp.model import Model
from repro.lp.result import SolveStatus

__all__ = ["FlexibleResult", "solve_flexible_spm", "flexibility_gain"]


@dataclass
class FlexibleResult:
    """Outcome of a flexible-window exact solve.

    ``offsets`` maps accepted request ids to the chosen start delay (0 =
    as requested); ``schedule`` reflects the *shifted* windows via a
    rebuilt instance, so its loads/cost/profit account for the slide.
    """

    schedule: Schedule
    offsets: dict[int, int]
    objective: float

    @property
    def profit(self) -> float:
        return self.schedule.profit

    @property
    def num_shifted(self) -> int:
        return sum(1 for offset in self.offsets.values() if offset > 0)


def solve_flexible_spm(
    instance: SPMInstance,
    slacks: dict[int, int] | int,
    *,
    time_limit: float | None = None,
) -> FlexibleResult:
    """Exactly solve SPM with slideable windows.

    ``slacks`` is either a per-request map or one uniform slack (slots of
    allowed delay).  Offsets pushing a window past the billing cycle are
    not generated.  NP-hard like SPM — sized for the same instances the
    exact OPT baselines handle.
    """
    if isinstance(slacks, int):
        slacks = {req.request_id: slacks for req in instance.requests}
    for req in instance.requests:
        slack = slacks.get(req.request_id, 0)
        if slack < 0:
            raise WorkloadError(
                f"request {req.request_id}: slack must be >= 0, got {slack}"
            )

    model = Model("flexible-spm")
    x_vars: dict[tuple[int, int, int], object] = {}
    options: dict[int, list[tuple[int, int]]] = {}
    for req in instance.requests:
        slack = slacks.get(req.request_id, 0)
        max_offset = min(slack, instance.num_slots - 1 - req.end)
        request_options = []
        for offset in range(max_offset + 1):
            for path_idx in range(instance.num_paths(req.request_id)):
                var = model.add_binary(f"x_{req.request_id}_{path_idx}_{offset}")
                x_vars[(req.request_id, path_idx, offset)] = var
                request_options.append((path_idx, offset))
        options[req.request_id] = request_options
        model.add_constr(
            sum(
                x_vars[(req.request_id, path_idx, offset)]
                for path_idx, offset in request_options
            )
            <= 1,
            name=f"choice_{req.request_id}",
        )

    c_vars = {
        edge_idx: model.add_var(f"c_{edge_idx}", 0.0, is_integer=True)
        for edge_idx in range(instance.num_edges)
    }

    load_rows: dict[tuple[int, int], LinExpr] = {}
    for req in instance.requests:
        for path_idx, offset in options[req.request_id]:
            var = x_vars[(req.request_id, path_idx, offset)]
            for edge_idx in instance.path_edges[req.request_id][path_idx]:
                for t in range(req.start + offset, req.end + offset + 1):
                    key = (int(edge_idx), t)
                    expr = load_rows.get(key)
                    if expr is None:
                        expr = LinExpr()
                        load_rows[key] = expr
                    expr.terms[var] = expr.terms.get(var, 0.0) + req.rate
    for (edge_idx, t), load in load_rows.items():
        model.add_constr(load <= c_vars[edge_idx], name=f"cap_{edge_idx}_{t}")

    objective = LinExpr()
    for req in instance.requests:
        for path_idx, offset in options[req.request_id]:
            var = x_vars[(req.request_id, path_idx, offset)]
            objective.terms[var] = objective.terms.get(var, 0.0) + req.value
    for edge_idx, var in c_vars.items():
        objective.terms[var] = objective.terms.get(var, 0.0) - float(
            instance.prices[edge_idx]
        )
    model.set_objective(objective, maximize=True)

    solution = model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("flexible SPM ILP infeasible")
    if not solution.is_optimal:
        raise SolverError(
            f"flexible SPM did not reach optimality: {solution.status}"
        )

    assignment: dict[int, int | None] = {}
    offsets: dict[int, int] = {}
    for req in instance.requests:
        assignment[req.request_id] = None
        for path_idx, offset in options[req.request_id]:
            if solution.values[x_vars[(req.request_id, path_idx, offset)]] > 0.5:
                assignment[req.request_id] = path_idx
                offsets[req.request_id] = offset
                break

    shifted = _shifted_instance(instance, offsets)
    schedule = Schedule(shifted, assignment)
    return FlexibleResult(
        schedule=schedule,
        offsets=offsets,
        objective=float(solution.objective),
    )


def _shifted_instance(
    instance: SPMInstance, offsets: dict[int, int]
) -> SPMInstance:
    """The instance with accepted requests' windows slid by ``offsets``."""
    from repro.workload.request import Request, RequestSet

    shifted_requests = []
    for req in instance.requests:
        offset = offsets.get(req.request_id, 0)
        if offset == 0:
            shifted_requests.append(req)
        else:
            shifted_requests.append(
                Request(
                    request_id=req.request_id,
                    source=req.source,
                    dest=req.dest,
                    start=req.start + offset,
                    end=req.end + offset,
                    rate=req.rate,
                    value=req.value,
                )
            )
    request_set = RequestSet(shifted_requests, instance.num_slots)
    paths = {req.request_id: instance.paths[req.request_id] for req in request_set}
    return SPMInstance(instance.topology, request_set, paths)


def flexibility_gain(
    instance: SPMInstance,
    slack_levels: tuple[int, ...] = (0, 1, 2, 4),
    *,
    time_limit: float | None = None,
) -> list[tuple[int, float, int]]:
    """Profit as a function of a uniform slack budget.

    Returns ``[(slack, profit, shifted_count), ...]``; profit is
    non-decreasing in slack (more options can never hurt the exact
    optimum), which the tests assert.
    """
    if any(s < 0 for s in slack_levels):
        raise WorkloadError(f"slack levels must be >= 0: {slack_levels!r}")
    curve = []
    for slack in slack_levels:
        result = solve_flexible_spm(instance, slack, time_limit=time_limit)
        curve.append((slack, result.profit, result.num_shifted))
    return curve
