"""The SUBSET-SUM -> SPM reduction behind Theorem 1 (paper §II-B).

Given a SUBSET-SUM instance (integers ``a_1..a_n``, target ``N``), the
reduction builds an SPM instance on a single link with one time slot:

* request ``i`` demands rate ``r_i = a_i / N`` and bids ``v_i = r_i``;
* the link's per-unit price is ``1 - sigma`` for a small ``sigma > 0``.

With the paper's assumption ``N < M < 2N`` (``M`` the total sum), every
request subset demands total rate in ``(0, 2)``, so the integer charged
bandwidth is 1 or 2 units.  A subset summing exactly to ``N`` demands rate
exactly 1 and yields profit ``1 - (1 - sigma) = sigma``; any other
non-empty subset yields strictly less whenever
``sigma < 2 - M/N`` — so the optimal SPM profit equals ``sigma`` **iff**
the SUBSET-SUM instance is a yes-instance.

(The paper words the price condition as "sigma ... infinitely close to 1";
the algebra above — and the paper's own profit expression ``1 - sigma`` —
require the *price* to be close to 1, i.e. ``sigma`` close to 0, with the
explicit threshold ``2 - M/N``.  See DESIGN.md §5.)

:func:`spm_from_subset_sum` materializes the reduction as a real
:class:`~repro.core.instance.SPMInstance`; :func:`subset_from_solution`
maps an optimal SPM schedule back to the certifying subset.  The tests
solve small reductions exactly (via OPT(SPM)) and check both directions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.net.topology import Topology
from repro.workload.request import Request, RequestSet

__all__ = ["spm_from_subset_sum", "subset_from_solution", "reduction_sigma"]


def reduction_sigma(values: Sequence[int], target: int) -> float:
    """A valid ``sigma`` for the reduction: half the ``2 - M/N`` threshold."""
    total = sum(values)
    threshold = 2.0 - total / target
    if threshold <= 0:
        raise ValueError(
            f"reduction requires sum(values) < 2 * target, got {total} >= {2 * target}"
        )
    return threshold / 2.0


def spm_from_subset_sum(
    values: Sequence[int],
    target: int,
    *,
    sigma: float | None = None,
) -> tuple[SPMInstance, float]:
    """Build the SPM instance of the reduction.

    ``values`` must be positive integers with ``target < sum(values) <
    2 * target`` (the paper's WLOG normalization).  Returns
    ``(instance, sigma)``; the SUBSET-SUM answer is *yes* iff the optimal
    SPM profit equals ``sigma`` (it is strictly below otherwise).
    """
    if target < 1:
        raise ValueError(f"target must be >= 1, got {target}")
    if not values:
        raise ValueError("values must be non-empty")
    if any(not isinstance(v, int) or v < 1 for v in values):
        raise ValueError(f"values must be positive integers, got {values!r}")
    total = sum(values)
    if not (target < total < 2 * target):
        raise ValueError(
            f"reduction requires target < sum(values) < 2*target; "
            f"got sum={total}, target={target}"
        )
    if sigma is None:
        sigma = reduction_sigma(values, target)
    if not (0 < sigma < 2.0 - total / target):
        raise ValueError(
            f"sigma must be in (0, {2.0 - total / target}), got {sigma}"
        )

    price = 1.0 - sigma
    topo = Topology("subset-sum-reduction")
    topo.add_datacenter("S")
    topo.add_datacenter("D")
    topo.add_link("S", "D", price)

    requests = RequestSet(
        [
            Request(
                request_id=i,
                source="S",
                dest="D",
                start=0,
                end=0,
                rate=value / target,
                value=value / target,
            )
            for i, value in enumerate(values)
        ],
        num_slots=1,
    )
    return SPMInstance.build(topo, requests, k_paths=1), sigma


def subset_from_solution(
    instance: SPMInstance, schedule: Schedule, target: int
) -> list[int]:
    """The indices accepted by ``schedule``, i.e. the candidate subset.

    The corresponding integers are ``[values[i] for i in result]``; when the
    schedule is SPM-optimal with profit ``sigma``, they sum to ``target``.
    """
    del instance, target  # kept for call-site clarity; ids are positional
    return sorted(schedule.accepted_ids)
