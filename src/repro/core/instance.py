"""A concrete SPM instance: topology, requests and candidate paths.

:class:`SPMInstance` pins everything the formulations and algorithms consume:

* the WAN topology with per-edge prices ``u_e``;
* the request set (one billing cycle of ``T`` slots);
* for every request ``i`` the pre-enumerated candidate path set
  ``P_i = {P_{i,1}, ..., P_{i,L_i}}`` (k cheapest simple paths);
* the edge index and the path-edge incidence ``I_{i,j,e}`` in array form.

Path enumeration is cached per (source, dest) pair, so instances over the
same topology share the enumeration work.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.exceptions import ScheduleError
from repro.net.paths import Path
from repro.net.topology import Topology
from repro.workload.request import Request, RequestSet

__all__ = ["SPMInstance"]

NodeId = Hashable
EdgeKey = tuple[NodeId, NodeId]


class SPMInstance:
    """An instance of the service-profit-maximization problem."""

    def __init__(
        self,
        topology: Topology,
        requests: RequestSet,
        paths: dict[int, list[Path]],
    ) -> None:
        self.topology = topology
        self.requests = requests
        self.paths = paths
        for req in requests:
            if req.request_id not in paths or not paths[req.request_id]:
                raise ScheduleError(
                    f"request {req.request_id} has no candidate paths"
                )

        #: Directed edges in a fixed order; ``edge_index`` inverts it.
        self.edges: list[EdgeKey] = [e.key for e in topology.edges]
        self.edge_index: dict[EdgeKey, int] = {
            key: idx for idx, key in enumerate(self.edges)
        }
        #: Per-unit prices aligned with ``edges``.
        self.prices: np.ndarray = np.array(
            [topology.price(*key) for key in self.edges]
        )
        #: For request ``i`` and path ``j``: the edge indices along the path.
        self.path_edges: dict[int, list[np.ndarray]] = {
            req_id: [
                np.array([self.edge_index[ek] for ek in path.edges], dtype=int)
                for path in path_list
            ]
            for req_id, path_list in paths.items()
        }
        # Lazily-built array-native compilers (see batch_compiler() and
        # formulation_compiler()).
        self._batch_compiler = None
        self._fastform = None

    # ----------------------------------------------------------- constructors

    @classmethod
    def build(
        cls,
        topology: Topology,
        requests: RequestSet,
        *,
        k_paths: int = 3,
    ) -> "SPMInstance":
        """Enumerate up to ``k_paths`` cheapest simple paths per request."""
        cache: dict[tuple[NodeId, NodeId], list[Path]] = {}
        paths: dict[int, list[Path]] = {}
        for req in requests:
            key = (req.source, req.dest)
            if key not in cache:
                cache[key] = topology.candidate_paths(req.source, req.dest, k=k_paths)
            paths[req.request_id] = cache[key]
        return cls(topology, requests, paths)

    def restrict(self, request_ids: Iterable[int]) -> "SPMInstance":
        """The same instance over a subset of the requests — zero-copy.

        The restricted instance *shares* the parent's edge order, edge
        index, price vector, per-path edge arrays, and any lazily-built
        array-native compilers (both are keyed per request id, so a subset
        view stays valid); only the request subset and its path-dict views
        are new.  Metis restricts once per alternation round, so rebuilding
        the incidence arrays here used to dominate the non-solver round
        cost.  Nothing mutates the shared state after construction.
        """
        subset = self.requests.subset(request_ids)
        child = SPMInstance.__new__(SPMInstance)
        child.topology = self.topology
        child.requests = subset
        child.paths = {req.request_id: self.paths[req.request_id] for req in subset}
        child.edges = self.edges
        child.edge_index = self.edge_index
        child.prices = self.prices
        child.path_edges = {
            req.request_id: self.path_edges[req.request_id] for req in subset
        }
        child._batch_compiler = self._batch_compiler
        child._fastform = self._fastform
        return child

    def reprice(self, prices: np.ndarray) -> "SPMInstance":
        """The same instance under a different price vector — zero-copy.

        Shares the topology, requests, paths, edge order and per-path edge
        arrays; only ``prices`` is replaced.  The lazily-built compilers
        are *not* shared (both read the price vector), so the repriced
        instance compiles fresh models against the new prices while the
        parent's caches stay valid.

        This is the decision-steering hook of the Lagrangian decomposition
        (:mod:`repro.decomp`): shard subproblems solve against
        ``u_e + lambda_e`` while all accounting stays on the true ``u_e``.
        """
        prices = np.asarray(prices, dtype=float)
        if prices.shape != self.prices.shape:
            raise ValueError(
                f"prices shaped {prices.shape}, expected {self.prices.shape}"
            )
        child = SPMInstance.__new__(SPMInstance)
        child.topology = self.topology
        child.requests = self.requests
        child.paths = self.paths
        child.edges = self.edges
        child.edge_index = self.edge_index
        child.prices = prices
        child.path_edges = self.path_edges
        child._batch_compiler = None
        child._fastform = None
        return child

    # -------------------------------------------------------------- accessors

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def num_edges(self) -> int:
        """|E|: number of directed edges."""
        return len(self.edges)

    @property
    def num_slots(self) -> int:
        """T: billing-cycle length in slots."""
        return self.requests.num_slots

    def num_paths(self, request_id: int) -> int:
        """L_i: candidate-path count of request ``request_id``."""
        return len(self.paths[request_id])

    def request(self, request_id: int) -> Request:
        return self.requests[request_id]

    def path(self, request_id: int, path_idx: int) -> Path:
        try:
            return self.paths[request_id][path_idx]
        except (KeyError, IndexError):
            raise ScheduleError(
                f"no path #{path_idx} for request {request_id}"
            ) from None

    def uses_edge(self, request_id: int, path_idx: int, edge_idx: int) -> bool:
        """The incidence indicator ``I_{i,j,e}``."""
        return edge_idx in self.path_edges[request_id][path_idx]

    def batch_compiler(self):
        """The instance's array-native incremental-batch compiler, cached.

        Precomputes every request's (path, edge, slot) incidence arrays
        once, so the serving loop's per-batch MILPs assemble with
        vectorized numpy operations instead of the expression layer.
        Returns a :class:`repro.core.online.IncrementalBatchCompiler`
        (imported lazily to avoid a module cycle).
        """
        if self._batch_compiler is None:
            from repro.core.online import IncrementalBatchCompiler

            self._batch_compiler = IncrementalBatchCompiler(self)
        return self._batch_compiler

    def formulation_compiler(self):
        """The instance's array-native formulation compiler, cached.

        Precomputes every request's (path, edge, slot) incidence arrays
        once and emits the RL-SPM / BL-SPM / full-SPM compiled models with
        vectorized numpy assembly, bitwise identical to the expression
        builders in :mod:`repro.core.formulations`.  Restricted instances
        share their parent's compiler (see :meth:`restrict`).  Returns a
        :class:`repro.core.fastform.FormulationCompiler` (imported lazily
        to avoid a module cycle).
        """
        if self._fastform is None:
            from repro.core.fastform import FormulationCompiler

            self._fastform = FormulationCompiler(self)
        return self._fastform

    # ---------------------------------------------------------------- loads

    def loads(self, assignment: dict[int, int | None]) -> np.ndarray:
        """Per-(edge, slot) bandwidth demanded by ``assignment``.

        ``assignment`` maps request id -> chosen path index (or ``None`` for
        declined).  Returns an array of shape ``(num_edges, num_slots)``.
        """
        loads = np.zeros((self.num_edges, self.num_slots))
        for req_id, path_idx in assignment.items():
            if path_idx is None:
                continue
            req = self.requests[req_id]
            edge_idx = self.path_edges[req_id][path_idx]
            loads[edge_idx, req.start : req.end + 1] += req.rate
        return loads

    def __repr__(self) -> str:
        return (
            f"SPMInstance(topology={self.topology.name!r}, "
            f"K={self.num_requests}, T={self.num_slots}, |E|={self.num_edges})"
        )
