"""Schedules and their profit accounting.

A :class:`Schedule` fixes, for every request of an instance, either a chosen
path index or ``None`` (declined), plus the integer bandwidth ``c_e``
purchased per directed edge.  It exposes the paper's bookkeeping:

* revenue  ``I = sum of v_i over accepted requests``;
* cost     ``C = sum of u_e * c_e``;
* profit   ``I - C``;
* per-slot loads and utilization statistics (Figs. 3c / 5c).

``charge_for`` reproduces MAA's ceiling step: the purchased bandwidth of an
edge is the ceiling of its peak fractional load across the billing cycle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.instance import SPMInstance
from repro.exceptions import CapacityViolationError, ScheduleError

__all__ = ["Schedule", "UtilizationStats"]

#: Loads this close to an integer are charged as that integer, absorbing
#: float accumulation noise before the ceiling.
_CEIL_TOL = 1e-9


class UtilizationStats:
    """Max/min/mean link utilization of a schedule (paper Figs. 3c, 5c).

    Utilization of an edge is its *average* load over the billing cycle
    divided by its purchased bandwidth; edges with no purchased bandwidth
    are skipped (they carry no traffic and cost nothing).
    """

    def __init__(self, per_edge: dict[tuple, float]) -> None:
        self.per_edge = per_edge

    @property
    def max(self) -> float:
        return max(self.per_edge.values(), default=0.0)

    @property
    def min(self) -> float:
        return min(self.per_edge.values(), default=0.0)

    @property
    def mean(self) -> float:
        if not self.per_edge:
            return 0.0
        return sum(self.per_edge.values()) / len(self.per_edge)

    def __repr__(self) -> str:
        return (
            f"UtilizationStats(max={self.max:.3f}, min={self.min:.3f}, "
            f"mean={self.mean:.3f}, edges={len(self.per_edge)})"
        )


class Schedule:
    """A complete scheduling decision for an SPM instance."""

    def __init__(
        self,
        instance: SPMInstance,
        assignment: dict[int, int | None],
        charged: dict[tuple, int] | None = None,
    ) -> None:
        self.instance = instance
        self.assignment = dict(assignment)
        missing = set(instance.requests.request_ids) - set(self.assignment)
        if missing:
            raise ScheduleError(f"assignment missing requests: {sorted(missing)}")
        extra = set(self.assignment) - set(instance.requests.request_ids)
        if extra:
            raise ScheduleError(f"assignment has unknown requests: {sorted(extra)}")
        for req_id, path_idx in self.assignment.items():
            if path_idx is not None and not (
                0 <= path_idx < instance.num_paths(req_id)
            ):
                raise ScheduleError(
                    f"request {req_id}: path index {path_idx} out of range"
                )
        self._loads = instance.loads(self.assignment)
        if charged is None:
            self.charged = self.charge_for(instance, self._loads)
        else:
            self.charged = {instance.edges[i]: 0 for i in range(instance.num_edges)}
            self.charged.update(charged)
            self._check_within_charged()
        # Lazily cached accounting — assignment and charged are fixed at
        # construction, so both sums are computed at most once.
        self._revenue: float | None = None
        self._cost: float | None = None

    @staticmethod
    def charge_for(instance: SPMInstance, loads: np.ndarray) -> dict[tuple, int]:
        """MAA's ceiling step: ``c_e = ceil(max_t load_{e,t})`` per edge."""
        peaks = loads.max(axis=1)
        return {
            instance.edges[i]: int(math.ceil(peaks[i] - _CEIL_TOL))
            for i in range(instance.num_edges)
        }

    def _check_within_charged(self) -> None:
        peaks = self._loads.max(axis=1)
        for idx, key in enumerate(self.instance.edges):
            if peaks[idx] > self.charged.get(key, 0) + _CEIL_TOL:
                raise CapacityViolationError(
                    f"edge {key!r}: peak load {peaks[idx]:.6f} exceeds "
                    f"charged bandwidth {self.charged.get(key, 0)}"
                )

    # ------------------------------------------------------------ accounting

    @property
    def loads(self) -> np.ndarray:
        """Array ``(num_edges, num_slots)`` of carried bandwidth."""
        return self._loads

    @property
    def accepted_ids(self) -> list[int]:
        return [rid for rid, p in self.assignment.items() if p is not None]

    @property
    def declined_ids(self) -> list[int]:
        return [rid for rid, p in self.assignment.items() if p is None]

    @property
    def num_accepted(self) -> int:
        return len(self.accepted_ids)

    @property
    def revenue(self) -> float:
        """Service revenue: sum of accepted bids (cached after first read)."""
        if self._revenue is None:
            self._revenue = sum(
                self.instance.request(rid).value for rid in self.accepted_ids
            )
        return self._revenue

    @property
    def cost(self) -> float:
        """Service cost: sum of ``u_e * c_e`` (cached after first read)."""
        if self._cost is None:
            self._cost = sum(
                self.instance.prices[self.instance.edge_index[key]] * units
                for key, units in self.charged.items()
                if units
            )
        return self._cost

    @property
    def profit(self) -> float:
        """Service profit: revenue minus cost."""
        return self.revenue - self.cost

    # ------------------------------------------------------------ validation

    def check_capacities(self, capacities: dict[tuple, int | None]) -> None:
        """Raise :class:`CapacityViolationError` if loads exceed ``capacities``.

        ``capacities`` maps directed edge keys to integer ceilings; ``None``
        (or a missing key) means unlimited.
        """
        peaks = self._loads.max(axis=1)
        for idx, key in enumerate(self.instance.edges):
            cap = capacities.get(key)
            if cap is not None and peaks[idx] > cap + _CEIL_TOL:
                raise CapacityViolationError(
                    f"edge {key!r}: peak load {peaks[idx]:.6f} exceeds capacity {cap}"
                )

    def utilization(self) -> UtilizationStats:
        """Average-load/purchased-bandwidth utilization per charged edge."""
        mean_loads = self._loads.mean(axis=1)
        per_edge = {}
        for idx, key in enumerate(self.instance.edges):
            units = self.charged.get(key, 0)
            if units > 0:
                per_edge[key] = float(mean_loads[idx] / units)
        return UtilizationStats(per_edge)

    def __repr__(self) -> str:
        return (
            f"Schedule(accepted={self.num_accepted}/{self.instance.num_requests}, "
            f"revenue={self.revenue:.3f}, cost={self.cost:.3f}, "
            f"profit={self.profit:.3f})"
        )
