"""Chernoff-Hoeffding machinery for TAA (paper §IV, Theorem 5).

The paper's functions:

* ``B(m, delta) = [e^delta / (1+delta)^(1+delta)]^m`` — the upper-tail bound
  ``Pr[X > (1+delta) m] < B(m, delta)`` for a sum of independent [0,1]
  variables with mean ``m`` (:func:`chernoff_upper_bound`);
* the matching lower-tail bound
  ``Pr[X < (1-gamma) m] < [e^-gamma / (1-gamma)^(1-gamma)]^m``
  (:func:`chernoff_lower_bound`; the paper's printed formula repeats the
  upper-tail expression — a typo, since that expression exceeds 1 for the
  lower tail);
* ``D(m, x)`` — the inverse of the tail bound in its deviation argument:
  the deviation at which the bound equals ``x``
  (:func:`invert_lower_bound` / :func:`invert_upper_bound`);
* the scaling factor ``mu`` from inequality (6): the largest
  ``mu in (0, 1)`` with ``B(mu*c, (1-mu)/mu) < 1 / (T (N+1))``
  (:func:`select_mu`).

All computations run in log space; bounds are exact monotone functions so
the inversions use bisection.
"""

from __future__ import annotations

import math

from repro.exceptions import AlgorithmError
from repro.util.validation import check_in_range, check_nonnegative, check_positive

__all__ = [
    "log_chernoff_upper_bound",
    "log_chernoff_lower_bound",
    "chernoff_upper_bound",
    "chernoff_lower_bound",
    "invert_upper_bound",
    "invert_lower_bound",
    "select_mu",
]

_BISECT_ITERS = 200


def log_chernoff_upper_bound(m: float, delta: float) -> float:
    """``ln B(m, delta)`` for the upper tail: ``m (delta - (1+delta) ln(1+delta))``."""
    check_nonnegative("m", m)
    check_nonnegative("delta", delta)
    if m == 0:
        return 0.0
    return m * (delta - (1.0 + delta) * math.log1p(delta))


def chernoff_upper_bound(m: float, delta: float) -> float:
    """The paper's ``B(m, delta)``: ``Pr[X > (1+delta) m]`` bound."""
    return math.exp(log_chernoff_upper_bound(m, delta))


def log_chernoff_lower_bound(m: float, gamma: float) -> float:
    """Log of the lower-tail bound ``Pr[X < (1-gamma) m]``.

    ``gamma = 1`` (deviation down to zero) gives the limit ``e^-m``.
    """
    check_nonnegative("m", m)
    check_in_range("gamma", gamma, 0.0, 1.0)
    if m == 0:
        return 0.0
    if gamma == 1.0:
        return -m
    return m * (-gamma - (1.0 - gamma) * math.log1p(-gamma))


def chernoff_lower_bound(m: float, gamma: float) -> float:
    """The lower-tail bound ``Pr[X < (1-gamma) m]``."""
    return math.exp(log_chernoff_lower_bound(m, gamma))


def invert_upper_bound(m: float, x: float) -> float:
    """The paper's ``D(m, x)``: the delta with ``B(m, delta) = x``.

    Requires ``0 < x < 1`` and ``m > 0``.  ``B`` is strictly decreasing in
    ``delta``, so the root is unique; found by expanding an upper bracket
    then bisecting.
    """
    check_positive("m", m)
    check_in_range("x", x, 0.0, 1.0, inclusive=False)
    target = math.log(x)
    high = 1.0
    while log_chernoff_upper_bound(m, high) > target:
        high *= 2.0
        if high > 1e12:
            raise AlgorithmError(f"cannot bracket D({m}, {x})")
    low = 0.0
    for _ in range(_BISECT_ITERS):
        mid = (low + high) / 2.0
        if log_chernoff_upper_bound(m, mid) > target:
            low = mid
        else:
            high = mid
    return high


def invert_lower_bound(m: float, x: float) -> float:
    """The gamma in ``(0, 1]`` where the lower-tail bound reaches ``x``.

    The lower-tail bound decreases from 1 (at gamma=0) to ``e^-m`` (at
    gamma=1).  When even ``e^-m > x`` (weak bound on small instances) the
    requested certainty is unattainable and ``1.0`` is returned — callers
    treat that as "no useful revenue floor" (``I_B = 0``).
    """
    check_positive("m", m)
    check_in_range("x", x, 0.0, 1.0, inclusive=False)
    target = math.log(x)
    if -m > target:
        return 1.0
    low, high = 0.0, 1.0
    for _ in range(_BISECT_ITERS):
        mid = (low + high) / 2.0
        if log_chernoff_lower_bound(m, mid) > target:
            low = mid
        else:
            high = mid
    return high


def select_mu(
    min_capacity: float,
    num_slots: int,
    num_edges: int,
    *,
    safety: float = 0.999,
) -> float:
    """The scaling factor ``mu`` of inequality (6).

    Finds the largest ``mu in (0, 1)`` with
    ``B(mu c, (1-mu)/mu) < 1/(T (N+1))`` where ``c`` is the minimum positive
    (normalized) edge capacity.  Substituting ``m = mu c`` and
    ``delta = (1-mu)/mu`` gives ``ln B = c (1 - mu + ln mu)``, strictly
    increasing in ``mu``, so the threshold is unique; the returned value is
    ``safety`` times it to keep the inequality strict.

    Raises :class:`AlgorithmError` when no ``mu`` in (0, 1) satisfies the
    inequality (capacity too small relative to ``T (N+1)``); callers fall
    back to a heuristic scaling in that case.
    """
    check_positive("min_capacity", min_capacity)
    if num_slots < 1 or num_edges < 1:
        raise ValueError("num_slots and num_edges must be >= 1")
    check_in_range("safety", safety, 0.0, 1.0, inclusive=False)
    target = -math.log(num_slots * (num_edges + 1))

    def log_bound(mu: float) -> float:
        return min_capacity * (1.0 - mu + math.log(mu))

    # log_bound(mu) -> -inf as mu -> 0+, and -> 0 as mu -> 1-.
    low = 1e-12
    if log_bound(low) >= target:
        raise AlgorithmError(
            f"no mu in (0,1) satisfies inequality (6) for c={min_capacity}, "
            f"T={num_slots}, N={num_edges}"
        )
    high = 1.0 - 1e-12
    if log_bound(high) < target:
        return high * safety
    for _ in range(_BISECT_ITERS):
        mid = (low + high) / 2.0
        if log_bound(mid) < target:
            low = mid
        else:
            high = mid
    return low * safety
