"""TAA — the Tree-based Approximation Algorithm for BL-SPM (paper §IV).

Given fixed integer link bandwidth, TAA maximizes service revenue by
accepting and routing a subset of the requests (Algorithm 2):

1. **Normalize** rates and values into ``[0, 1]`` (divide by their maxima)
   so the Chernoff-Hoeffding bounds of Theorem 5 apply.
2. **Relax** BL-SPM to its LP and solve for the fractional weights
   ``x_hat`` with optimum revenue ``I_hat``.
3. **Scale** the rounding probabilities by ``mu`` chosen per inequality (6)
   so each capacity constraint is violated with probability below
   ``1/(T (N+1))``; the expected revenue becomes ``I_S = mu * I_hat``, and
   Theorem 6 guarantees a schedule with revenue at least
   ``I_B = I_S (1 - D(I_S, 1/(N+1)))`` violating nothing.
4. **Walk** the decision tree with the pessimistic estimator
   (:mod:`repro.core.estimator`), fixing for each request the branch (a
   path, or decline) minimizing the bad-leaf probability bound.

On small instances the Chernoff bounds can be too weak for inequality (6)
to admit any ``mu`` (or for the initial estimator to sit below 1).  The
paper's asymptotic guarantee says nothing there; we keep the construction
total by falling back to ``mu = fallback_mu`` and, after the walk, greedily
declining lowest-value requests until every capacity holds
(``TAAResult.num_repairs`` counts these; it is zero whenever the estimator
started below 1, which the tests assert).

Because the ``mu``-scaled rounding is deliberately conservative (expected
load only ``mu c_e``), the walk's leaf usually leaves capacity unused.  A
final **augmentation** pass re-admits declined requests greedily (highest
bid first, first fitting path) while every capacity still holds.  This can
only increase revenue above the certified floor, so Theorem 6's guarantee
is preserved; disable with ``augment=False`` to run the bare Algorithm 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.chernoff import invert_lower_bound, select_mu
from repro.core.estimator import (
    EstimatorTerm,
    PessimisticEstimator,
    VectorizedEstimator,
)
from repro.core.fastform import CompiledFormulation, FormulationCompiler
from repro.core.formulations import build_bl_spm, fractional_x
from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import AlgorithmError, InfeasibleError, SolverError
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw

__all__ = ["TAAResult", "solve_taa"]

EdgeKey = tuple

_CAP_TOL = 1e-9


@dataclass
class TAAResult:
    """Outcome of one TAA run.

    ``relaxation_revenue`` is ``I_hat`` (the BL-SPM LP optimum, an upper
    bound on any feasible revenue); ``revenue_floor`` is ``I_B`` in original
    value units (0 when the bounds were too weak to certify a floor);
    ``estimator_initial`` is ``ln u_root`` before the walk.
    """

    schedule: Schedule
    capacities: dict[EdgeKey, int]
    relaxation_revenue: float
    mu: float
    revenue_floor: float
    estimator_initial: float
    estimator_final: float
    num_repairs: int
    num_augmented: int = 0

    @property
    def revenue(self) -> float:
        return self.schedule.revenue

    @property
    def accepted_ids(self) -> list[int]:
        return self.schedule.accepted_ids

    @property
    def certified(self) -> bool:
        """Whether Theorem 6's premise held (initial estimator below 1).

        Degenerate early-return runs (empty instance, all-zero bids) never
        build an estimator; they report ``estimator_initial = nan`` and are
        *not* certified — no walk happened, so no Theorem 6 premise was
        checked.
        """
        return (
            not math.isnan(self.estimator_initial)
            and self.estimator_initial < 0.0
        )


def solve_taa(
    instance: SPMInstance,
    capacities: dict[EdgeKey, int],
    *,
    fallback_mu: float = 0.5,
    augment: bool = True,
    time_limit: float | None = None,
    accept_feasible: bool = False,
    fast_path: bool = True,
    warm_start: bool = False,
) -> TAAResult:
    """Run Algorithm 2 (TAA) on ``instance`` under ``capacities``.

    ``capacities`` must give a finite integer bandwidth for every directed
    edge of the instance.  TAA is deterministic: no RNG is involved.
    ``time_limit`` (seconds) bounds the BL-SPM relaxation solve; by
    default a limit-hit relaxation raises even when an incumbent exists
    (the rounding analysis assumes the true LP optimum ``I_hat``), but
    ``accept_feasible=True`` proceeds from the incumbent weights —
    explicitly trading the certificate for availability.

    With ``fast_path`` (default) the BL-SPM relaxation is assembled by the
    instance's cached :class:`~repro.core.fastform.FormulationCompiler`
    (weights read straight from the raw solution columns) and the
    pessimistic estimator is built and walked by the vectorized kernel —
    both bitwise identical to the expression-layer/reference path
    (``fast_path=False``), which is kept as the equivalence oracle.

    ``warm_start`` (fast path only) routes the relaxation solve through
    the formulation's :class:`~repro.lp.warmstart.ResolveSession`.  The
    Metis shrink loop re-solves BL-SPM over the same request set with only
    capacity right-hand sides moving, so shrinks that the previous
    optimum's dual certificate covers (slack rows with zero duals) skip
    the solver dispatch entirely — with bitwise-identical solutions by the
    session's certification rules.
    """
    for key in instance.edges:
        cap = capacities.get(key)
        # bool is an int subclass, but True/False are not valid capacities.
        if (
            cap is None
            or isinstance(cap, bool)
            or not isinstance(cap, (int, np.integer))
            or cap < 0
        ):
            raise AlgorithmError(
                f"BL-SPM needs a finite non-negative integer capacity for every "
                f"edge; edge {key!r} has {cap!r}"
            )
    if not (0 < fallback_mu < 1):
        raise ValueError(f"fallback_mu must be in (0, 1), got {fallback_mu}")

    if instance.num_requests == 0:
        # Degenerate: no estimator is built; nan marks "no walk happened"
        # (certified is False — unlike -inf, nan never reads as a held
        # Theorem 6 premise).
        empty = Schedule(instance, {})
        return TAAResult(
            empty, dict(capacities), 0.0, 1.0, 0.0, math.nan, math.nan, 0
        )

    formulation: CompiledFormulation | None = None
    if fast_path:
        formulation = instance.formulation_compiler().compile_bl_spm(
            instance, capacities, integral=False
        )
        if warm_start and formulation.session is not None:
            solution = formulation.session.solve(
                formulation.compiled, time_limit=time_limit
            )
        else:
            solution = solve_compiled_raw(
                formulation.compiled, time_limit=time_limit
            )
    else:
        problem = build_bl_spm(instance, capacities, integral=False)
        solution = problem.model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("BL-SPM relaxation is infeasible")
    if not solution.is_optimal and not (
        accept_feasible and solution.status is SolveStatus.FEASIBLE
    ):
        raise SolverError(f"BL-SPM relaxation failed: {solution.status}")
    if fast_path:
        weights = FormulationCompiler.weights_from_raw(formulation, solution.x)
    else:
        weights = fractional_x(problem, solution)
    relaxation_revenue = float(solution.objective)

    requests = instance.requests.requests
    rate_max = max(req.rate for req in requests)
    value_max = max(req.value for req in requests)
    if value_max <= 0:
        # All bids are zero: declining everything is optimal and feasible.
        # Degenerate like the empty case — nan, not certified.
        assignment = {req.request_id: None for req in requests}
        schedule = Schedule(instance, assignment)
        return TAAResult(
            schedule, dict(capacities), relaxation_revenue, 1.0, 0.0,
            math.nan, math.nan, 0,
        )

    num_edges = instance.num_edges
    num_slots = instance.num_slots
    positive_caps = [capacities[key] for key in instance.edges if capacities[key] > 0]
    if positive_caps:
        min_cap_norm = min(positive_caps) / rate_max
        try:
            mu = select_mu(min_cap_norm, num_slots, num_edges)
        except AlgorithmError:
            mu = fallback_mu
    else:
        mu = fallback_mu

    # Revenue floor I_B and the tilt parameters (normalized units).
    scaled_revenue = mu * relaxation_revenue / value_max  # I_S
    one_over_n1 = 1.0 / (num_edges + 1)
    if scaled_revenue > 0:
        gamma = invert_lower_bound(scaled_revenue, one_over_n1)
    else:
        gamma = 1.0
    revenue_floor_norm = scaled_revenue * (1.0 - gamma)
    # Optimal lower-tail tilt exp(-t0 I); gamma=1 degenerates, use a unit tilt.
    t0 = -math.log1p(-gamma) if gamma < 1.0 else 1.0
    t_cap = math.log(1.0 / mu)

    build = _build_estimator_fast if fast_path else _build_estimator
    estimator = build(
        instance,
        weights,
        capacities,
        mu=mu,
        t0=t0,
        t_cap=t_cap,
        rate_max=rate_max,
        value_max=value_max,
        revenue_floor_norm=revenue_floor_norm,
        formulation=formulation,
    )
    initial = estimator.initial_log_value()
    choices, final = estimator.walk()

    assignment: dict[int, int | None] = {}
    for req, branch in zip(requests, choices):
        n_paths = instance.num_paths(req.request_id)
        assignment[req.request_id] = branch if branch < n_paths else None

    num_repairs = _repair_capacity_violations(instance, assignment, capacities)
    num_augmented = (
        _augment_with_declined(instance, assignment, capacities) if augment else 0
    )

    schedule = Schedule(instance, assignment)
    schedule.check_capacities(dict(capacities))
    return TAAResult(
        schedule=schedule,
        capacities=dict(capacities),
        relaxation_revenue=relaxation_revenue,
        mu=mu,
        revenue_floor=revenue_floor_norm * value_max,
        estimator_initial=initial,
        estimator_final=final,
        num_repairs=num_repairs,
        num_augmented=num_augmented,
    )


def _build_estimator(
    instance: SPMInstance,
    weights: dict[int, list[float]],
    capacities: dict[EdgeKey, int],
    *,
    mu: float,
    t0: float,
    t_cap: float,
    rate_max: float,
    value_max: float,
    revenue_floor_norm: float,
    formulation: CompiledFormulation | None = None,
) -> PessimisticEstimator:
    """Assemble the sum-of-products estimator for this instance.

    This is the readable reference build; ``formulation`` is unused here
    (accepted for signature parity with :func:`_build_estimator_fast`).
    """
    requests = instance.requests.requests
    num_slots = instance.num_slots

    # Capacity terms: only (edge, slot) pairs some candidate path can load.
    term_of: dict[tuple[int, int], int] = {}
    terms: list[EstimatorTerm] = [
        EstimatorTerm(name="revenue", log_const=t0 * revenue_floor_norm)
    ]
    for req in requests:
        for path_idx in range(instance.num_paths(req.request_id)):
            for edge_idx in instance.path_edges[req.request_id][path_idx]:
                for t in req.slots:
                    key = (int(edge_idx), t)
                    if key not in term_of:
                        term_of[key] = len(terms)
                        cap_norm = capacities[instance.edges[int(edge_idx)]] / rate_max
                        terms.append(
                            EstimatorTerm(
                                name=f"cap_{edge_idx}_{t}",
                                log_const=-t_cap * cap_norm,
                            )
                        )

    num_terms = len(terms)
    log_phi = np.zeros((len(requests), num_terms))
    num_choices: list[int] = []
    choice_deltas: list[list[list[tuple[int, float]]]] = []

    for row, req in enumerate(requests):
        n_paths = instance.num_paths(req.request_id)
        num_choices.append(n_paths + 1)
        p = np.clip(mu * np.asarray(weights[req.request_id], dtype=float), 0.0, 1.0)
        total_p = min(1.0, float(p.sum()))
        rate_norm = req.rate / rate_max
        value_norm = req.value / value_max

        # Revenue factor: accepted with prob total_p, contributing e^{-t0 v}.
        log_phi[row, 0] = math.log(
            max(1.0 + total_p * (math.exp(-t0 * value_norm) - 1.0), 0.0) or 1e-300
        )

        # Capacity factors: phi = 1 + sum_{paths crossing e} p_j (e^{tc r} - 1).
        bump = math.exp(t_cap * rate_norm) - 1.0
        per_term_mass: dict[int, float] = {}
        deltas_per_branch: list[list[tuple[int, float]]] = []
        for path_idx in range(n_paths):
            branch_deltas: list[tuple[int, float]] = [(0, -t0 * value_norm)]
            for edge_idx in instance.path_edges[req.request_id][path_idx]:
                for t in req.slots:
                    term_idx = term_of[(int(edge_idx), t)]
                    per_term_mass[term_idx] = (
                        per_term_mass.get(term_idx, 0.0) + float(p[path_idx])
                    )
                    branch_deltas.append((term_idx, t_cap * rate_norm))
            deltas_per_branch.append(branch_deltas)
        deltas_per_branch.append([])  # decline: every factor is 1
        choice_deltas.append(deltas_per_branch)

        for term_idx, mass in per_term_mass.items():
            log_phi[row, term_idx] = math.log(1.0 + min(mass, 1.0) * bump)

    return PessimisticEstimator(
        num_requests=len(requests),
        num_choices=num_choices,
        terms=terms,
        log_phi=log_phi,
        choice_deltas=choice_deltas,
    )


def _build_estimator_fast(
    instance: SPMInstance,
    weights: dict[int, list[float]],
    capacities: dict[EdgeKey, int],
    *,
    mu: float,
    t0: float,
    t_cap: float,
    rate_max: float,
    value_max: float,
    revenue_floor_norm: float,
    formulation: CompiledFormulation,
) -> VectorizedEstimator:
    """Assemble the vectorized estimator from the compiled BL formulation.

    The capacity terms of the estimator are exactly the capacity rows of
    BL-SPM (same (edge, slot) pairs, same first-appearance order), so the
    incidence the :class:`~repro.core.fastform.FormulationCompiler`
    already flattened — per entry its capacity-row rank and x column —
    is reused verbatim instead of re-walking requests × paths × edges ×
    slots in Python.  Transcendentals stay scalar ``math.log``/``math.exp``
    (numpy's SIMD ``np.log``/``np.exp`` are not bitwise-equal to libm on
    this platform); everything structural is array ops.  The result's
    ``initial_log_value``/``walk`` match :func:`_build_estimator`'s to
    exact float equality — asserted by the fuzz tests.
    """
    requests = instance.requests.requests
    num_requests = len(requests)
    offsets = formulation.x_offsets
    entry_terms = formulation.entry_terms
    entry_x_cols = formulation.entry_x_cols
    entries_per_x = formulation.entries_per_x
    num_cap = formulation.cap_edges.size
    num_terms = 1 + num_cap
    num_x = int(offsets[-1])

    # Term constants: revenue term 0, then one per capacity row.
    caps = np.array(
        [capacities[instance.edges[int(e)]] for e in formulation.cap_edges],
        dtype=float,
    )
    log_consts = np.empty(num_terms)
    log_consts[0] = t0 * revenue_floor_norm
    log_consts[1:] = -t_cap * (caps / rate_max)

    paths_per_req = np.diff(offsets)
    values_arr = np.array([req.value for req in requests])
    rates_arr = np.array([req.rate for req in requests])
    rev_deltas = -t0 * (values_arr / value_max)  # per request
    cap_deltas = t_cap * (rates_arr / rate_max)  # per request

    # Entry spans: entries of x column j live at xe_ptr[j]:xe_ptr[j+1].
    xe_ptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(entries_per_x)]
    )
    req_entry_lo = xe_ptr[offsets[:-1]]
    req_entry_hi = xe_ptr[offsets[1:]]

    # log_phi rows: scalar transcendentals per request / touched term
    # (few of each), vectorized mass accumulation.
    log_phi = np.zeros((num_requests, num_terms))
    mass = np.zeros(num_cap)
    for row, req in enumerate(requests):
        p = np.clip(mu * np.asarray(weights[req.request_id], dtype=float), 0.0, 1.0)
        total_p = min(1.0, float(p.sum()))
        rev_delta = float(rev_deltas[row])
        log_phi[row, 0] = math.log(
            max(1.0 + total_p * (math.exp(rev_delta) - 1.0), 0.0) or 1e-300
        )
        bump = math.exp(float(cap_deltas[row])) - 1.0
        lo, hi = int(req_entry_lo[row]), int(req_entry_hi[row])
        terms_r = entry_terms[lo:hi]
        np.add.at(mass, terms_r, p[entry_x_cols[lo:hi] - offsets[row]])
        touched = np.unique(terms_r)
        for term in touched:
            log_phi[row, 1 + term] = math.log(
                1.0 + min(mass[term], 1.0) * bump
            )
        mass[touched] = 0.0

    # Choice deltas, CSR over branches.  Path branch ``j`` of a request:
    # the revenue delta first, then one cap delta per incidence entry of
    # x column ``j`` in entry order; the trailing decline branch is empty.
    counts_per_x = 1 + entries_per_x
    dptr_x = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts_per_x)])
    total_deltas = int(dptr_x[-1])
    starts = dptr_x[:-1]
    cap_pos = np.ones(total_deltas, dtype=bool)
    cap_pos[starts] = False
    delta_terms = np.empty(total_deltas, dtype=np.int64)
    delta_terms[starts] = 0
    delta_terms[cap_pos] = 1 + entry_terms
    delta_vals = np.empty(total_deltas)
    delta_vals[starts] = np.repeat(rev_deltas, paths_per_req)
    delta_vals[cap_pos] = np.repeat(cap_deltas, req_entry_hi - req_entry_lo)

    # Branch layout: request i owns branches offsets[i]+i .. offsets[i+1]+i,
    # the last one its (delta-free) decline.
    branch_offsets = offsets + np.arange(num_requests + 1, dtype=np.int64)
    branch_counts = np.zeros(num_x + num_requests, dtype=np.int64)
    path_branch = np.ones(num_x + num_requests, dtype=bool)
    path_branch[branch_offsets[1:] - 1] = False
    branch_counts[path_branch] = counts_per_x
    delta_ptr = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(branch_counts)]
    )

    return VectorizedEstimator(
        num_requests=num_requests,
        branch_offsets=branch_offsets,
        delta_ptr=delta_ptr,
        delta_terms=delta_terms,
        delta_vals=delta_vals,
        log_consts=log_consts,
        log_phi=log_phi,
    )


def _repair_capacity_violations(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    capacities: dict[EdgeKey, int],
) -> int:
    """Decline lowest-value requests until every capacity constraint holds.

    Mutates ``assignment`` in place; returns the number of declines.  This
    is a no-op whenever the estimator certified a good leaf.
    """
    caps = np.array([float(capacities[key]) for key in instance.edges])
    loads = instance.loads(assignment)
    repairs = 0
    while True:
        excess = loads - caps[:, None]
        edge_idx, slot = np.unravel_index(int(np.argmax(excess)), excess.shape)
        if excess[edge_idx, slot] <= _CAP_TOL:
            return repairs
        # Requests routed across this (edge, slot), cheapest bid first.
        offenders = []
        for req in instance.requests:
            path_idx = assignment[req.request_id]
            if path_idx is None or not req.is_active(int(slot)):
                continue
            if int(edge_idx) in instance.path_edges[req.request_id][path_idx]:
                offenders.append(req)
        if not offenders:
            raise AlgorithmError(
                "capacity violation with no assigned request — inconsistent loads"
            )
        victim = min(offenders, key=lambda r: r.value)
        path_idx = assignment[victim.request_id]
        edge_indices = instance.path_edges[victim.request_id][path_idx]
        loads[edge_indices, victim.start : victim.end + 1] -= victim.rate
        assignment[victim.request_id] = None
        repairs += 1


def _augment_with_declined(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    capacities: dict[EdgeKey, int],
) -> int:
    """Re-admit declined requests that still fit, highest value density first.

    Density is the bid per unit of network resource the request occupies
    (``value / (rate * duration * shortest-path hops)``), the natural greedy
    order for packing under capacity: it prefers many small valuable
    requests over one large one of equal total bid.

    Mutates ``assignment`` in place and returns the number of re-admitted
    requests.  Each candidate is placed on its first (cheapest) path whose
    residual capacity covers the full active window; feasibility is
    preserved by construction.
    """
    caps = np.array([float(capacities[key]) for key in instance.edges])
    residual = caps[:, None] - instance.loads(assignment)
    declined = [
        instance.request(rid) for rid, p in assignment.items() if p is None
    ]

    def density(req) -> float:
        hops = len(instance.path_edges[req.request_id][0])
        return req.value / (req.rate * req.duration * max(hops, 1))

    admitted = 0
    for req in sorted(declined, key=density, reverse=True):
        for path_idx in range(instance.num_paths(req.request_id)):
            edge_idx = instance.path_edges[req.request_id][path_idx]
            window = residual[edge_idx, req.start : req.end + 1]
            if window.min() >= req.rate - _CAP_TOL:
                assignment[req.request_id] = path_idx
                residual[edge_idx, req.start : req.end + 1] -= req.rate
                admitted += 1
                break
    return admitted
