"""MAA — the Multistage Approximation Algorithm for RL-SPM (paper §III).

Given a set of *accepted* requests, MAA minimizes the bandwidth cost in
three stages (Algorithm 1):

1. **Relaxation** — solve the LP relaxation of RL-SPM (``x in [0,1]``,
   continuous ``c``), obtaining fractional path weights ``x_hat`` and
   fractional bandwidth ``c_hat``.
2. **Randomized rounding** — select exactly one path per request, path ``j``
   with probability ``x_hat[i][j]`` (the relaxation satisfies
   ``sum_j x_hat[i][j] = 1``).  This gives the
   ``O(log|E| / log log|E|)``-approximation for the unsplittable-flow
   subproblem P1 w.h.p. (Raghavan-Thompson).
3. **Ceiling** — charge each edge the ceiling of its peak load,
   ``c_e = ceil(max_t load_{e,t})``, the ``(alpha+1)/alpha``-relaxed step
   for subproblem P2 (Theorem 2, with ``alpha = min positive c_hat``).

Theorem 4 combines the two ratios multiplicatively (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fastform import FormulationCompiler
from repro.core.formulations import build_rl_spm, fractional_x
from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw
from repro.util.rng import ensure_rng

__all__ = ["MAAResult", "solve_maa", "round_paths", "improve_paths"]

#: Fractional bandwidth below this is treated as zero when computing alpha.
_ALPHA_TOL = 1e-9


@dataclass
class MAAResult:
    """Outcome of one MAA run.

    ``fractional_cost`` is the LP-relaxation optimum (the lower bound both
    approximation ratios are stated against); ``alpha`` is the minimum
    positive fractional bandwidth, the parameter of Theorem 2.
    """

    schedule: Schedule
    fractional_cost: float
    fractional_weights: dict[int, list[float]]
    alpha: float

    @property
    def cost(self) -> float:
        """The rounded, integer-charged bandwidth cost."""
        return self.schedule.cost

    @property
    def ceiling_ratio_bound(self) -> float:
        """Theorem 2's ``(alpha+1)/alpha`` bound (inf when alpha is 0)."""
        if self.alpha <= 0:
            return float("inf")
        return (self.alpha + 1.0) / self.alpha


def round_paths(
    instance: SPMInstance,
    weights: dict[int, list[float]],
    rng: int | np.random.Generator | None = None,
) -> dict[int, int | None]:
    """The randomized-rounding stage: one path per request, ~ ``weights``.

    Weights per request are normalized before sampling; a request whose
    weights sum to zero (possible only for degenerate inputs) falls back to
    its cheapest path, preserving RL-SPM's "every request satisfied"
    invariant.
    """
    gen = ensure_rng(rng)
    assignment: dict[int, int | None] = {}
    for req in instance.requests:
        w = np.asarray(weights[req.request_id], dtype=float)
        total = w.sum()
        if total <= 0:
            assignment[req.request_id] = 0
            continue
        assignment[req.request_id] = int(gen.choice(len(w), p=w / total))
    return assignment


def solve_maa(
    instance: SPMInstance,
    *,
    rng: int | np.random.Generator | None = None,
    time_limit: float | None = None,
    accept_feasible: bool = False,
    fast_path: bool = True,
) -> MAAResult:
    """Run Algorithm 1 (MAA) on ``instance``.

    ``time_limit`` (seconds) bounds the RL-SPM relaxation solve, so
    serving-path callers can guarantee a decision deadline.  By default a
    limit-hit relaxation raises even when an incumbent exists (the
    approximation ratios are stated against the true LP optimum);
    ``accept_feasible=True`` rounds the incumbent weights instead —
    explicitly trading the certificate for availability.

    With ``fast_path`` (default) the RL-SPM relaxation is assembled by the
    instance's cached :class:`~repro.core.fastform.FormulationCompiler`
    and the weights / fractional bandwidth are read straight from the raw
    solution columns — bitwise identical to the expression-layer path
    (``fast_path=False``), which is kept as the equivalence oracle.

    Raises :class:`~repro.exceptions.InfeasibleError` if the relaxation is
    infeasible (cannot happen on strongly connected topologies with
    unlimited purchasable bandwidth) and :class:`SolverError` on solver
    failure.
    """
    if fast_path:
        formulation = instance.formulation_compiler().compile_rl_spm(
            instance, integral=False
        )
        solution = solve_compiled_raw(formulation.compiled, time_limit=time_limit)
    else:
        problem = build_rl_spm(instance, integral=False)
        solution = problem.model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("RL-SPM relaxation is infeasible")
    if not solution.is_optimal and not (
        accept_feasible and solution.status is SolveStatus.FEASIBLE
    ):
        raise SolverError(f"RL-SPM relaxation failed: {solution.status}")

    if fast_path:
        weights = FormulationCompiler.weights_from_raw(formulation, solution.x)
        c_hat = np.array(solution.x[formulation.num_x :])
    else:
        weights = fractional_x(problem, solution)
        c_hat = np.array(
            [
                solution.values[problem.c_vars[idx]]
                for idx in range(instance.num_edges)
            ]
        )
    positive = c_hat[c_hat > _ALPHA_TOL]
    alpha = float(positive.min()) if positive.size else 0.0

    assignment = round_paths(instance, weights, rng)
    schedule = Schedule(instance, assignment)
    return MAAResult(
        schedule=schedule,
        fractional_cost=float(solution.objective),
        fractional_weights=weights,
        alpha=alpha,
    )


def improve_paths(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    *,
    max_passes: int = 5,
) -> dict[int, int | None]:
    """Greedy path-reassignment descent on the charged-bandwidth cost.

    Not part of Algorithm 1 — a practical post-pass used inside Metis: for
    each assigned request in turn, try each alternate candidate path and
    keep the move iff the total integer-charged cost strictly decreases.
    Loops until a fixpoint or ``max_passes`` full sweeps.  Returns a new
    assignment; the input is not mutated.

    Complexity is ``O(max_passes * K * L * h * T)`` where ``h`` bounds path
    length — negligible next to the LP solve.
    """
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    assignment = dict(assignment)
    loads = instance.loads(assignment)
    prices = instance.prices

    def cost_of(edge_indices: np.ndarray) -> float:
        peaks = loads[edge_indices].max(axis=1)
        return float(
            (prices[edge_indices] * np.ceil(peaks - 1e-9).clip(min=0)).sum()
        )

    for _ in range(max_passes):
        changed = False
        for req in instance.requests:
            current = assignment[req.request_id]
            if current is None or instance.num_paths(req.request_id) < 2:
                continue
            window = slice(req.start, req.end + 1)
            cur_edges = instance.path_edges[req.request_id][current]
            best_path = current
            best_delta = -1e-12
            for candidate in range(instance.num_paths(req.request_id)):
                if candidate == current:
                    continue
                new_edges = instance.path_edges[req.request_id][candidate]
                affected = np.unique(np.concatenate([cur_edges, new_edges]))
                before = cost_of(affected)
                loads[cur_edges, window] -= req.rate
                loads[new_edges, window] += req.rate
                delta = cost_of(affected) - before
                loads[cur_edges, window] += req.rate
                loads[new_edges, window] -= req.rate
                if delta < best_delta:
                    best_delta = delta
                    best_path = candidate
            if best_path != current:
                new_edges = instance.path_edges[req.request_id][best_path]
                loads[cur_edges, window] -= req.rate
                loads[new_edges, window] += req.rate
                assignment[req.request_id] = best_path
                changed = True
        if not changed:
            break
    return assignment
