"""MAA — the Multistage Approximation Algorithm for RL-SPM (paper §III).

Given a set of *accepted* requests, MAA minimizes the bandwidth cost in
three stages (Algorithm 1):

1. **Relaxation** — solve the LP relaxation of RL-SPM (``x in [0,1]``,
   continuous ``c``), obtaining fractional path weights ``x_hat`` and
   fractional bandwidth ``c_hat``.
2. **Randomized rounding** — select exactly one path per request, path ``j``
   with probability ``x_hat[i][j]`` (the relaxation satisfies
   ``sum_j x_hat[i][j] = 1``).  This gives the
   ``O(log|E| / log log|E|)``-approximation for the unsplittable-flow
   subproblem P1 w.h.p. (Raghavan-Thompson).
3. **Ceiling** — charge each edge the ceiling of its peak load,
   ``c_e = ceil(max_t load_{e,t})``, the ``(alpha+1)/alpha``-relaxed step
   for subproblem P2 (Theorem 2, with ``alpha = min positive c_hat``).

Theorem 4 combines the two ratios multiplicatively (Theorem 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fastform import FormulationCompiler
from repro.core.formulations import build_rl_spm, fractional_x
from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw
from repro.util.rng import ensure_rng

__all__ = [
    "MAAResult",
    "solve_maa",
    "round_paths",
    "improve_paths",
    "ImproveMemo",
]

#: Fractional bandwidth below this is treated as zero when computing alpha.
_ALPHA_TOL = 1e-9


@dataclass
class MAAResult:
    """Outcome of one MAA run.

    ``fractional_cost`` is the LP-relaxation optimum (the lower bound both
    approximation ratios are stated against); ``alpha`` is the minimum
    positive fractional bandwidth, the parameter of Theorem 2.
    """

    schedule: Schedule
    fractional_cost: float
    fractional_weights: dict[int, list[float]]
    alpha: float

    @property
    def cost(self) -> float:
        """The rounded, integer-charged bandwidth cost."""
        return self.schedule.cost

    @property
    def ceiling_ratio_bound(self) -> float:
        """Theorem 2's ``(alpha+1)/alpha`` bound (inf when alpha is 0)."""
        if self.alpha <= 0:
            return float("inf")
        return (self.alpha + 1.0) / self.alpha


def round_paths(
    instance: SPMInstance,
    weights: dict[int, list[float]],
    rng: int | np.random.Generator | None = None,
) -> dict[int, int | None]:
    """The randomized-rounding stage: one path per request, ~ ``weights``.

    Weights per request are normalized before sampling; a request whose
    weights sum to zero (possible only for degenerate inputs) falls back to
    its cheapest path, preserving RL-SPM's "every request satisfied"
    invariant.
    """
    gen = ensure_rng(rng)
    assignment: dict[int, int | None] = {}
    for req in instance.requests:
        w = np.asarray(weights[req.request_id], dtype=float)
        total = w.sum()
        if total <= 0:
            assignment[req.request_id] = 0
            continue
        assignment[req.request_id] = int(gen.choice(len(w), p=w / total))
    return assignment


def solve_maa(
    instance: SPMInstance,
    *,
    rng: int | np.random.Generator | None = None,
    time_limit: float | None = None,
    accept_feasible: bool = False,
    fast_path: bool = True,
    warm_start: bool = False,
) -> MAAResult:
    """Run Algorithm 1 (MAA) on ``instance``.

    ``time_limit`` (seconds) bounds the RL-SPM relaxation solve, so
    serving-path callers can guarantee a decision deadline.  By default a
    limit-hit relaxation raises even when an incumbent exists (the
    approximation ratios are stated against the true LP optimum);
    ``accept_feasible=True`` rounds the incumbent weights instead —
    explicitly trading the certificate for availability.

    With ``fast_path`` (default) the RL-SPM relaxation is assembled by the
    instance's cached :class:`~repro.core.fastform.FormulationCompiler`
    and the weights / fractional bandwidth are read straight from the raw
    solution columns — bitwise identical to the expression-layer path
    (``fast_path=False``), which is kept as the equivalence oracle.

    ``warm_start`` (fast path only) routes the relaxation solve through
    the formulation's :class:`~repro.lp.warmstart.ResolveSession`: the
    Metis inner loop re-solves the *identical* RL-SPM relaxation
    ``maa_rounds`` times per round (only the rounding rng differs), so
    every repeat after the first is answered from the session's
    exact-repeat cache — with bitwise-identical solutions by the session's
    certification rules.

    Raises :class:`~repro.exceptions.InfeasibleError` if the relaxation is
    infeasible (cannot happen on strongly connected topologies with
    unlimited purchasable bandwidth) and :class:`SolverError` on solver
    failure.
    """
    if fast_path:
        formulation = instance.formulation_compiler().compile_rl_spm(
            instance, integral=False
        )
        if warm_start and formulation.session is not None:
            solution = formulation.session.solve(
                formulation.compiled, time_limit=time_limit
            )
        else:
            solution = solve_compiled_raw(
                formulation.compiled, time_limit=time_limit
            )
    else:
        problem = build_rl_spm(instance, integral=False)
        solution = problem.model.solve(time_limit=time_limit)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("RL-SPM relaxation is infeasible")
    if not solution.is_optimal and not (
        accept_feasible and solution.status is SolveStatus.FEASIBLE
    ):
        raise SolverError(f"RL-SPM relaxation failed: {solution.status}")

    if fast_path:
        weights = FormulationCompiler.weights_from_raw(formulation, solution.x)
        c_hat = np.array(solution.x[formulation.num_x :])
    else:
        weights = fractional_x(problem, solution)
        c_hat = np.array(
            [
                solution.values[problem.c_vars[idx]]
                for idx in range(instance.num_edges)
            ]
        )
    positive = c_hat[c_hat > _ALPHA_TOL]
    alpha = float(positive.min()) if positive.size else 0.0

    assignment = round_paths(instance, weights, rng)
    schedule = Schedule(instance, assignment)
    return MAAResult(
        schedule=schedule,
        fractional_cost=float(solution.objective),
        fractional_weights=weights,
        alpha=alpha,
    )


class ImproveMemo:
    """Cross-call static caches for :func:`improve_paths`.

    Two things about a request never change between improve calls: the
    sorted edge union of any (current, candidate) path pair — and where
    each path's edges land inside it — and the union of *all* its
    candidate-path edges (the only loads a re-evaluation of that request
    can read).  Metis calls ``improve_paths`` ``maa_rounds * theta`` times
    over shrinking subsets of one request population, so a memo shared
    across those calls pays the ``np.unique``/``searchsorted`` cost once
    per (request, path-pair) ever.

    Passing a memo also switches on dirty-edge skipping *within* a call
    (see :func:`improve_paths`).  A memo is only valid across instances
    that share ``path_edges`` arrays by identity — exactly what
    :meth:`~repro.core.instance.SPMInstance.restrict` chains guarantee;
    never share one across unrelated instances.
    """

    __slots__ = ("_unions", "_touch")

    def __init__(self) -> None:
        self._unions: dict[tuple, tuple] = {}
        self._touch: dict[int, np.ndarray] = {}

    def union(self, instance: SPMInstance, rid: int, cur: int, cand: int):
        """``(affected, cur_pos, cand_pos)`` for a path-pair evaluation."""
        key = (rid, cur, cand)
        entry = self._unions.get(key)
        if entry is None:
            cur_edges = instance.path_edges[rid][cur]
            cand_edges = instance.path_edges[rid][cand]
            affected = np.unique(np.concatenate([cur_edges, cand_edges]))
            entry = (
                affected,
                np.searchsorted(affected, cur_edges),
                np.searchsorted(affected, cand_edges),
            )
            self._unions[key] = entry
        return entry

    def touch_edges(self, instance: SPMInstance, rid: int) -> np.ndarray:
        """Every edge any candidate path of ``rid`` can load."""
        arr = self._touch.get(rid)
        if arr is None:
            arr = np.unique(np.concatenate(instance.path_edges[rid]))
            self._touch[rid] = arr
        return arr


def improve_paths(
    instance: SPMInstance,
    assignment: dict[int, int | None],
    *,
    max_passes: int = 5,
    memo: ImproveMemo | None = None,
) -> dict[int, int | None]:
    """Greedy path-reassignment descent on the charged-bandwidth cost.

    Not part of Algorithm 1 — a practical post-pass used inside Metis: for
    each assigned request in turn, try each alternate candidate path and
    keep the move iff the total integer-charged cost strictly decreases.
    Loops until a fixpoint or ``max_passes`` full sweeps.  Returns a new
    assignment; the input is not mutated.

    Candidate moves are evaluated *without mutating* the shared load
    matrix: the affected rows are copied, the move applied to the copy in
    the same operation order a real move uses, and the charged costs
    compared.  Only an accepted move touches ``loads``.  Evaluations
    therefore depend solely on the current loads of the request's own
    candidate edges — which makes the following sound:

    With a ``memo``, requests whose candidate-edge neighborhood has not
    changed since their last evaluation are skipped.  A skipped request
    would re-derive byte-for-byte the same deltas from byte-for-byte the
    same loads and reach the same "no move" decision, so the descent
    trajectory — every move, every sweep, the final assignment — is
    identical to the exhaustive scan.  In the typical Metis profile the
    final sweep is a full no-op, and dirty-skipping eliminates almost all
    of it.

    Complexity is ``O(max_passes * K * L * h * T)`` where ``h`` bounds path
    length — the dominant non-LP cost of the Metis inner loop.
    """
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    assignment = dict(assignment)
    loads = instance.loads(assignment)
    prices = instance.prices

    def cost_of(edge_indices: np.ndarray) -> float:
        peaks = loads[edge_indices].max(axis=1)
        return float(
            (prices[edge_indices] * np.ceil(peaks - 1e-9).clip(min=0)).sum()
        )

    track = memo is not None
    if track:
        # Edge-modification clock: version[e] is the tick of the last move
        # touching edge e; stamps[rid] is the clock when rid was last
        # evaluated.  A request is clean iff none of its candidate edges
        # moved since — its own accepted move bumps its edges, so a moved
        # request always re-evaluates next sweep.
        version = np.zeros(instance.num_edges, dtype=np.int64)
        stamps: dict[int, int] = {}
        tick = 0

    for _ in range(max_passes):
        changed = False
        for req in instance.requests:
            rid = req.request_id
            current = assignment[rid]
            if current is None or instance.num_paths(rid) < 2:
                continue
            if track:
                stamp = stamps.get(rid)
                if stamp is not None:
                    touch = memo.touch_edges(instance, rid)
                    if not touch.size or version[touch].max() <= stamp:
                        continue
                stamps[rid] = tick
            window = slice(req.start, req.end + 1)
            cur_edges = instance.path_edges[rid][current]
            rate = req.rate
            best_path = current
            best_delta = -1e-12
            for candidate in range(instance.num_paths(rid)):
                if candidate == current:
                    continue
                if memo is not None:
                    affected, cur_pos, cand_pos = memo.union(
                        instance, rid, current, candidate
                    )
                else:
                    cand_edges = instance.path_edges[rid][candidate]
                    affected = np.unique(
                        np.concatenate([cur_edges, cand_edges])
                    )
                    cur_pos = np.searchsorted(affected, cur_edges)
                    cand_pos = np.searchsorted(affected, cand_edges)
                before = cost_of(affected)
                block = loads[affected]
                block[cur_pos, window] -= rate
                block[cand_pos, window] += rate
                peaks = block.max(axis=1)
                after = float(
                    (prices[affected] * np.ceil(peaks - 1e-9).clip(min=0)).sum()
                )
                delta = after - before
                if delta < best_delta:
                    best_delta = delta
                    best_path = candidate
            if best_path != current:
                new_edges = instance.path_edges[rid][best_path]
                loads[cur_edges, window] -= rate
                loads[new_edges, window] += rate
                assignment[rid] = best_path
                changed = True
                if track:
                    tick += 1
                    version[cur_edges] = tick
                    version[new_edges] = tick
        if not changed:
            break
    return assignment
