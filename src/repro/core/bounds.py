"""Instance-level approximation-ratio bounds (Theorems 2, 4 and 6).

The paper's guarantees are stated in instance parameters (``alpha``, the
minimum positive fractional bandwidth; ``|E|``; the Chernoff floor
``I_B``).  This module evaluates them for a concrete instance/run so the
test-suite — and a user — can check *empirically* that every observed
ratio sits inside its proven bound:

* :func:`ceiling_ratio_bound` — Theorem 2's ``(alpha+1)/alpha`` bound on
  the ceiling stage of MAA;
* :func:`maa_ratio_bound` — Theorem 4's combined
  ``(alpha+1)/alpha * log|E|/log log|E|`` bound (the asymptotic constant
  is taken as 1, so this is the bound's *shape*, exact enough for
  monotonicity and dominance checks);
* :func:`taa_certificate` — Theorem 6's revenue floor for a TAA run, with
  the observed revenue for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.maa import MAAResult
from repro.core.taa import TAAResult

__all__ = [
    "ceiling_ratio_bound",
    "maa_ratio_bound",
    "BoundReport",
    "maa_bound_report",
    "taa_certificate",
]


def ceiling_ratio_bound(alpha: float) -> float:
    """Theorem 2: the ceiling stage is within ``(alpha+1)/alpha`` of fractional.

    ``alpha`` is the minimum positive fractional bandwidth ``min c_hat_e``;
    ``alpha <= 0`` yields an unbounded (infinite) ratio, matching the
    theorem's premise that some positive bandwidth exists.
    """
    if alpha <= 0:
        return math.inf
    return (alpha + 1.0) / alpha


def maa_ratio_bound(alpha: float, num_edges: int) -> float:
    """Theorem 4's bound shape: ``(alpha+1)/alpha * log|E| / log log|E|``.

    For ``|E| <= e`` the ``log log`` term degenerates; the rounding factor
    is floored at 1 (a sub-logarithmic edge count cannot *help* beyond the
    fractional optimum).
    """
    if num_edges < 1:
        raise ValueError(f"num_edges must be >= 1, got {num_edges}")
    log_e = math.log(num_edges)
    rounding_factor = 1.0
    if log_e > 1.0:
        rounding_factor = max(1.0, log_e / math.log(log_e))
    return ceiling_ratio_bound(alpha) * rounding_factor


@dataclass(frozen=True)
class BoundReport:
    """Observed ratio vs its proven bound for one MAA run."""

    observed_ratio: float
    ceiling_bound: float
    combined_bound: float

    @property
    def within_bound(self) -> bool:
        return self.observed_ratio <= self.combined_bound + 1e-9


def maa_bound_report(result: MAAResult, num_edges: int) -> BoundReport:
    """Check one MAA run against Theorems 2/4.

    The observed ratio is rounded-cost over the LP optimum — a *stricter*
    denominator than the theorems' (which compare against the integer
    optimum), so ``within_bound`` is a conservative check.
    """
    if result.fractional_cost <= 0:
        observed = 1.0
    else:
        observed = result.cost / result.fractional_cost
    return BoundReport(
        observed_ratio=observed,
        ceiling_bound=ceiling_ratio_bound(result.alpha),
        combined_bound=maa_ratio_bound(result.alpha, num_edges),
    )


@dataclass(frozen=True)
class TAACertificate:
    """Theorem 6's certificate for one TAA run."""

    certified: bool
    revenue_floor: float
    observed_revenue: float
    relaxation_revenue: float

    @property
    def floor_respected(self) -> bool:
        """Revenue >= floor whenever the certificate applies."""
        if not self.certified:
            return True
        return self.observed_revenue >= self.revenue_floor - 1e-9

    @property
    def gap_to_relaxation(self) -> float:
        """Observed revenue as a fraction of the LP upper bound."""
        if self.relaxation_revenue <= 0:
            return 1.0
        return self.observed_revenue / self.relaxation_revenue


def taa_certificate(result: TAAResult) -> TAACertificate:
    """Package a TAA run's Theorem 6 certificate for inspection."""
    return TAACertificate(
        certified=result.certified,
        revenue_floor=result.revenue_floor,
        observed_revenue=result.revenue,
        relaxation_revenue=result.relaxation_revenue,
    )
