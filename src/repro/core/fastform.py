"""Array-native compilation of the offline SPM formulations.

The expression-layer builders in :mod:`repro.core.formulations` are the
readable reference, but every Metis alternation round rebuilds the RL-SPM
and BL-SPM relaxations from scratch through dict-backed
:class:`~repro.lp.expr.LinExpr` rows — a quadruple Python loop over
requests × paths × edges × slots per model.  :class:`FormulationCompiler`
is the offline counterpart of the serving layer's
:class:`~repro.core.online.IncrementalBatchCompiler`: it precomputes each
request's (path, edge, slot) incidence triplets once per instance and then
emits the RL-SPM, BL-SPM and full-SPM compiled models with vectorized
numpy assembly, reusing :func:`repro.lp.fastbuild.compile_coo`.

The fast build mirrors the reference build's row order (per-request rows
first, capacity rows in first-appearance order), column order (x columns
in request/path order, then c columns in edge order) and float arithmetic
exactly, so both hand HiGHS *bitwise-identical* matrices — asserted
matrix-by-matrix in ``tests/test_core_fastform.py``.

Between Metis rounds the request set only shrinks and the capacities only
tighten, so the compiler additionally caches each assembled structure per
(model kind, active-request tuple): a repeat solve over the same request
set reuses the cached sparse matrix and — for BL-SPM, whose capacities
enter solely through the capacity-row right-hand sides — rewrites only
``row_upper``.  A shrunken request set re-assembles from the precomputed
per-request arrays (a column/row masking of the parent's incidence) rather
than re-running the Python incidence loops.

Compiled models built here carry no symbolic variables; solve them with
:func:`repro.lp.solvers.solve_compiled_raw` and read path weights from the
raw column vector via :attr:`CompiledFormulation.x_offsets`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ModelError
from repro.lp.fastbuild import compile_coo, with_row_upper
from repro.lp.model import CompiledModel
from repro.lp.warmstart import ResolveSession

__all__ = ["CompiledFormulation", "FormulationCompiler"]

EdgeKey = tuple

#: Assembled structures kept per compiler; Metis revisits at most the
#: current round's request set, so a small window captures every reuse.
_STRUCTURE_CACHE_SIZE = 16


@dataclass(frozen=True)
class CompiledFormulation:
    """A compiled model plus the array maps back to problem entities.

    ``x_offsets`` has one entry per request plus a sentinel: request ``i``
    (in instance order) owns solution columns
    ``x_offsets[i]:x_offsets[i + 1]``, one per candidate path in path
    order.  For RL-SPM and full SPM the integer/continuous ``c`` columns
    for all edges follow the x block, exactly as in the reference build.

    ``cap_edges``/``cap_slots`` give, per capacity row (in row order), the
    directed-edge index and slot it constrains.  ``entry_terms``,
    ``entry_x_cols`` and ``entries_per_x`` expose the flattened incidence
    the rows were assembled from — per incidence entry its capacity-row
    rank and x column, and per x column its entry count (entries of one
    column are contiguous) — which the vectorized TAA estimator build
    reuses instead of re-walking paths.

    ``session`` is the :class:`~repro.lp.warmstart.ResolveSession` owned by
    the underlying cached structure: every formulation compiled from the
    same (kind, integrality, request set) shares one session, so a caller
    that routes its solve through it gets exact-repeat and certified-dual
    reuse across rounds for free.  Solving through
    :func:`~repro.lp.solvers.solve_compiled_raw` instead remains valid —
    the session is an optional accelerator, never required state.
    """

    compiled: CompiledModel
    request_ids: tuple
    x_offsets: np.ndarray
    num_choice_rows: int
    cap_edges: np.ndarray
    cap_slots: np.ndarray
    entry_terms: np.ndarray
    entry_x_cols: np.ndarray
    entries_per_x: np.ndarray
    session: ResolveSession | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_x(self) -> int:
        return int(self.x_offsets[-1])


class _Structure:
    """The capacity-independent part of one assembled formulation."""

    __slots__ = (
        "x_offsets",
        "num_choice_rows",
        "cap_edges",
        "cap_slots",
        "entry_terms",
        "entry_x_cols",
        "entries_per_x",
        "compiled",
        "choice_upper",
        "session",
    )

    def __init__(self, **fields) -> None:
        for name, value in fields.items():
            setattr(self, name, value)


class FormulationCompiler:
    """Array-native builder for RL-SPM, BL-SPM and full-SPM models.

    Obtain the cached compiler via
    :meth:`repro.core.instance.SPMInstance.formulation_compiler`; restricted
    instances share their parent's compiler (and hence its per-request
    incidence cache), so the θ-round shrink loop never recomputes
    incidence.  Every ``compile_*`` method takes the (possibly restricted)
    instance whose request set defines the model.
    """

    def __init__(self, instance) -> None:
        self.num_slots = int(instance.num_slots)
        self.num_edges = int(instance.num_edges)
        self.prices = np.asarray(instance.prices, dtype=float)
        self._topology = instance.topology
        self._edges = instance.edges
        self._c_upper: np.ndarray | None = None  # SPM ceilings, lazy
        #: rid -> (num_paths, keys, path_cols, rates, path_entry_counts, value)
        self._per_request: dict[int, tuple] = {}
        self._structures: OrderedDict[tuple, _Structure] = OrderedDict()
        self._ensure_requests(instance)

    # ---------------------------------------------------------- incidence

    def _ensure_requests(self, instance) -> None:
        """Cache the incidence arrays of every request of ``instance``.

        All missing requests are flattened in one batch of array ops: the
        cross product of each path edge with its request's slot window is
        laid out (entry-major, slot-minor) — the same nesting the
        expression builders walk, so first-appearance order of
        (edge, slot) keys (and hence cap-row order) matches — and the
        global arrays are then split back per request.
        """
        missing = [
            req
            for req in instance.requests
            if req.request_id not in self._per_request
        ]
        if not missing:
            return
        num_slots = self.num_slots
        per_path = [
            (req, edges)
            for req in missing
            for edges in instance.path_edges[req.request_id]
        ]
        path_sizes = np.array([edges.size for _, edges in per_path], dtype=np.int64)
        slots_per_path = np.array(
            [req.end - req.start + 1 for req, _ in per_path], dtype=np.int64
        )
        # Per path: its local index within its request, and per (path, edge)
        # entry: the edge index, request start and slot count.
        paths_per_req = np.array(
            [len(instance.path_edges[req.request_id]) for req in missing],
            dtype=np.int64,
        )
        path_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(paths_per_req)]
        )
        local_path = np.arange(path_starts[-1], dtype=np.int64) - np.repeat(
            path_starts[:-1], paths_per_req
        )
        entry_edge = (
            np.concatenate([edges for _, edges in per_path]).astype(np.int64)
            if per_path
            else np.zeros(0, dtype=np.int64)
        )
        entry_path = np.repeat(local_path, path_sizes)
        entry_slots = np.repeat(slots_per_path, path_sizes)
        entry_start = np.repeat(
            np.array([req.start for req, _ in per_path], dtype=np.int64),
            path_sizes,
        )
        # Expand each entry into its slot window.
        block_starts = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(entry_slots)]
        )
        within = np.arange(block_starts[-1], dtype=np.int64) - np.repeat(
            block_starts[:-1], entry_slots
        )
        keys_all = (
            np.repeat(entry_edge, entry_slots) * num_slots
            + np.repeat(entry_start, entry_slots)
            + within
        )
        path_cols_all = np.repeat(entry_path, entry_slots)
        rates_all = np.repeat(
            np.array([float(req.rate) for req, _ in per_path]),
            path_sizes * slots_per_path,
        )
        counts_all = path_sizes * slots_per_path  # per path, across requests

        # Split the flat arrays back per request.
        entries_per_path_req = np.add.reduceat(counts_all, path_starts[:-1])
        cuts = np.cumsum(entries_per_path_req)[:-1]
        keys_split = np.split(keys_all, cuts)
        cols_split = np.split(path_cols_all, cuts)
        rates_split = np.split(rates_all, cuts)
        counts_split = np.split(counts_all, path_starts[1:-1])
        for i, req in enumerate(missing):
            self._per_request[req.request_id] = (
                int(paths_per_req[i]),
                keys_split[i],
                cols_split[i],
                rates_split[i],
                counts_split[i],
                float(req.value),
            )

    def _spm_c_upper(self) -> np.ndarray:
        if self._c_upper is None:
            self._c_upper = np.array(
                [
                    float("inf") if ceiling is None else float(ceiling)
                    for ceiling in (
                        self._topology.capacity(*key) for key in self._edges
                    )
                ]
            )
        return self._c_upper

    # ----------------------------------------------------------- assembly

    def _structure(self, instance, kind: str, integral: bool) -> _Structure:
        rids = tuple(instance.requests.request_ids)
        key = (kind, integral, rids)
        cached = self._structures.get(key)
        if cached is not None:
            self._structures.move_to_end(key)
            return cached
        self._ensure_requests(instance)
        structure = self._assemble(rids, kind, integral)
        self._structures[key] = structure
        while len(self._structures) > _STRUCTURE_CACHE_SIZE:
            self._structures.popitem(last=False)
        return structure

    def _assemble(self, rids: tuple, kind: str, integral: bool) -> _Structure:
        num_slots, num_edges = self.num_slots, self.num_edges
        per = [self._per_request[rid] for rid in rids]
        num_requests = len(rids)

        paths_per_req = np.array([p[0] for p in per], dtype=np.int64)
        x_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(paths_per_req)]
        )
        num_x = int(x_offsets[-1])

        # Flattened incidence across the active requests (request-major,
        # path-major within a request, slot-minor within a path edge).
        entry_keys = (
            np.concatenate([p[1] for p in per])
            if per else np.zeros(0, dtype=np.int64)
        )
        entry_x_cols = (
            np.concatenate(
                [x_offsets[i] + per[i][2] for i in range(num_requests)]
            )
            if per else np.zeros(0, dtype=np.int64)
        )
        entry_data = (
            np.concatenate([p[3] for p in per]) if per else np.zeros(0)
        )
        entries_per_x = (
            np.concatenate([p[4] for p in per])
            if per else np.zeros(0, dtype=np.int64)
        )

        # Touched (edge, slot) pairs, ranked in first-appearance order —
        # the capacity-row order of the expression builders.
        uniq_keys, first_pos, inverse = np.unique(
            entry_keys, return_index=True, return_inverse=True
        )
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(appearance.size, dtype=np.int64)
        rank[appearance] = np.arange(appearance.size)
        entry_terms = rank[inverse]
        num_cap = uniq_keys.size
        cap_edges = (uniq_keys // num_slots)[appearance]
        cap_slots = (uniq_keys % num_slots)[appearance]

        # One per-request row (== 1 for RL, <= 1 otherwise), then the
        # capacity rows; RL/SPM couple each capacity row to its edge's c
        # column with a -1 coefficient.
        has_c = kind in ("rl", "spm")
        choice_rows = np.repeat(
            np.arange(num_requests, dtype=np.int64), paths_per_req
        )
        choice_cols = np.arange(num_x, dtype=np.int64)
        row_parts = [choice_rows, num_requests + entry_terms]
        col_parts = [choice_cols, entry_x_cols]
        data_parts = [np.ones(num_x), entry_data]
        if has_c:
            row_parts.append(
                num_requests + np.arange(num_cap, dtype=np.int64)
            )
            col_parts.append(num_x + cap_edges)
            data_parts.append(-np.ones(num_cap))

        num_rows = num_requests + num_cap
        num_vars = num_x + (num_edges if has_c else 0)
        row_lower = np.full(num_rows, -np.inf)
        row_upper = np.empty(num_rows)
        if kind == "rl":
            row_lower[:num_requests] = 1.0  # satisfy every request exactly
        row_upper[:num_requests] = 1.0
        # ``load <= c_var`` normalizes to rhs ``-0.0`` in the expression
        # layer (``-expr.constant`` with constant ``+0.0``); mirror the bit
        # pattern so the compiled arrays are memcmp-identical, not just
        # ``==``-equal.  BL overwrites this span with capacities.
        row_upper[num_requests:] = -0.0

        objective = np.zeros(num_vars)
        if kind != "rl":
            objective[:num_x] = np.repeat(
                np.array([p[5] for p in per]), paths_per_req
            )
        if kind == "rl":
            objective[num_x:] = self.prices
        elif kind == "spm":
            objective[num_x:] = -self.prices

        var_lower = np.zeros(num_vars)
        var_upper = np.empty(num_vars)
        var_upper[:num_x] = 1.0
        if has_c:
            var_upper[num_x:] = (
                self._spm_c_upper() if kind == "spm" else np.inf
            )
        integrality = (
            np.ones(num_vars, dtype=np.int8)
            if integral
            else np.zeros(num_vars, dtype=np.int8)
        )

        compiled = compile_coo(
            objective=objective,
            maximize=kind != "rl",
            rows=np.concatenate(row_parts),
            cols=np.concatenate(col_parts),
            data=np.concatenate(data_parts),
            num_rows=num_rows,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=var_lower,
            var_upper=var_upper,
            integrality=integrality,
            check=False,
        )
        return _Structure(
            x_offsets=x_offsets,
            num_choice_rows=num_requests,
            cap_edges=cap_edges,
            cap_slots=cap_slots,
            entry_terms=entry_terms,
            entry_x_cols=entry_x_cols,
            entries_per_x=entries_per_x,
            compiled=compiled,
            choice_upper=row_upper[:num_requests],
            session=None,
        )

    def _formulation(
        self, structure: _Structure, rids: tuple, compiled: CompiledModel
    ) -> CompiledFormulation:
        # One warm-start session per cached structure, created on first
        # compile and living exactly as long as the structure-cache entry:
        # every derivative model (``with_row_upper`` rewrites between
        # rounds) anchors to the same matrix, so the session's reuse tiers
        # apply across the whole shrink loop.
        if structure.session is None:
            structure.session = ResolveSession()
        return CompiledFormulation(
            compiled=compiled,
            session=structure.session,
            request_ids=rids,
            x_offsets=structure.x_offsets,
            num_choice_rows=structure.num_choice_rows,
            cap_edges=structure.cap_edges,
            cap_slots=structure.cap_slots,
            entry_terms=structure.entry_terms,
            entry_x_cols=structure.entry_x_cols,
            entries_per_x=structure.entries_per_x,
        )

    # ------------------------------------------------------------ builders

    def compile_rl_spm(
        self, instance, *, integral: bool = False
    ) -> CompiledFormulation:
        """RL-SPM: minimize cost while satisfying every request.

        Bitwise identical to compiling
        :func:`repro.core.formulations.build_rl_spm` on ``instance``.
        """
        structure = self._structure(instance, "rl", integral)
        return self._formulation(
            structure,
            tuple(instance.requests.request_ids),
            structure.compiled,
        )

    def compile_bl_spm(
        self,
        instance,
        capacities: dict[EdgeKey, int],
        *,
        integral: bool = False,
    ) -> CompiledFormulation:
        """BL-SPM: maximize revenue under fixed capacities.

        The capacities enter solely through the capacity-row right-hand
        sides, so a repeat compile over the same request set (the Metis
        shrink loop) reuses the cached matrix and rewrites only
        ``row_upper``.  Bitwise identical to compiling
        :func:`repro.core.formulations.build_bl_spm`.
        """
        missing = [key for key in self._edges if key not in capacities]
        if missing:
            raise ModelError(f"capacities missing for edges: {missing[:3]}...")
        structure = self._structure(instance, "bl", integral)
        caps = np.array(
            [float(capacities[self._edges[e]]) for e in structure.cap_edges]
        )
        # The expression layer normalizes ``load <= cap`` to
        # ``-(0.0 - cap)``, which is ``-0.0`` (not ``+0.0``) for
        # zero-capacity edges; replicate the exact bit pattern.
        row_upper = np.concatenate([structure.choice_upper, -(0.0 - caps)])
        compiled = with_row_upper(structure.compiled, row_upper)
        return self._formulation(
            structure, tuple(instance.requests.request_ids), compiled
        )

    def compile_spm(
        self, instance, *, integral: bool = True
    ) -> CompiledFormulation:
        """The full SPM: jointly choose acceptance, paths and bandwidth.

        Bitwise identical to compiling
        :func:`repro.core.formulations.build_spm` on ``instance``.
        """
        structure = self._structure(instance, "spm", integral)
        return self._formulation(
            structure,
            tuple(instance.requests.request_ids),
            structure.compiled,
        )

    # ----------------------------------------------------------- readback

    @staticmethod
    def weights_from_raw(
        formulation: CompiledFormulation, x: np.ndarray
    ) -> dict[int, list[float]]:
        """Per-request path weights straight from a raw solution vector.

        The array-native counterpart of
        :func:`repro.core.formulations.fractional_x`: weights are clipped
        into ``[0, 1]`` to absorb solver round-off, and returned keyed by
        request id in instance order.
        """
        clipped = np.clip(x[: formulation.num_x], 0.0, 1.0)
        offsets = formulation.x_offsets
        return {
            rid: clipped[offsets[i] : offsets[i + 1]].tolist()
            for i, rid in enumerate(formulation.request_ids)
        }
