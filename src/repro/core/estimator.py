"""Raghavan's pessimistic estimator for TAA's decision-tree walk (paper §IV).

TAA derandomizes the scaled randomized rounding of BL-SPM by walking a
K-level decision tree: level ``i`` fixes the choice of request ``i`` (one of
its ``L_i`` paths, or decline).  The walk is steered by ``u_root``, an upper
bound on the probability of reaching a *bad* leaf — one that either earns
revenue below the floor ``I_B`` or violates a link-capacity constraint.

The estimator is a sum of ``1 + |terms|`` products, one per bad event:

* the revenue lower-tail term
  ``exp(t0 * I_B) * prod_i E[exp(-t0 * v_i X_i)]`` where ``X_i`` indicates
  acceptance of request ``i``;
* one upper-tail term per (edge, slot) constraint,
  ``exp(-tc * c_e) * prod_i E[exp(tc * r_{i,t} I_{i,j,e})]``.

Fixing request ``i``'s choice replaces its expectation factor with the
realized factor.  Because each factor is the expectation of its realized
versions under the rounding distribution, choosing the branch that
minimizes the estimator can never increase it (the conditional-expectation
argument), and at a leaf the estimator is ``< 1`` only if no bad event
occurred: a violated capacity contributes ``exp(tc (load - c)) >= 1`` and a
revenue shortfall contributes ``exp(t0 (I_B - revenue)) > 1``.

The paper's printed ``u_root`` drops the per-request braces in the second
sum and reuses ``I_S`` where the bound needs the target ``I_B``; we
implement the standard (correct) estimator with the paper's parameter
choices — see DESIGN.md §5.

All arithmetic is in log space (``logsumexp`` across terms) so deep
products cannot underflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

__all__ = ["EstimatorTerm", "PessimisticEstimator"]

#: log(phi) is clipped here to keep zero-probability factors finite.
_LOG_FLOOR = -745.0  # just above log(min double)


@dataclass(frozen=True)
class EstimatorTerm:
    """One bad-event term: ``exp(log_const) * prod_i phi_i``."""

    name: str
    log_const: float


class PessimisticEstimator:
    """The sum-of-products estimator and its greedy tree walk.

    Parameters
    ----------
    num_requests:
        K, the tree depth.
    num_choices:
        per request, the number of branches (``L_i + 1``; the last branch is
        *decline* by convention).
    terms:
        the bad-event terms (term 0 is conventionally the revenue term).
    log_phi:
        array ``(K, M)`` with ``log E[factor]`` per request and term.
    choice_deltas:
        ``choice_deltas[i][b]`` is a list of ``(term_idx, log_factor)``
        pairs: fixing request ``i`` to branch ``b`` multiplies term
        ``term_idx`` by ``exp(log_factor)`` (unlisted terms keep factor 1).
    """

    def __init__(
        self,
        num_requests: int,
        num_choices: list[int],
        terms: list[EstimatorTerm],
        log_phi: np.ndarray,
        choice_deltas: list[list[list[tuple[int, float]]]],
    ) -> None:
        if log_phi.shape != (num_requests, len(terms)):
            raise ValueError(
                f"log_phi shape {log_phi.shape} != ({num_requests}, {len(terms)})"
            )
        if len(num_choices) != num_requests or len(choice_deltas) != num_requests:
            raise ValueError("per-request metadata length mismatch")
        self.num_requests = num_requests
        self.num_choices = num_choices
        self.terms = terms
        self.log_phi = np.clip(log_phi, _LOG_FLOOR, None)
        self.choice_deltas = choice_deltas
        self.log_consts = np.array([t.log_const for t in terms])

        # suffix[i] = sum of log_phi over requests i..K-1 (suffix[K] = 0).
        self._suffix = np.zeros((num_requests + 1, len(terms)))
        if num_requests:
            self._suffix[:-1] = np.cumsum(self.log_phi[::-1], axis=0)[::-1]

    # ----------------------------------------------------------------- values

    def initial_log_value(self) -> float:
        """``ln u_root`` before any choice is fixed."""
        return float(logsumexp(self.log_consts + self._suffix[0]))

    def _log_value(self, base: np.ndarray, deltas: list[tuple[int, float]]) -> float:
        if not deltas:
            return float(logsumexp(base))
        adjusted = base.copy()
        for term_idx, log_factor in deltas:
            adjusted[term_idx] += log_factor
        return float(logsumexp(adjusted))

    # ------------------------------------------------------------------ walk

    def walk(self) -> tuple[list[int], float]:
        """Greedily minimize the estimator level by level.

        Returns ``(choices, final_log_value)`` where ``choices[i]`` is the
        branch fixed for request ``i``.  By the conditional-expectation
        argument the estimator value is non-increasing along the walk; the
        final value is ``ln`` of the leaf estimator.
        """
        prefix = np.zeros(len(self.terms))
        choices: list[int] = []
        current = self.initial_log_value()
        for i in range(self.num_requests):
            base = self.log_consts + prefix + self._suffix[i + 1]
            best_branch = 0
            best_value = math.inf
            for branch in range(self.num_choices[i]):
                value = self._log_value(base, self.choice_deltas[i][branch])
                if value < best_value:
                    best_value = value
                    best_branch = branch
            choices.append(best_branch)
            for term_idx, log_factor in self.choice_deltas[i][best_branch]:
                prefix[term_idx] += log_factor
            current = best_value
        return choices, current
