"""Raghavan's pessimistic estimator for TAA's decision-tree walk (paper §IV).

TAA derandomizes the scaled randomized rounding of BL-SPM by walking a
K-level decision tree: level ``i`` fixes the choice of request ``i`` (one of
its ``L_i`` paths, or decline).  The walk is steered by ``u_root``, an upper
bound on the probability of reaching a *bad* leaf — one that either earns
revenue below the floor ``I_B`` or violates a link-capacity constraint.

The estimator is a sum of ``1 + |terms|`` products, one per bad event:

* the revenue lower-tail term
  ``exp(t0 * I_B) * prod_i E[exp(-t0 * v_i X_i)]`` where ``X_i`` indicates
  acceptance of request ``i``;
* one upper-tail term per (edge, slot) constraint,
  ``exp(-tc * c_e) * prod_i E[exp(tc * r_{i,t} I_{i,j,e})]``.

Fixing request ``i``'s choice replaces its expectation factor with the
realized factor.  Because each factor is the expectation of its realized
versions under the rounding distribution, choosing the branch that
minimizes the estimator can never increase it (the conditional-expectation
argument), and at a leaf the estimator is ``< 1`` only if no bad event
occurred: a violated capacity contributes ``exp(tc (load - c)) >= 1`` and a
revenue shortfall contributes ``exp(t0 (I_B - revenue)) > 1``.

The paper's printed ``u_root`` drops the per-request braces in the second
sum and reuses ``I_S`` where the bound needs the target ``I_B``; we
implement the standard (correct) estimator with the paper's parameter
choices — see DESIGN.md §5.

All arithmetic is in log space (``logsumexp`` across terms) so deep
products cannot underflow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import logsumexp

__all__ = ["EstimatorTerm", "PessimisticEstimator", "VectorizedEstimator"]

#: log(phi) is clipped here to keep zero-probability factors finite.
_LOG_FLOOR = -745.0  # just above log(min double)


def _logsumexp_rows(a: np.ndarray) -> np.ndarray:
    """Row-wise ``logsumexp`` for finite input, bitwise equal to scipy's.

    The walk calls ``logsumexp`` once per tree level on a small
    (branches × terms) matrix; scipy's public function spends more time in
    array-API dispatch than in arithmetic at that size.  This replays the
    exact operation sequence of ``scipy.special.logsumexp`` for the
    finite-real no-weights case — max elements separated out, shifted
    exponentials summed, ``log1p(s) + log(m) + a_max`` — so the results
    are bit-for-bit the same (asserted against the scipy-based reference
    walk by the fuzz tests).
    """
    a_max = np.max(a, axis=1, keepdims=True)
    mask = a == a_max
    m = np.sum(mask, axis=1, keepdims=True, dtype=a.dtype)
    s = np.sum(np.exp(np.where(mask, -np.inf, a) - a_max), axis=1, keepdims=True)
    s = np.where(s == 0, s, s / m)
    return (np.log1p(s) + np.log(m) + a_max)[:, 0]


@dataclass(frozen=True)
class EstimatorTerm:
    """One bad-event term: ``exp(log_const) * prod_i phi_i``."""

    name: str
    log_const: float


class PessimisticEstimator:
    """The sum-of-products estimator and its greedy tree walk.

    Parameters
    ----------
    num_requests:
        K, the tree depth.
    num_choices:
        per request, the number of branches (``L_i + 1``; the last branch is
        *decline* by convention).
    terms:
        the bad-event terms (term 0 is conventionally the revenue term).
    log_phi:
        array ``(K, M)`` with ``log E[factor]`` per request and term.
    choice_deltas:
        ``choice_deltas[i][b]`` is a list of ``(term_idx, log_factor)``
        pairs: fixing request ``i`` to branch ``b`` multiplies term
        ``term_idx`` by ``exp(log_factor)`` (unlisted terms keep factor 1).
    """

    def __init__(
        self,
        num_requests: int,
        num_choices: list[int],
        terms: list[EstimatorTerm],
        log_phi: np.ndarray,
        choice_deltas: list[list[list[tuple[int, float]]]],
    ) -> None:
        if log_phi.shape != (num_requests, len(terms)):
            raise ValueError(
                f"log_phi shape {log_phi.shape} != ({num_requests}, {len(terms)})"
            )
        if len(num_choices) != num_requests or len(choice_deltas) != num_requests:
            raise ValueError("per-request metadata length mismatch")
        self.num_requests = num_requests
        self.num_choices = num_choices
        self.terms = terms
        self.log_phi = np.clip(log_phi, _LOG_FLOOR, None)
        self.choice_deltas = choice_deltas
        self.log_consts = np.array([t.log_const for t in terms])

        # suffix[i] = sum of log_phi over requests i..K-1 (suffix[K] = 0).
        self._suffix = np.zeros((num_requests + 1, len(terms)))
        if num_requests:
            self._suffix[:-1] = np.cumsum(self.log_phi[::-1], axis=0)[::-1]

    # ----------------------------------------------------------------- values

    def initial_log_value(self) -> float:
        """``ln u_root`` before any choice is fixed."""
        return float(logsumexp(self.log_consts + self._suffix[0]))

    def _log_value(self, base: np.ndarray, deltas: list[tuple[int, float]]) -> float:
        if not deltas:
            return float(logsumexp(base))
        adjusted = base.copy()
        for term_idx, log_factor in deltas:
            adjusted[term_idx] += log_factor
        return float(logsumexp(adjusted))

    # ------------------------------------------------------------------ walk

    def walk(self) -> tuple[list[int], float]:
        """Greedily minimize the estimator level by level.

        Returns ``(choices, final_log_value)`` where ``choices[i]`` is the
        branch fixed for request ``i``.  By the conditional-expectation
        argument the estimator value is non-increasing along the walk; the
        final value is ``ln`` of the leaf estimator.
        """
        prefix = np.zeros(len(self.terms))
        choices: list[int] = []
        current = self.initial_log_value()
        for i in range(self.num_requests):
            base = self.log_consts + prefix + self._suffix[i + 1]
            best_branch = 0
            best_value = math.inf
            for branch in range(self.num_choices[i]):
                value = self._log_value(base, self.choice_deltas[i][branch])
                if value < best_value:
                    best_value = value
                    best_branch = branch
            choices.append(best_branch)
            for term_idx, log_factor in self.choice_deltas[i][best_branch]:
                prefix[term_idx] += log_factor
            current = best_value
        return choices, current


class VectorizedEstimator:
    """The same estimator and walk, CSR-encoded and array-evaluated.

    :class:`PessimisticEstimator` is the readable reference: per-request
    nested Python lists of ``(term, log_factor)`` deltas, each branch
    scored by copying the base vector and calling ``logsumexp`` once.  On
    B4-sized instances the walk alone is tens of thousands of small numpy
    calls.  This class stores the *same* deltas as one flat CSR structure
    (``delta_terms``/``delta_vals`` indexed by ``delta_ptr`` per branch,
    branches of request ``i`` at ``branch_offsets[i]:branch_offsets[i+1]``,
    decline last) and scores all branches of a request in one
    ``logsumexp`` over a (branches × terms) matrix.

    Every float operation is kept bitwise identical to the reference:
    deltas within a branch hit distinct terms, so the ``np.add.at``
    scatter reproduces the reference's sequential ``+=`` exactly;
    row-wise ``logsumexp(matrix, axis=1)`` matches per-row 1-D calls
    bitwise; and ``np.argmin``'s first-minimum convention matches the
    reference's strict ``<`` branch scan.  The fuzz tests assert exact
    float equality of ``initial_log_value``/``walk`` against the
    reference on random instances.
    """

    def __init__(
        self,
        num_requests: int,
        branch_offsets: np.ndarray,
        delta_ptr: np.ndarray,
        delta_terms: np.ndarray,
        delta_vals: np.ndarray,
        log_consts: np.ndarray,
        log_phi: np.ndarray,
    ) -> None:
        if branch_offsets.size != num_requests + 1:
            raise ValueError(
                f"branch_offsets sized {branch_offsets.size}, "
                f"expected {num_requests + 1}"
            )
        if log_phi.shape != (num_requests, log_consts.size):
            raise ValueError(
                f"log_phi shape {log_phi.shape} != "
                f"({num_requests}, {log_consts.size})"
            )
        self.num_requests = num_requests
        self.branch_offsets = branch_offsets
        self.delta_ptr = delta_ptr
        self.delta_terms = delta_terms
        self.delta_vals = delta_vals
        self.log_consts = log_consts
        self.log_phi = np.clip(log_phi, _LOG_FLOOR, None)
        # Branch-local row index of each delta, for the 2-D scatter.
        branch_sizes = np.diff(delta_ptr)
        local = np.arange(branch_offsets[-1], dtype=np.int64) - np.repeat(
            branch_offsets[:-1], np.diff(branch_offsets)
        )
        self._delta_rows = np.repeat(local, branch_sizes)

        self._suffix = np.zeros((num_requests + 1, log_consts.size))
        if num_requests:
            self._suffix[:-1] = np.cumsum(self.log_phi[::-1], axis=0)[::-1]

    def initial_log_value(self) -> float:
        """``ln u_root`` before any choice is fixed."""
        return float(logsumexp(self.log_consts + self._suffix[0]))

    def walk(self) -> tuple[list[int], float]:
        """Greedy walk; same contract (and bits) as the reference walk."""
        prefix = np.zeros(self.log_consts.size)
        choices: list[int] = []
        current = self.initial_log_value()
        for i in range(self.num_requests):
            base = self.log_consts + prefix + self._suffix[i + 1]
            b0 = int(self.branch_offsets[i])
            b1 = int(self.branch_offsets[i + 1])
            d0 = int(self.delta_ptr[b0])
            d1 = int(self.delta_ptr[b1])
            adjusted = np.repeat(base[None, :], b1 - b0, axis=0)
            np.add.at(
                adjusted,
                (self._delta_rows[d0:d1], self.delta_terms[d0:d1]),
                self.delta_vals[d0:d1],
            )
            values = _logsumexp_rows(adjusted)
            best = int(np.argmin(values))
            choices.append(best)
            s0 = int(self.delta_ptr[b0 + best])
            s1 = int(self.delta_ptr[b0 + best + 1])
            np.add.at(
                prefix, self.delta_terms[s0:s1], self.delta_vals[s0:s1]
            )
            current = float(values[best])
        return choices, current
