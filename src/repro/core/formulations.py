"""LP/ILP formulations of SPM and its two variants (paper §II-B).

Decision variables follow the paper's notation:

* ``x[i, j]`` — request ``i`` flows over its ``j``-th candidate path
  (binary in the exact problems, relaxed to ``[0, 1]`` by the
  approximation algorithms);
* ``c[e]`` — integer units of bandwidth purchased on directed edge ``e``
  (continuous in relaxations).

Builders return a :class:`FormulatedProblem` bundling the
:class:`~repro.lp.model.Model` with the variable maps so callers can read
solutions back in problem terms.

Capacity constraints are generated *sparsely*: a ``(e, t)`` row is emitted
only when at least one candidate path of an active request crosses ``e`` at
slot ``t`` — empty rows are trivially satisfied with ``c_e = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.instance import SPMInstance
from repro.exceptions import ModelError
from repro.lp.expr import LinExpr, Variable
from repro.lp.model import Model
from repro.lp.result import Solution

__all__ = [
    "FormulatedProblem",
    "build_rl_spm",
    "build_bl_spm",
    "build_spm",
    "fractional_x",
    "assignment_from_solution",
]

EdgeKey = tuple


@dataclass
class FormulatedProblem:
    """A model plus the maps from problem entities to its variables."""

    model: Model
    x_vars: dict[tuple[int, int], Variable]
    c_vars: dict[int, Variable]
    instance: SPMInstance


def _edge_slot_terms(
    instance: SPMInstance,
    x_vars: dict[tuple[int, int], Variable],
) -> dict[tuple[int, int], LinExpr]:
    """Load expressions ``sum_i sum_j r_{i,t} x_{i,j} I_{i,j,e}`` per (edge, slot).

    Only (edge, slot) pairs with at least one term are returned.
    """
    terms: dict[tuple[int, int], LinExpr] = {}
    for req in instance.requests:
        for path_idx in range(instance.num_paths(req.request_id)):
            var = x_vars[(req.request_id, path_idx)]
            for edge_idx in instance.path_edges[req.request_id][path_idx]:
                for t in req.slots:
                    key = (int(edge_idx), t)
                    expr = terms.get(key)
                    if expr is None:
                        expr = LinExpr()
                        terms[key] = expr
                    expr.terms[var] = expr.terms.get(var, 0.0) + req.rate
    return terms


def _add_path_vars(
    model: Model, instance: SPMInstance, *, integral: bool
) -> dict[tuple[int, int], Variable]:
    x_vars = {}
    for req in instance.requests:
        for path_idx in range(instance.num_paths(req.request_id)):
            name = f"x_{req.request_id}_{path_idx}"
            if integral:
                x_vars[(req.request_id, path_idx)] = model.add_binary(name)
            else:
                x_vars[(req.request_id, path_idx)] = model.add_var(name, 0.0, 1.0)
    return x_vars


def build_rl_spm(instance: SPMInstance, *, integral: bool = False) -> FormulatedProblem:
    """Request-limited SPM: minimize cost while satisfying *every* request.

    Constraint (1) tightens to ``sum_j x_{i,j} = 1`` (all given requests are
    accepted); constraint (2) couples loads to the purchased bandwidth
    ``c_e``; the objective is ``min sum_e u_e c_e``.

    ``integral=True`` builds the exact ILP (binary ``x``, integer ``c``) —
    the paper's OPT(RL-SPM); ``integral=False`` builds the LP relaxation MAA
    starts from.
    """
    model = Model("rl-spm" + ("-ilp" if integral else "-lp"))
    x_vars = _add_path_vars(model, instance, integral=integral)
    c_vars = {
        edge_idx: model.add_var(f"c_{edge_idx}", 0.0, is_integer=integral)
        for edge_idx in range(instance.num_edges)
    }

    for req in instance.requests:
        row = sum(
            x_vars[(req.request_id, j)]
            for j in range(instance.num_paths(req.request_id))
        )
        model.add_constr(row == 1, name=f"satisfy_{req.request_id}")

    for (edge_idx, t), load in _edge_slot_terms(instance, x_vars).items():
        model.add_constr(load <= c_vars[edge_idx], name=f"cap_{edge_idx}_{t}")

    cost = sum(
        float(instance.prices[edge_idx]) * var for edge_idx, var in c_vars.items()
    )
    model.set_objective(cost, maximize=False)
    return FormulatedProblem(model, x_vars, c_vars, instance)


def build_bl_spm(
    instance: SPMInstance,
    capacities: dict[EdgeKey, int],
    *,
    integral: bool = False,
) -> FormulatedProblem:
    """Bandwidth-limited SPM: maximize revenue under fixed capacities.

    ``capacities`` maps every directed edge key to its fixed bandwidth (in
    integer units).  Requests may be declined (``sum_j x_{i,j} <= 1``).
    """
    missing = [key for key in instance.edges if key not in capacities]
    if missing:
        raise ModelError(f"capacities missing for edges: {missing[:3]}...")
    model = Model("bl-spm" + ("-ilp" if integral else "-lp"))
    x_vars = _add_path_vars(model, instance, integral=integral)

    for req in instance.requests:
        row = sum(
            x_vars[(req.request_id, j)]
            for j in range(instance.num_paths(req.request_id))
        )
        model.add_constr(row <= 1, name=f"choice_{req.request_id}")

    for (edge_idx, t), load in _edge_slot_terms(instance, x_vars).items():
        cap = capacities[instance.edges[edge_idx]]
        model.add_constr(load <= float(cap), name=f"cap_{edge_idx}_{t}")

    revenue = LinExpr()
    for req in instance.requests:
        for j in range(instance.num_paths(req.request_id)):
            var = x_vars[(req.request_id, j)]
            revenue.terms[var] = revenue.terms.get(var, 0.0) + req.value
    model.set_objective(revenue, maximize=True)
    return FormulatedProblem(model, x_vars, {}, instance)


def build_spm(instance: SPMInstance, *, integral: bool = True) -> FormulatedProblem:
    """The full SPM: jointly choose acceptance, paths and bandwidth.

    ``max sum_i v_i sum_j x_{i,j} - sum_e u_e c_e`` subject to constraints
    (1)-(4).  ``integral=True`` is the exact problem (OPT(SPM)).  Capacity
    ceilings recorded on the topology (if any) bound ``c_e``.
    """
    model = Model("spm" + ("-ilp" if integral else "-lp"))
    x_vars = _add_path_vars(model, instance, integral=integral)
    c_vars = {}
    for edge_idx, key in enumerate(instance.edges):
        ceiling = instance.topology.capacity(*key)
        upper = float("inf") if ceiling is None else float(ceiling)
        c_vars[edge_idx] = model.add_var(
            f"c_{edge_idx}", 0.0, upper, is_integer=integral
        )

    for req in instance.requests:
        row = sum(
            x_vars[(req.request_id, j)]
            for j in range(instance.num_paths(req.request_id))
        )
        model.add_constr(row <= 1, name=f"choice_{req.request_id}")

    for (edge_idx, t), load in _edge_slot_terms(instance, x_vars).items():
        model.add_constr(load <= c_vars[edge_idx], name=f"cap_{edge_idx}_{t}")

    profit = LinExpr()
    for req in instance.requests:
        for j in range(instance.num_paths(req.request_id)):
            var = x_vars[(req.request_id, j)]
            profit.terms[var] = profit.terms.get(var, 0.0) + req.value
    for edge_idx, var in c_vars.items():
        profit.terms[var] = profit.terms.get(var, 0.0) - float(
            instance.prices[edge_idx]
        )
    model.set_objective(profit, maximize=True)
    return FormulatedProblem(model, x_vars, c_vars, instance)


def fractional_x(
    problem: FormulatedProblem, solution: Solution
) -> dict[int, list[float]]:
    """Read the (possibly fractional) path weights per request.

    Returns ``{request_id: [x_{i,1}, ..., x_{i,L_i}]}``, clipped into
    ``[0, 1]`` to absorb solver round-off.
    """
    result = {}
    for req in problem.instance.requests:
        weights = []
        for j in range(problem.instance.num_paths(req.request_id)):
            value = solution.values[problem.x_vars[(req.request_id, j)]]
            weights.append(min(1.0, max(0.0, float(value))))
        result[req.request_id] = weights
    return result


def assignment_from_solution(
    problem: FormulatedProblem, solution: Solution, *, tol: float = 1e-6
) -> dict[int, int | None]:
    """Read an integral solution back as an assignment map.

    Raises :class:`~repro.exceptions.ModelError` if any ``x`` is fractional
    beyond ``tol`` — use :func:`fractional_x` for relaxations.
    """
    assignment: dict[int, int | None] = {}
    for req in problem.instance.requests:
        chosen = None
        for j in range(problem.instance.num_paths(req.request_id)):
            value = solution.values[problem.x_vars[(req.request_id, j)]]
            if value > 1 - tol:
                if chosen is not None:
                    raise ModelError(
                        f"request {req.request_id}: multiple paths selected"
                    )
                chosen = j
            elif value > tol:
                raise ModelError(
                    f"request {req.request_id}: fractional x[{j}] = {value:.6f}"
                )
        assignment[req.request_id] = chosen
    return assignment
