"""Metis — the alternating SPM framework (paper §II-C, Fig. 1).

Metis couples the two variant solvers through six modules:

* **Input/Output** — the :class:`~repro.core.instance.SPMInstance` in, the
  best (acceptance, schedule, bandwidth) decision out;
* **RL-SPM Solver** — :func:`~repro.core.maa.solve_maa`, minimizing cost
  for the currently accepted requests;
* **BW Limiter** — a provider-chosen rule ``tau`` shrinking the purchased
  bandwidth; the paper's rule (reduce the link with minimum average
  utilization) is :class:`MinUtilizationLimiter`;
* **BL-SPM Solver** — :func:`~repro.core.taa.solve_taa`, maximizing revenue
  under the shrunken bandwidth, declining requests that no longer fit;
* **SP Updater** — keeps the best service profit seen across the
  alternation, initialized at zero (accept nothing, buy nothing).

Each round runs BW Limiter -> TAA -> (shrink the request set) -> MAA; the
loop stops after ``theta`` rounds, when every request has been declined, or
when the limiter cannot shrink further.  Because TAA only ever *declines*
requests, the candidate set is non-increasing and the alternation needs at
most K effective rounds (paper's convergence remark).

Beyond the paper, every MAA schedule additionally spawns a *pruned*
candidate for the SP Updater: requests whose bid is below the bandwidth
cost their removal would save are dropped, cheapest first, until a
fixpoint (:func:`prune_unprofitable`).  This only adds candidate
decisions — the alternation itself proceeds exactly as the paper
describes — and covers the regime where purchased units are mostly
singletons, which the capacity-squeezing loop explores too slowly.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.maa import ImproveMemo, improve_paths, solve_maa
from repro.core.schedule import Schedule
from repro.core.taa import solve_taa
from repro.util.rng import ensure_rng

__all__ = [
    "BandwidthLimiter",
    "MinUtilizationLimiter",
    "ProportionalLimiter",
    "MetisRecord",
    "MetisRound",
    "MetisOutcome",
    "Metis",
    "prune_unprofitable",
]


def prune_unprofitable(instance: SPMInstance, schedule: Schedule) -> Schedule:
    """Iteratively decline requests whose bid is below their marginal cost.

    A request's marginal cost is the bandwidth spend its removal would
    free: for every edge of its path, the price times the drop in
    ``ceil(peak load)`` once its window's load is removed.  Requests are
    examined cheapest-bid first and removal repeats until no request's
    marginal cost exceeds its bid.  Returns a new schedule; the input is
    untouched.  Profit never decreases: each removal changes profit by
    ``saving - value > 0``.
    """
    assignment = dict(schedule.assignment)
    loads = schedule.loads.copy()
    prices = instance.prices

    def marginal_saving(req, path_idx: int) -> float:
        window = slice(req.start, req.end + 1)
        edge_indices = instance.path_edges[req.request_id][path_idx]
        before = np.ceil(loads[edge_indices].max(axis=1) - 1e-9).clip(min=0)
        loads[edge_indices, window] -= req.rate
        after = np.ceil(loads[edge_indices].max(axis=1) - 1e-9).clip(min=0)
        loads[edge_indices, window] += req.rate
        return float((prices[edge_indices] * (before - after)).sum())

    # Sort once; later passes walk the same order skipping removed
    # entries.  Stable sort of the survivors equals the survivor
    # subsequence of this list, so the examination sequence — and hence
    # the removal set — is identical to re-sorting every pass.
    order = sorted(
        (
            instance.request(rid)
            for rid, path_idx in assignment.items()
            if path_idx is not None
        ),
        key=lambda r: r.value,
    )
    while True:
        removed_any = False
        for req in order:
            path_idx = assignment[req.request_id]
            if path_idx is None:
                continue
            if marginal_saving(req, path_idx) > req.value:
                window = slice(req.start, req.end + 1)
                edge_indices = instance.path_edges[req.request_id][path_idx]
                loads[edge_indices, window] -= req.rate
                assignment[req.request_id] = None
                removed_any = True
        if not removed_any:
            return Schedule(instance, assignment)

EdgeKey = tuple


class BandwidthLimiter(ABC):
    """The BW Limiter rule ``tau`` (pluggable, provider-defined)."""

    @abstractmethod
    def limit(
        self,
        instance: SPMInstance,
        schedule: Schedule,
        capacities: dict[EdgeKey, int],
    ) -> dict[EdgeKey, int] | None:
        """Return shrunken capacities, or ``None`` when exhausted.

        Implementations must not mutate ``capacities``.
        """


class MinUtilizationLimiter(BandwidthLimiter):
    """The paper's default ``tau``: shrink the least-utilized link.

    Average utilization of a link is its mean load over the cycle divided
    by its current bandwidth; the link with the minimum is reduced by
    ``step`` units (not below zero).  Returns ``None`` once no link has
    positive bandwidth left.
    """

    def __init__(self, step: int = 1) -> None:
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.step = step

    def limit(
        self,
        instance: SPMInstance,
        schedule: Schedule,
        capacities: dict[EdgeKey, int],
    ) -> dict[EdgeKey, int] | None:
        mean_loads = schedule.loads.mean(axis=1)
        caps = np.array(
            [capacities.get(key, 0) for key in instance.edges], dtype=float
        )
        positive = caps > 0.0
        if not positive.any():
            return None
        # argmin's first-minimum convention preserves the deterministic
        # tie-break of the scalar scan: the lowest edge index wins.
        utils = np.full(caps.size, math.inf)
        utils[positive] = mean_loads[positive] / caps[positive]
        best_key = instance.edges[int(np.argmin(utils))]
        shrunk = dict(capacities)
        shrunk[best_key] = max(0, shrunk[best_key] - self.step)
        return shrunk


class ProportionalLimiter(BandwidthLimiter):
    """Alternative ``tau``: scale every link down by ``factor``.

    Capacities shrink to ``floor(cap * factor)``; to guarantee progress, if
    rounding changes nothing the largest link is reduced by one unit.
    """

    def __init__(self, factor: float = 0.9) -> None:
        if not (0 < factor < 1):
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.factor = factor

    def limit(
        self,
        instance: SPMInstance,
        schedule: Schedule,
        capacities: dict[EdgeKey, int],
    ) -> dict[EdgeKey, int] | None:
        if all(capacities.get(key, 0) <= 0 for key in instance.edges):
            return None
        shrunk = {
            key: int(math.floor(capacities.get(key, 0) * self.factor))
            for key in capacities
        }
        if shrunk == dict(capacities):
            largest = max(capacities, key=lambda k: capacities[k])
            shrunk[largest] = max(0, shrunk[largest] - 1)
        return shrunk


@dataclass
class MetisRecord:
    """A candidate decision tracked by the SP Updater."""

    profit: float
    schedule: Schedule | None
    capacities: dict[EdgeKey, int] = field(default_factory=dict)
    source: str = "init"
    round_index: int = 0

    @property
    def revenue(self) -> float:
        return self.schedule.revenue if self.schedule else 0.0

    @property
    def cost(self) -> float:
        return self.schedule.cost if self.schedule else 0.0

    @property
    def num_accepted(self) -> int:
        return self.schedule.num_accepted if self.schedule else 0


@dataclass
class MetisRound:
    """Telemetry of one alternation round."""

    round_index: int
    candidate_requests: int
    taa_accepted: int
    taa_profit: float
    maa_profit: float | None
    total_capacity: int


@dataclass
class MetisOutcome:
    """The framework's output: the best decision plus the round history."""

    best: MetisRecord
    rounds: list[MetisRound]
    initial_profit: float

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)


class Metis:
    """The alternating framework; tune ``theta`` (rounds) and ``tau`` (limiter).

    ``maa_rounds`` repeats MAA's randomized rounding and keeps the cheapest
    outcome (the paper's Fig. 4b repeats the rounding the same way);
    ``local_search=True`` additionally runs the greedy path-reassignment
    descent of :func:`~repro.core.maa.improve_paths` on each rounding —
    both only ever lower the recorded cost.  ``time_limit`` (seconds) bounds
    every LP relaxation solve inside MAA/TAA, so a serving loop can put a
    hard ceiling on one Metis invocation's solver time; by default a
    limit-hit relaxation raises (the paper's guarantees are stated against
    true LP optima), while ``accept_feasible=True`` lets MAA/TAA proceed
    from limit-hit incumbents instead.  ``fast_path`` (default) runs
    MAA/TAA on the array-native formulation compiler and vectorized
    estimator; the outcome is bit-identical to the expression-layer
    reference (``fast_path=False``), which is kept as the equivalence
    oracle.

    ``warm_start`` (default, fast path only) reuses work across the
    alternation's structurally-identical re-solves: RL/BL relaxations go
    through per-structure :class:`~repro.lp.warmstart.ResolveSession`
    caches (exact repeats and certified-dual capacity shrinks skip the
    solver), and the local-search descent shares an
    :class:`~repro.core.maa.ImproveMemo` so unchanged requests are never
    re-evaluated.  Both reuse tiers are certified, so the outcome is
    bit-identical to ``warm_start=False`` — the cold path is kept as the
    equivalence oracle and the performance baseline.
    """

    def __init__(
        self,
        theta: int = 10,
        limiter: BandwidthLimiter | None = None,
        *,
        maa_rounds: int = 3,
        local_search: bool = True,
        prune: bool = True,
        time_limit: float | None = None,
        accept_feasible: bool = False,
        fast_path: bool = True,
        warm_start: bool = True,
    ) -> None:
        if theta < 1:
            raise ValueError(f"theta must be >= 1, got {theta}")
        if maa_rounds < 1:
            raise ValueError(f"maa_rounds must be >= 1, got {maa_rounds}")
        if time_limit is not None and time_limit <= 0:
            raise ValueError(f"time_limit must be > 0, got {time_limit}")
        self.theta = theta
        self.limiter = limiter if limiter is not None else MinUtilizationLimiter()
        self.maa_rounds = maa_rounds
        self.local_search = local_search
        self.prune = prune
        self.time_limit = time_limit
        self.accept_feasible = accept_feasible
        self.fast_path = fast_path
        self.warm_start = warm_start and fast_path

    def _best_maa_schedule(
        self,
        instance: SPMInstance,
        rng: np.random.Generator,
        memo: ImproveMemo | None,
    ) -> Schedule:
        best: Schedule | None = None
        for _ in range(self.maa_rounds):
            candidate = solve_maa(
                instance,
                rng=rng,
                time_limit=self.time_limit,
                accept_feasible=self.accept_feasible,
                fast_path=self.fast_path,
                warm_start=self.warm_start,
            ).schedule
            if self.local_search:
                improved = improve_paths(
                    instance, candidate.assignment, memo=memo
                )
                candidate = Schedule(instance, improved)
            if best is None or candidate.cost < best.cost:
                best = candidate
        return best

    def solve(
        self,
        instance: SPMInstance,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> MetisOutcome:
        """Run the alternation and return the SP Updater's best decision.

        The SP Updater starts at profit zero (accept nothing); if every
        candidate decision loses money the returned best has
        ``schedule=None`` and zero profit — the provider's rational choice.
        """
        gen = ensure_rng(rng)
        best = MetisRecord(profit=0.0, schedule=None, source="init")
        rounds: list[MetisRound] = []
        # One improve-memo per solve: every restricted instance in the
        # alternation shares the parent's path_edges arrays, which is the
        # memo's validity condition.
        memo = ImproveMemo() if self.warm_start and self.local_search else None

        def offer(candidate: Schedule, source: str, round_index: int) -> Schedule:
            """SP Updater: record ``candidate`` (and its pruning) if better.

            Returns the pruned version (identical to the input when pruning
            is off or removed nothing) so callers can continue the
            alternation from the dominating schedule.
            """
            nonlocal best
            versions = [(candidate, source)]
            if self.prune:
                pruned = prune_unprofitable(candidate.instance, candidate)
                if pruned.num_accepted != candidate.num_accepted:
                    versions.append((pruned, f"{source}+prune"))
            for sched, src in versions:
                if sched.profit > best.profit:
                    best = MetisRecord(
                        profit=sched.profit,
                        schedule=sched,
                        capacities={
                            key: int(units) for key, units in sched.charged.items()
                        },
                        source=src,
                        round_index=round_index,
                    )
            return versions[-1][0]

        if instance.num_requests == 0:
            return MetisOutcome(best=best, rounds=rounds, initial_profit=0.0)

        # Initialization: accept every request, schedule with MAA.
        schedule = self._best_maa_schedule(instance, gen, memo)
        initial_profit = schedule.profit
        schedule = offer(schedule, "maa", 0)
        capacities = {key: int(units) for key, units in schedule.charged.items()}

        current = instance
        if self.prune and schedule.declined_ids:
            current = instance.restrict(schedule.accepted_ids)
        for round_index in range(1, self.theta + 1):
            shrunk = self.limiter.limit(current, schedule, capacities)
            if shrunk is None:
                break
            capacities = shrunk

            taa = solve_taa(
                current,
                capacities,
                time_limit=self.time_limit,
                accept_feasible=self.accept_feasible,
                fast_path=self.fast_path,
                warm_start=self.warm_start,
            )
            taa_profit = taa.schedule.profit
            offer(taa.schedule, "taa", round_index)

            accepted = taa.accepted_ids
            maa_profit: float | None = None
            if accepted:
                current = current.restrict(accepted)
                schedule = self._best_maa_schedule(current, gen, memo)
                maa_profit = schedule.profit
                schedule = offer(schedule, "maa", round_index)
                if self.prune and schedule.declined_ids:
                    current = current.restrict(schedule.accepted_ids)
                # The next limiting step starts from what MAA actually uses,
                # never more than the current limit.
                capacities = {
                    key: min(capacities[key], int(schedule.charged[key]))
                    for key in capacities
                }

            rounds.append(
                MetisRound(
                    round_index=round_index,
                    candidate_requests=current.num_requests,
                    taa_accepted=len(accepted),
                    taa_profit=taa_profit,
                    maa_profit=maa_profit,
                    total_capacity=sum(capacities.values()),
                )
            )
            if not accepted:
                break

        return MetisOutcome(best=best, rounds=rounds, initial_profit=initial_profit)
