"""The paper's contribution: SPM, its two variants, MAA, TAA and Metis.

* :class:`SPMInstance` — a concrete service-profit-maximization instance
  (topology + requests + pre-enumerated candidate paths ``P_i``);
* :mod:`repro.core.formulations` — LP/ILP builders for SPM, RL-SPM, BL-SPM;
* :class:`Schedule` — a path assignment with revenue/cost/profit accounting;
* :func:`solve_maa` — the Multistage Approximation Algorithm (RL-SPM);
* :func:`solve_taa` — the Tree-based Approximation Algorithm (BL-SPM);
* :class:`Metis` — the alternating framework combining both;
* :mod:`repro.core.hardness` — the SUBSET-SUM -> SPM reduction of Thm. 1.
"""

from repro.core.instance import SPMInstance
from repro.core.fastform import CompiledFormulation, FormulationCompiler
from repro.core.schedule import Schedule
from repro.core.maa import MAAResult, solve_maa
from repro.core.chernoff import chernoff_upper_bound, chernoff_lower_bound, invert_lower_bound, select_mu
from repro.core.taa import TAAResult, solve_taa
from repro.core.metis import (
    BandwidthLimiter,
    Metis,
    MetisOutcome,
    MinUtilizationLimiter,
    ProportionalLimiter,
)
from repro.core.hardness import spm_from_subset_sum, subset_from_solution
from repro.core.online import (
    BatchDecision,
    IncrementalBatchCompiler,
    OnlineOutcome,
    OnlineScheduler,
    decide_batch,
    solve_batch,
)
from repro.core.flexible import FlexibleResult, flexibility_gain, solve_flexible_spm
from repro.core.bounds import (
    BoundReport,
    ceiling_ratio_bound,
    maa_bound_report,
    maa_ratio_bound,
    taa_certificate,
)

__all__ = [
    "SPMInstance",
    "CompiledFormulation",
    "FormulationCompiler",
    "Schedule",
    "MAAResult",
    "solve_maa",
    "chernoff_upper_bound",
    "chernoff_lower_bound",
    "invert_lower_bound",
    "select_mu",
    "TAAResult",
    "solve_taa",
    "Metis",
    "MetisOutcome",
    "BandwidthLimiter",
    "MinUtilizationLimiter",
    "ProportionalLimiter",
    "spm_from_subset_sum",
    "subset_from_solution",
    "OnlineOutcome",
    "OnlineScheduler",
    "BatchDecision",
    "IncrementalBatchCompiler",
    "decide_batch",
    "solve_batch",
    "FlexibleResult",
    "solve_flexible_spm",
    "flexibility_gain",
    "BoundReport",
    "ceiling_ratio_bound",
    "maa_ratio_bound",
    "maa_bound_report",
    "taa_certificate",
]
