"""Online SPM: deciding sealed bids slot by slot (extension).

The paper evaluates the *offline* problem — all bids for a billing cycle
are known before any decision.  Its operational story (first-price
sealed-bid requests submitted to the provider) equally supports an online
reading: bids arrive over the cycle and each must be accepted (with a
path) or declined when its window starts, irrevocably.  This module
implements that variant on top of the same substrate:

* at each slot ``t`` the provider faces the batch of requests starting at
  ``t``, with the loads and integer bandwidth of earlier commitments sunk;
* the batch decision is made *exactly* by an incremental MILP: maximize
  batch revenue minus the cost of the **extra** bandwidth units forced
  beyond what is already purchased (:func:`build_incremental_spm`) — the
  integer charging makes "ride an already-paid unit" free, which is what
  distinguishes this from EcoFlow's one-request-at-a-time greedy;
* the final accounting charges each edge the ceiling of its realized peak
  load, exactly like the offline solutions, so online and offline profits
  are directly comparable.

The online provider is myopic across slots (it cannot see future bids),
so its profit is upper-bounded by offline OPT(SPM); the tests assert this
dominance and the exactness of each batch step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError
from repro.lp.expr import LinExpr
from repro.lp.model import Model
from repro.lp.result import SolveStatus

__all__ = [
    "OnlineOutcome",
    "OnlineScheduler",
    "build_incremental_spm",
    "decide_batch",
    "commit_decision",
]

EdgeKey = tuple

_CEIL_TOL = 1e-9


def build_incremental_spm(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
):
    """The incremental MILP for one arrival batch.

    Decision variables: ``x[i, j]`` (binary path choice per batch request)
    and integer ``extra[e] >= 0``, the bandwidth units purchased beyond the
    already-charged ``charged[e]``.  Constraints couple the committed plus
    batch load at every (edge, slot) to ``charged[e] + extra[e]``; the
    objective is batch revenue minus the price of the extra units.

    Returns ``(model, x_vars, extra_vars)``.
    """
    model = Model("incremental-spm")
    x_vars = {}
    for request_id in batch_ids:
        for path_idx in range(instance.num_paths(request_id)):
            x_vars[(request_id, path_idx)] = model.add_binary(
                f"x_{request_id}_{path_idx}"
            )
    extra_vars = {
        edge_idx: model.add_var(f"extra_{edge_idx}", 0.0, is_integer=True)
        for edge_idx in range(instance.num_edges)
    }

    for request_id in batch_ids:
        row = sum(
            x_vars[(request_id, j)]
            for j in range(instance.num_paths(request_id))
        )
        model.add_constr(row <= 1, name=f"choice_{request_id}")

    # Sparse (edge, slot) rows: only where a batch path adds load.
    touched: dict[tuple[int, int], LinExpr] = {}
    for request_id in batch_ids:
        req = instance.request(request_id)
        for path_idx in range(instance.num_paths(request_id)):
            var = x_vars[(request_id, path_idx)]
            for edge_idx in instance.path_edges[request_id][path_idx]:
                for t in req.slots:
                    key = (int(edge_idx), t)
                    expr = touched.get(key)
                    if expr is None:
                        expr = LinExpr()
                        touched[key] = expr
                    expr.terms[var] = expr.terms.get(var, 0.0) + req.rate

    for (edge_idx, t), load_expr in touched.items():
        headroom = float(charged[edge_idx] - committed_loads[edge_idx, t])
        model.add_constr(
            load_expr - extra_vars[edge_idx] <= headroom,
            name=f"cap_{edge_idx}_{t}",
        )

    objective = LinExpr()
    for request_id in batch_ids:
        req = instance.request(request_id)
        for path_idx in range(instance.num_paths(request_id)):
            var = x_vars[(request_id, path_idx)]
            objective.terms[var] = objective.terms.get(var, 0.0) + req.value
    for edge_idx, var in extra_vars.items():
        objective.terms[var] = objective.terms.get(var, 0.0) - float(
            instance.prices[edge_idx]
        )
    model.set_objective(objective, maximize=True)
    return model, x_vars, extra_vars


def decide_batch(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
) -> list[int | None]:
    """Decide one arrival batch exactly; chosen path index per batch position.

    Solves the incremental MILP of :func:`build_incremental_spm` and reads
    the path choice (or ``None`` = declined) for every request of
    ``batch_ids``, in order.  State arrays are not mutated — apply the
    returned decision with :func:`commit_decision`.  The pure
    state-in/decision-out shape is what lets :mod:`repro.service` cache
    decisions and ship them across solver worker processes.
    """
    model, x_vars, _ = build_incremental_spm(
        instance, batch_ids, committed_loads, charged
    )
    solution = model.solve(time_limit=time_limit, check_cancelled=check_cancelled)
    if solution.status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("incremental batch MILP infeasible")
    if not solution.is_optimal:
        raise SolverError(
            f"batch MILP did not reach optimality: {solution.status}"
        )

    decision: list[int | None] = []
    for request_id in batch_ids:
        chosen = None
        for path_idx in range(instance.num_paths(request_id)):
            if solution.values[x_vars[(request_id, path_idx)]] > 0.5:
                chosen = path_idx
                break
        decision.append(chosen)
    return decision


def commit_decision(
    instance: SPMInstance,
    batch_ids: list[int],
    decision: list[int | None],
    committed_loads: np.ndarray,
    charged: np.ndarray,
) -> int:
    """Apply a batch decision to the running state; returns accepted count.

    ``committed_loads`` gains the accepted requests' window loads and
    ``charged`` is raised to the ceiling of each touched edge's new peak —
    the same integer-unit accounting the offline solutions use.
    """
    accepted = 0
    for request_id, chosen in zip(batch_ids, decision):
        if chosen is None:
            continue
        accepted += 1
        req = instance.request(request_id)
        edge_idx = instance.path_edges[request_id][chosen]
        committed_loads[edge_idx, req.start : req.end + 1] += req.rate
        peaks = committed_loads[edge_idx].max(axis=1)
        charged[edge_idx] = np.maximum(
            charged[edge_idx], np.ceil(peaks - _CEIL_TOL)
        )
    return accepted


@dataclass
class OnlineOutcome:
    """The result of an online run: final schedule plus per-slot telemetry."""

    schedule: Schedule
    decisions_per_slot: list[tuple[int, int, int]] = field(default_factory=list)
    """Per slot: (slot, batch size, accepted count)."""

    @property
    def profit(self) -> float:
        return self.schedule.profit

    @property
    def revenue(self) -> float:
        return self.schedule.revenue

    @property
    def num_accepted(self) -> int:
        return self.schedule.num_accepted


class OnlineScheduler:
    """Slot-by-slot exact-incremental admission.

    ``time_limit`` bounds each batch MILP (they are small — one slot's
    arrivals); a timed-out batch raises rather than guessing.
    """

    def __init__(self, *, time_limit: float | None = 60.0) -> None:
        self.time_limit = time_limit

    def run(self, instance: SPMInstance) -> OnlineOutcome:
        """Process every arrival batch in slot order and return the outcome."""
        assignment: dict[int, int | None] = {}
        committed_loads = np.zeros((instance.num_edges, instance.num_slots))
        charged = np.zeros(instance.num_edges)
        decisions: list[tuple[int, int, int]] = []

        by_start: dict[int, list[int]] = {}
        for req in instance.requests:
            by_start.setdefault(req.start, []).append(req.request_id)

        for slot in range(instance.num_slots):
            batch = by_start.get(slot, [])
            if not batch:
                continue
            accepted = self._decide_batch(
                instance, batch, committed_loads, charged, assignment
            )
            decisions.append((slot, len(batch), accepted))

        schedule = Schedule(instance, assignment)
        return OnlineOutcome(schedule=schedule, decisions_per_slot=decisions)

    def _decide_batch(
        self,
        instance: SPMInstance,
        batch: list[int],
        committed_loads: np.ndarray,
        charged: np.ndarray,
        assignment: dict[int, int | None],
    ) -> int:
        decision = decide_batch(
            instance, batch, committed_loads, charged, time_limit=self.time_limit
        )
        assignment.update(zip(batch, decision))
        return commit_decision(instance, batch, decision, committed_loads, charged)
