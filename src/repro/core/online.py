"""Online SPM: deciding sealed bids slot by slot (extension).

The paper evaluates the *offline* problem — all bids for a billing cycle
are known before any decision.  Its operational story (first-price
sealed-bid requests submitted to the provider) equally supports an online
reading: bids arrive over the cycle and each must be accepted (with a
path) or declined when its window starts, irrevocably.  This module
implements that variant on top of the same substrate:

* at each slot ``t`` the provider faces the batch of requests starting at
  ``t``, with the loads and integer bandwidth of earlier commitments sunk;
* the batch decision is made *exactly* by an incremental MILP: maximize
  batch revenue minus the cost of the **extra** bandwidth units forced
  beyond what is already purchased (:func:`build_incremental_spm`) — the
  integer charging makes "ride an already-paid unit" free, which is what
  distinguishes this from EcoFlow's one-request-at-a-time greedy;
* the final accounting charges each edge the ceiling of its realized peak
  load, exactly like the offline solutions, so online and offline profits
  are directly comparable.

The batch MILP is built two ways.  :func:`build_incremental_spm` is the
readable reference: dict-backed :class:`~repro.lp.expr.LinExpr` rows
compiled per constraint.  :class:`IncrementalBatchCompiler` is the hot
path: it precomputes each request's (path, edge, slot) incidence arrays
once per instance and then emits the *identical* compiled sparse model
per batch with vectorized numpy assembly — only the right-hand sides
(residual headroom) change between batches.  Both produce the same
matrix, so decisions are bitwise identical; the equivalence tests assert
it.

The online provider is myopic across slots (it cannot see future bids),
so its profit is upper-bounded by offline OPT(SPM); the tests assert this
dominance and the exactness of each batch step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule
from repro.exceptions import InfeasibleError, SolverError, SolverTimeoutError
from repro.lp.expr import LinExpr
from repro.lp.fastbuild import compile_coo
from repro.lp.model import CompiledModel, Model
from repro.lp.result import SolveStatus
from repro.lp.solvers import solve_compiled_raw
from repro.lp.warmstart import relax

__all__ = [
    "OnlineOutcome",
    "OnlineScheduler",
    "BatchDecision",
    "IncrementalBatchCompiler",
    "build_incremental_spm",
    "solve_batch",
    "decide_batch",
    "commit_decision",
]

EdgeKey = tuple

_CEIL_TOL = 1e-9


def build_incremental_spm(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
):
    """The incremental MILP for one arrival batch (reference implementation).

    Decision variables: ``x[i, j]`` (binary path choice per batch request)
    and integer ``extra[e] >= 0``, the bandwidth units purchased beyond the
    already-charged ``charged[e]``.  Constraints couple the committed plus
    batch load at every (edge, slot) to ``charged[e] + extra[e]``; the
    objective is batch revenue minus the price of the extra units.

    This is the expression-layer build the fast path
    (:class:`IncrementalBatchCompiler`) is verified against.  Returns
    ``(model, x_vars, extra_vars)``.
    """
    model = Model("incremental-spm")
    x_vars = {}
    for request_id in batch_ids:
        for path_idx in range(instance.num_paths(request_id)):
            x_vars[(request_id, path_idx)] = model.add_binary(
                f"x_{request_id}_{path_idx}"
            )
    extra_vars = {
        edge_idx: model.add_var(f"extra_{edge_idx}", 0.0, is_integer=True)
        for edge_idx in range(instance.num_edges)
    }

    for request_id in batch_ids:
        row = sum(
            x_vars[(request_id, j)]
            for j in range(instance.num_paths(request_id))
        )
        model.add_constr(row <= 1, name=f"choice_{request_id}")

    # Sparse (edge, slot) rows: only where a batch path adds load.
    touched: dict[tuple[int, int], LinExpr] = {}
    for request_id in batch_ids:
        req = instance.request(request_id)
        for path_idx in range(instance.num_paths(request_id)):
            var = x_vars[(request_id, path_idx)]
            for edge_idx in instance.path_edges[request_id][path_idx]:
                for t in req.slots:
                    key = (int(edge_idx), t)
                    expr = touched.get(key)
                    if expr is None:
                        expr = LinExpr()
                        touched[key] = expr
                    expr.terms[var] = expr.terms.get(var, 0.0) + req.rate

    for (edge_idx, t), load_expr in touched.items():
        headroom = float(charged[edge_idx] - committed_loads[edge_idx, t])
        model.add_constr(
            load_expr - extra_vars[edge_idx] <= headroom,
            name=f"cap_{edge_idx}_{t}",
        )

    objective = LinExpr()
    for request_id in batch_ids:
        req = instance.request(request_id)
        for path_idx in range(instance.num_paths(request_id)):
            var = x_vars[(request_id, path_idx)]
            objective.terms[var] = objective.terms.get(var, 0.0) + req.value
    for edge_idx, var in extra_vars.items():
        objective.terms[var] = objective.terms.get(var, 0.0) - float(
            instance.prices[edge_idx]
        )
    model.set_objective(objective, maximize=True)
    return model, x_vars, extra_vars


class IncrementalBatchCompiler:
    """Array-native builder for the incremental batch MILP.

    Per instance (once): every request's flattened (path, edge) × slot
    incidence — for each candidate path, each edge it crosses, each active
    slot — as three parallel arrays: the ``edge * T + slot`` key, the local
    path index (the request's x-column offset) and the rate coefficient.
    Obtain the cached compiler via
    :meth:`repro.core.instance.SPMInstance.batch_compiler`.

    Per batch (:meth:`compile_batch`): concatenate the cached arrays of the
    batch's requests, rank the touched (edge, slot) keys in first-appearance
    order, and emit the compiled sparse model whose rows, columns, and
    coefficients are *identical* to compiling
    :func:`build_incremental_spm` — only assembled with vectorized numpy
    instead of per-term Python.  The per-batch state (``committed_loads``,
    ``charged``) enters solely through the cap-row right-hand sides.
    """

    def __init__(self, instance: SPMInstance) -> None:
        self.instance = instance
        num_slots = instance.num_slots
        #: request_id -> (num_paths, pair_keys, pair_path_cols, pair_rates, value)
        self._per_request: dict[int, tuple] = {}
        for req in instance.requests:
            rid = req.request_id
            path_edges = instance.path_edges[rid]
            entry_path = np.concatenate(
                [
                    np.full(edges.size, j, dtype=np.int64)
                    for j, edges in enumerate(path_edges)
                ]
            )
            entry_edge = np.concatenate(path_edges).astype(np.int64)
            slots = np.arange(req.start, req.end + 1, dtype=np.int64)
            # Cross product in (entry-major, slot-minor) order — the same
            # nesting the expression build walks, so first-appearance order
            # of (edge, slot) keys (and hence cap-row order) matches.
            keys = np.repeat(entry_edge, slots.size) * num_slots + np.tile(
                slots, entry_edge.size
            )
            cols = np.repeat(entry_path, slots.size)
            rates = np.full(keys.size, float(req.rate))
            self._per_request[rid] = (
                len(path_edges), keys, cols, rates, float(req.value)
            )

    def compile_batch(
        self,
        batch_ids: list[int],
        committed_loads: np.ndarray,
        charged: np.ndarray,
    ) -> tuple[CompiledModel, np.ndarray]:
        """Compile one batch's MILP; returns ``(compiled, x_offsets)``.

        ``x_offsets`` has ``len(batch_ids) + 1`` entries: request ``i`` of
        the batch owns x-columns ``x_offsets[i]:x_offsets[i + 1]``, one per
        candidate path in path order.  The ``extra`` columns for all edges
        follow the x block, exactly as in the reference build.
        """
        instance = self.instance
        num_slots = instance.num_slots
        num_edges = instance.num_edges
        per = [self._per_request[rid] for rid in batch_ids]
        num_batch = len(batch_ids)

        paths_per_req = np.array([p[0] for p in per], dtype=np.int64)
        x_offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(paths_per_req)]
        )
        num_x = int(x_offsets[-1])

        # One <= 1 choice row per batch request, coefficient 1 per path.
        choice_rows = np.repeat(np.arange(num_batch, dtype=np.int64), paths_per_req)
        choice_cols = np.arange(num_x, dtype=np.int64)

        # Touched (edge, slot) pairs across the batch, first-appearance rank.
        pair_keys = np.concatenate([p[1] for p in per])
        pair_cols = np.concatenate(
            [x_offsets[i] + per[i][2] for i in range(num_batch)]
        )
        pair_data = np.concatenate([p[3] for p in per])
        uniq_keys, first_pos, inverse = np.unique(
            pair_keys, return_index=True, return_inverse=True
        )
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(appearance.size, dtype=np.int64)
        rank[appearance] = np.arange(appearance.size)
        num_cap = uniq_keys.size
        cap_edges = (uniq_keys // num_slots)[appearance]
        cap_slots = (uniq_keys % num_slots)[appearance]

        # Each cap row also carries -1 on its edge's integer extra column.
        rows = np.concatenate(
            [
                choice_rows,
                num_batch + rank[inverse],
                num_batch + np.arange(num_cap, dtype=np.int64),
            ]
        )
        cols = np.concatenate(
            [choice_cols, pair_cols, num_x + cap_edges]
        )
        data = np.concatenate(
            [np.ones(num_x), pair_data, -np.ones(num_cap)]
        )

        num_rows = num_batch + num_cap
        row_upper = np.empty(num_rows)
        row_upper[:num_batch] = 1.0
        row_upper[num_batch:] = charged[cap_edges] - committed_loads[cap_edges, cap_slots]
        row_lower = np.full(num_rows, -np.inf)

        num_vars = num_x + num_edges
        objective = np.empty(num_vars)
        objective[:num_x] = np.repeat(
            np.array([p[4] for p in per]), paths_per_req
        )
        objective[num_x:] = -instance.prices

        var_upper = np.empty(num_vars)
        var_upper[:num_x] = 1.0
        var_upper[num_x:] = np.inf

        compiled = compile_coo(
            objective=objective,
            maximize=True,
            rows=rows,
            cols=cols,
            data=data,
            num_rows=num_rows,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=np.zeros(num_vars),
            var_upper=var_upper,
            integrality=np.ones(num_vars, dtype=np.int8),
            check=False,
        )
        return compiled, x_offsets


@dataclass(frozen=True)
class BatchDecision:
    """A decided batch: path choice per position plus solve provenance.

    ``suboptimal`` flags a decision read from a limit-hit incumbent
    (status ``FEASIBLE``): still a valid, capacity-respecting decision,
    just without an optimality certificate.  ``screened`` marks a batch
    decided by the LP bound alone (see :func:`solve_batch`'s
    ``lp_screen``): the relaxation proved no acceptance can beat
    declining everything, so the all-decline decision carries a full
    optimality certificate without an integer solve — status ``OPTIMAL``,
    cacheable like any exact decision.
    """

    choices: tuple
    status: SolveStatus
    objective: float
    screened: bool = False

    @property
    def suboptimal(self) -> bool:
        return self.status is SolveStatus.FEASIBLE


def solve_batch(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
    accept_feasible: bool = True,
    fast_path: bool = True,
    lp_screen: bool = False,
) -> BatchDecision:
    """Decide one arrival batch; the full-provenance form of :func:`decide_batch`.

    With ``fast_path`` (default) the MILP is assembled by the instance's
    cached :class:`IncrementalBatchCompiler`; otherwise by the reference
    expression build — the two are decision-identical.  With
    ``accept_feasible`` (default) a solve that hits ``time_limit`` with an
    incumbent returns it as a valid (possibly suboptimal) decision; set it
    ``False`` for strict raise-on-non-optimal semantics.

    ``lp_screen`` (fast path only) solves the batch model's LP relaxation
    first and skips the integer solve when its bound certifies that no
    acceptance can be profitable.  The screen is *sound*, never
    heuristic: declining everything is always feasible at objective 0
    (the capacity rows' headroom is non-negative by the charged-units
    invariant), so the MILP optimum is ``>= 0``; the relaxation optimum
    is an upper bound on it; hence a relaxation bound ``<= 0`` pins the
    MILP optimum to exactly 0 and all-decline is optimal.  A bound above
    0 falls through to the normal integer solve — screening never changes
    a decision's objective, only the price paid for hopeless batches
    (the relaxation solves in a fraction of the MILP's time).

    Raises :class:`~repro.exceptions.SolverTimeoutError` when the limit is
    hit with no usable incumbent, so callers (the broker) can decline the
    batch instead of crashing.
    """
    if fast_path:
        compiled, x_offsets = instance.batch_compiler().compile_batch(
            batch_ids, committed_loads, charged
        )
        if lp_screen:
            bound = solve_compiled_raw(
                relax(compiled),
                time_limit=time_limit,
                check_cancelled=check_cancelled,
            )
            if bound.status is SolveStatus.OPTIMAL and bound.objective <= 0.0:
                return BatchDecision(
                    choices=(None,) * len(batch_ids),
                    status=SolveStatus.OPTIMAL,
                    objective=0.0,
                    screened=True,
                )
        raw = solve_compiled_raw(
            compiled, time_limit=time_limit, check_cancelled=check_cancelled
        )
        status, objective = raw.status, raw.objective
        extract = lambda: _choices_from_x(raw.x, x_offsets)  # noqa: E731
    else:
        model, x_vars, _ = build_incremental_spm(
            instance, batch_ids, committed_loads, charged
        )
        solution = model.solve(
            time_limit=time_limit, check_cancelled=check_cancelled
        )
        status, objective = solution.status, solution.objective
        extract = lambda: _choices_from_values(  # noqa: E731
            instance, batch_ids, solution.values, x_vars
        )

    if status is SolveStatus.INFEASIBLE:
        raise InfeasibleError("incremental batch MILP infeasible")
    if status is SolveStatus.OPTIMAL or (
        accept_feasible and status is SolveStatus.FEASIBLE
    ):
        return BatchDecision(choices=extract(), status=status, objective=objective)
    if status in (SolveStatus.TIME_LIMIT, SolveStatus.FEASIBLE):
        raise SolverTimeoutError(
            f"batch MILP hit its time limit ({status.value}, "
            f"accept_feasible={accept_feasible})"
        )
    raise SolverError(f"batch MILP did not reach optimality: {status}")


def _choices_from_x(x: np.ndarray, x_offsets: np.ndarray) -> tuple:
    """Read per-request path choices from the raw fast-path solution."""
    chosen = np.round(x[: x_offsets[-1]]) > 0.5
    choices = []
    for lo, hi in zip(x_offsets[:-1], x_offsets[1:]):
        hit = np.flatnonzero(chosen[lo:hi])
        choices.append(int(hit[0]) if hit.size else None)
    return tuple(choices)


def _choices_from_values(
    instance: SPMInstance, batch_ids: list[int], values: dict, x_vars: dict
) -> tuple:
    """Read per-request path choices from the expression-path solution."""
    choices = []
    for request_id in batch_ids:
        chosen = None
        for path_idx in range(instance.num_paths(request_id)):
            if values[x_vars[(request_id, path_idx)]] > 0.5:
                chosen = path_idx
                break
        choices.append(chosen)
    return tuple(choices)


def decide_batch(
    instance: SPMInstance,
    batch_ids: list[int],
    committed_loads: np.ndarray,
    charged: np.ndarray,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
    accept_feasible: bool = True,
    fast_path: bool = True,
    lp_screen: bool = False,
) -> list[int | None]:
    """Decide one arrival batch; chosen path index (or ``None``) per position.

    Thin list-returning wrapper over :func:`solve_batch` (same keyword
    semantics, including the sound ``lp_screen`` relaxation-bound skip).
    State arrays are not mutated — apply the returned decision
    with :func:`commit_decision`.  The pure state-in/decision-out shape is
    what lets :mod:`repro.service` cache decisions and ship them across
    solver worker processes.
    """
    decision = solve_batch(
        instance,
        batch_ids,
        committed_loads,
        charged,
        time_limit=time_limit,
        check_cancelled=check_cancelled,
        accept_feasible=accept_feasible,
        fast_path=fast_path,
        lp_screen=lp_screen,
    )
    return list(decision.choices)


def commit_decision(
    instance: SPMInstance,
    batch_ids: list[int],
    decision: list[int | None],
    committed_loads: np.ndarray,
    charged: np.ndarray,
) -> int:
    """Apply a batch decision to the running state; returns accepted count.

    ``committed_loads`` gains the accepted requests' window loads and
    ``charged`` is raised to the ceiling of each touched edge's new peak —
    the same integer-unit accounting the offline solutions use.
    """
    accepted = 0
    for request_id, chosen in zip(batch_ids, decision):
        if chosen is None:
            continue
        accepted += 1
        req = instance.request(request_id)
        edge_idx = instance.path_edges[request_id][chosen]
        committed_loads[edge_idx, req.start : req.end + 1] += req.rate
        peaks = committed_loads[edge_idx].max(axis=1)
        charged[edge_idx] = np.maximum(
            charged[edge_idx], np.ceil(peaks - _CEIL_TOL)
        )
    return accepted


@dataclass
class OnlineOutcome:
    """The result of an online run: final schedule plus per-slot telemetry."""

    schedule: Schedule
    decisions_per_slot: list[tuple[int, int, int]] = field(default_factory=list)
    """Per slot: (slot, batch size, accepted count)."""

    @property
    def profit(self) -> float:
        return self.schedule.profit

    @property
    def revenue(self) -> float:
        return self.schedule.revenue

    @property
    def num_accepted(self) -> int:
        return self.schedule.num_accepted


class OnlineScheduler:
    """Slot-by-slot exact-incremental admission.

    ``time_limit`` bounds each batch MILP (they are small — one slot's
    arrivals); a limit-hit batch keeps its feasible incumbent when one
    exists and raises :class:`~repro.exceptions.SolverTimeoutError`
    otherwise, rather than guessing.  ``fast_path`` selects the
    array-native model build (default; decision-identical to the
    expression build).  ``lp_screen`` enables the sound relaxation-bound
    skip of :func:`solve_batch` for every batch; ``screened_batches``
    counts how many batches it answered.
    """

    def __init__(
        self,
        *,
        time_limit: float | None = 60.0,
        fast_path: bool = True,
        lp_screen: bool = False,
    ) -> None:
        self.time_limit = time_limit
        self.fast_path = fast_path
        self.lp_screen = lp_screen
        self.screened_batches = 0

    def run(self, instance: SPMInstance) -> OnlineOutcome:
        """Process every arrival batch in slot order and return the outcome."""
        assignment: dict[int, int | None] = {}
        committed_loads = np.zeros((instance.num_edges, instance.num_slots))
        charged = np.zeros(instance.num_edges)
        decisions: list[tuple[int, int, int]] = []

        by_start: dict[int, list[int]] = {}
        for req in instance.requests:
            by_start.setdefault(req.start, []).append(req.request_id)

        for slot in range(instance.num_slots):
            batch = by_start.get(slot, [])
            if not batch:
                continue
            accepted = self._decide_batch(
                instance, batch, committed_loads, charged, assignment
            )
            decisions.append((slot, len(batch), accepted))

        schedule = Schedule(instance, assignment)
        return OnlineOutcome(schedule=schedule, decisions_per_slot=decisions)

    def _decide_batch(
        self,
        instance: SPMInstance,
        batch: list[int],
        committed_loads: np.ndarray,
        charged: np.ndarray,
        assignment: dict[int, int | None],
    ) -> int:
        outcome = solve_batch(
            instance,
            batch,
            committed_loads,
            charged,
            time_limit=self.time_limit,
            fast_path=self.fast_path,
            lp_screen=self.lp_screen,
        )
        if outcome.screened:
            self.screened_batches += 1
        decision = list(outcome.choices)
        assignment.update(zip(batch, decision))
        return commit_decision(instance, batch, decision, committed_loads, charged)
