"""Independent schedule validation.

:func:`validate_schedule` re-derives every quantity of a schedule from
first principles — *without* trusting the :class:`~repro.core.schedule.Schedule`
accessors — and checks:

* structural soundness: every request decided, every chosen path connects
  the request's endpoints in the topology;
* capacity: per-slot loads within the purchased bandwidth, and within any
  external capacity ceilings supplied;
* accounting: revenue, cost and profit recomputed from raw requests and
  prices match the schedule's own figures.

The experiment harness validates every schedule it reports, so a bug in the
accounting fast paths cannot silently skew a figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.instance import SPMInstance
from repro.core.schedule import Schedule

__all__ = ["ValidationReport", "validate_schedule"]

EdgeKey = tuple

_TOL = 1e-6


@dataclass
class ValidationReport:
    """Outcome of a validation pass: recomputed figures plus any errors."""

    revenue: float
    cost: float
    profit: float
    num_accepted: int
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


def validate_schedule(
    schedule: Schedule,
    *,
    capacities: dict[EdgeKey, int | None] | None = None,
) -> ValidationReport:
    """Re-derive and cross-check every figure of ``schedule``.

    ``capacities`` optionally adds external per-edge ceilings (the BL-SPM
    setting) on top of the schedule's own purchased bandwidth.
    """
    instance: SPMInstance = schedule.instance
    errors: list[str] = []

    # Structural checks + recomputed per-(edge, slot) loads.
    loads = [[0.0] * instance.num_slots for _ in range(instance.num_edges)]
    revenue = 0.0
    num_accepted = 0
    for req in instance.requests:
        if req.request_id not in schedule.assignment:
            errors.append(f"request {req.request_id} has no decision")
            continue
        path_idx = schedule.assignment[req.request_id]
        if path_idx is None:
            continue
        path = instance.path(req.request_id, path_idx)
        if path.source != req.source or path.target != req.dest:
            errors.append(
                f"request {req.request_id}: path endpoints {path.source!r}->"
                f"{path.target!r} do not match request "
                f"{req.source!r}->{req.dest!r}"
            )
        for tail, head in path.edges:
            if not instance.topology.graph.has_edge(tail, head):
                errors.append(
                    f"request {req.request_id}: edge {tail!r}->{head!r} "
                    "not in topology"
                )
                continue
            edge_idx = instance.edge_index[(tail, head)]
            for t in req.slots:
                loads[edge_idx][t] += req.rate
        revenue += req.value
        num_accepted += 1

    # Capacity and charging checks.
    cost = 0.0
    for edge_idx, key in enumerate(instance.edges):
        peak = max(loads[edge_idx])
        purchased = schedule.charged.get(key, 0)
        if peak > purchased + _TOL:
            errors.append(
                f"edge {key!r}: peak load {peak:.6f} exceeds purchased "
                f"bandwidth {purchased}"
            )
        needed = int(math.ceil(peak - 1e-9))
        if purchased > needed:
            # Over-purchase is legal but worth surfacing: it can only come
            # from an explicit `charged` override, never from charge_for.
            pass
        if capacities is not None:
            ceiling = capacities.get(key)
            if ceiling is not None and peak > ceiling + _TOL:
                errors.append(
                    f"edge {key!r}: peak load {peak:.6f} exceeds external "
                    f"capacity {ceiling}"
                )
        cost += instance.topology.price(*key) * purchased

    profit = revenue - cost

    # Accounting cross-checks against the schedule's own figures.
    if abs(revenue - schedule.revenue) > _TOL:
        errors.append(
            f"revenue mismatch: recomputed {revenue:.6f} vs schedule "
            f"{schedule.revenue:.6f}"
        )
    if abs(cost - schedule.cost) > _TOL:
        errors.append(
            f"cost mismatch: recomputed {cost:.6f} vs schedule {schedule.cost:.6f}"
        )
    if abs(profit - schedule.profit) > _TOL:
        errors.append(
            f"profit mismatch: recomputed {profit:.6f} vs schedule "
            f"{schedule.profit:.6f}"
        )
    if num_accepted != schedule.num_accepted:
        errors.append(
            f"acceptance mismatch: recomputed {num_accepted} vs schedule "
            f"{schedule.num_accepted}"
        )

    return ValidationReport(
        revenue=revenue,
        cost=cost,
        profit=profit,
        num_accepted=num_accepted,
        errors=errors,
    )
