"""Evaluation substrate: schedule validation and metrics.

The paper evaluates solutions with a C++ simulator; this package is the
Python equivalent — it replays a schedule against its instance, confirms
every structural and capacity invariant, and computes the quantities the
paper's figures plot (profit, acceptance, utilization).
"""

from repro.sim.validator import ValidationReport, validate_schedule
from repro.sim.metrics import SolutionMetrics, compare, evaluate_schedule
from repro.sim.sensitivity import (
    FailureReport,
    PricePoint,
    link_failure_impact,
    price_sensitivity,
)

__all__ = [
    "ValidationReport",
    "validate_schedule",
    "SolutionMetrics",
    "evaluate_schedule",
    "compare",
    "PricePoint",
    "price_sensitivity",
    "FailureReport",
    "link_failure_impact",
]
