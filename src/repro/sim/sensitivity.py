"""What-if analysis on committed schedules (extension).

Two operational questions a provider asks after committing to a schedule:

* :func:`price_sensitivity` — **what if ISP prices move?**  Bandwidth is
  leased per billing cycle; if the provider commits at today's bids but the
  ISP reprices links, revenue is locked while cost scales.  The sweep
  reports profit across a price-multiplier range and the break-even
  multiplier (where the committed schedule's profit hits zero).
* :func:`link_failure_impact` — **what if a link fails for the cycle?**
  Requests routed across the failed link are rerouted onto their surviving
  candidate paths where the already-purchased bandwidth (plus optionally
  fresh purchases) allows, highest bid first; the rest are refunded.  The
  report quantifies lost revenue, stranded bandwidth cost and the new
  profit.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Schedule
from repro.exceptions import EdgeNotFoundError

__all__ = [
    "PricePoint",
    "price_sensitivity",
    "FailureReport",
    "link_failure_impact",
]

EdgeKey = tuple

_CAP_TOL = 1e-9


@dataclass(frozen=True)
class PricePoint:
    """Profit of the committed schedule at one price multiplier."""

    multiplier: float
    cost: float
    profit: float


def price_sensitivity(
    schedule: Schedule,
    multipliers: Sequence[float] = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
) -> tuple[list[PricePoint], float | None]:
    """Profit of ``schedule`` when every link price scales by each multiplier.

    Returns ``(points, break_even)`` where ``break_even`` is the multiplier
    at which profit crosses zero (``None`` when the schedule buys no
    bandwidth, i.e. profit is price-independent).
    """
    if any(m < 0 for m in multipliers):
        raise ValueError(f"multipliers must be >= 0, got {multipliers!r}")
    base_cost = schedule.cost
    revenue = schedule.revenue
    points = [
        PricePoint(
            multiplier=float(m),
            cost=base_cost * m,
            profit=revenue - base_cost * m,
        )
        for m in multipliers
    ]
    break_even = revenue / base_cost if base_cost > 0 else None
    return points, break_even


@dataclass
class FailureReport:
    """Impact of a cycle-long failure of one directed link pair."""

    failed_link: EdgeKey
    affected_requests: list[int]
    rerouted: dict[int, int]
    dropped: list[int]
    revenue_lost: float
    stranded_cost: float
    new_profit: float
    extra_units_bought: int


def link_failure_impact(
    schedule: Schedule,
    link: EdgeKey,
    *,
    allow_new_purchases: bool = False,
) -> FailureReport:
    """Simulate a whole-cycle failure of ``link`` (both directions).

    Affected accepted requests are detached and re-placed highest bid
    first on their surviving candidate paths.  With
    ``allow_new_purchases=False`` (default) rerouting may only use the
    bandwidth already purchased on surviving links; otherwise the provider
    additionally buys units for a reroute, but only when they cost less
    than the bid they rescue (reflected in ``new_profit``).

    The failed link's own purchased units become *stranded cost*: the paper's
    billing model charges per cycle, so they are paid regardless.
    """
    instance = schedule.instance
    tail, head = link
    if not instance.topology.graph.has_edge(tail, head):
        raise EdgeNotFoundError(f"no link {tail!r} -> {head!r}")
    failed = {
        instance.edge_index[(tail, head)],
    }
    if instance.topology.graph.has_edge(head, tail):
        failed.add(instance.edge_index[(head, tail)])

    # Split accepted requests into unaffected and affected.
    affected: list[int] = []
    assignment: dict[int, int | None] = {}
    for request_id, path_idx in schedule.assignment.items():
        if path_idx is None:
            assignment[request_id] = None
            continue
        edge_set = set(int(e) for e in instance.path_edges[request_id][path_idx])
        if edge_set & failed:
            affected.append(request_id)
            assignment[request_id] = None
        else:
            assignment[request_id] = path_idx

    # Residual capacity on surviving links = purchased - surviving loads.
    purchased = np.array(
        [float(schedule.charged.get(key, 0)) for key in instance.edges]
    )
    loads = instance.loads(assignment)
    residual = purchased[:, None] - loads
    extra_units = np.zeros(instance.num_edges)

    rerouted: dict[int, int] = {}
    dropped: list[int] = []
    for request_id in sorted(
        affected, key=lambda rid: instance.request(rid).value, reverse=True
    ):
        req = instance.request(request_id)
        # Pick the surviving path with the cheapest incremental purchase;
        # free (fits in paid bandwidth) beats any purchase.
        best_path = None
        best_deficit = None
        best_cost = math.inf
        for path_idx in range(instance.num_paths(request_id)):
            edge_idx = instance.path_edges[request_id][path_idx]
            if set(int(e) for e in edge_idx) & failed:
                continue
            window = residual[edge_idx, req.start : req.end + 1]
            deficit = np.ceil(
                (req.rate - window.min(axis=1)).clip(min=0) - _CAP_TOL
            )
            cost = float((instance.prices[edge_idx] * deficit).sum())
            if cost > 0 and not allow_new_purchases:
                continue
            if cost > 0 and cost >= req.value:
                continue  # repurchasing would lose money vs refunding
            if cost < best_cost:
                best_cost = cost
                best_path = path_idx
                best_deficit = deficit
        if best_path is None:
            dropped.append(request_id)
            continue
        edge_idx = instance.path_edges[request_id][best_path]
        if best_cost > 0:
            extra_units[edge_idx] += best_deficit
            residual[edge_idx, :] += best_deficit[:, None]
        assignment[request_id] = best_path
        residual[edge_idx, req.start : req.end + 1] -= req.rate
        rerouted[request_id] = best_path

    revenue_lost = sum(instance.request(rid).value for rid in dropped)
    stranded_cost = sum(
        float(instance.prices[e]) * schedule.charged.get(instance.edges[e], 0)
        for e in failed
    )
    extra_cost = float((instance.prices * extra_units).sum())
    # New profit: surviving revenue minus the original committed cost (all
    # purchased units are sunk for the cycle) minus any fresh purchases.
    new_profit = (schedule.revenue - revenue_lost) - schedule.cost - extra_cost

    return FailureReport(
        failed_link=(tail, head),
        affected_requests=sorted(affected),
        rerouted=rerouted,
        dropped=sorted(dropped),
        revenue_lost=revenue_lost,
        stranded_cost=stranded_cost,
        new_profit=new_profit,
        extra_units_bought=int(extra_units.sum()),
    )
