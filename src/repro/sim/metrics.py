"""Solution metrics — the quantities the paper's figures plot.

:func:`evaluate_schedule` condenses a (validated) schedule into a
:class:`SolutionMetrics` record: profit decomposition, acceptance counts
and the max/min/mean link-utilization triple of Figs. 3c and 5c.
:func:`compare` expresses one solution relative to another (e.g. "Metis
achieves 1.32x the profit of EcoFlow").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Schedule
from repro.exceptions import ScheduleError
from repro.sim.validator import validate_schedule

__all__ = ["SolutionMetrics", "evaluate_schedule", "compare"]


@dataclass(frozen=True)
class SolutionMetrics:
    """Summary metrics of one solution on one instance."""

    solution: str
    num_requests: int
    num_accepted: int
    revenue: float
    cost: float
    profit: float
    utilization_max: float
    utilization_min: float
    utilization_mean: float
    total_bandwidth_units: int

    @property
    def acceptance_rate(self) -> float:
        if self.num_requests == 0:
            return 0.0
        return self.num_accepted / self.num_requests

    def as_row(self) -> list:
        """The figure-table row used by the experiment reports."""
        return [
            self.solution,
            self.num_requests,
            self.num_accepted,
            self.revenue,
            self.cost,
            self.profit,
            self.utilization_mean,
        ]


def evaluate_schedule(
    name: str, schedule: Schedule, *, validate: bool = True
) -> SolutionMetrics:
    """Summarize ``schedule``; with ``validate=True`` (default) the schedule
    is first re-derived and cross-checked, and any discrepancy raises
    :class:`~repro.exceptions.ScheduleError`."""
    if validate:
        report = validate_schedule(schedule)
        if not report.ok:
            raise ScheduleError(
                f"schedule for {name!r} failed validation: {report.errors[:3]}"
            )
    utilization = schedule.utilization()
    return SolutionMetrics(
        solution=name,
        num_requests=schedule.instance.num_requests,
        num_accepted=schedule.num_accepted,
        revenue=schedule.revenue,
        cost=schedule.cost,
        profit=schedule.profit,
        utilization_max=utilization.max,
        utilization_min=utilization.min,
        utilization_mean=utilization.mean,
        total_bandwidth_units=sum(schedule.charged.values()),
    )


def compare(target: SolutionMetrics, baseline: SolutionMetrics) -> dict[str, float]:
    """Ratios of ``target`` over ``baseline`` for the headline quantities.

    Ratios against a non-positive baseline value are reported as ``inf``
    (improvement from nothing) rather than a misleading sign flip.
    """

    def ratio(a: float, b: float) -> float:
        if b <= 0:
            return float("inf") if a > 0 else 1.0
        return a / b

    return {
        "profit_ratio": ratio(target.profit, baseline.profit),
        "revenue_ratio": ratio(target.revenue, baseline.revenue),
        "cost_ratio": ratio(target.cost, baseline.cost),
        "accepted_ratio": ratio(target.num_accepted, baseline.num_accepted),
        "utilization_ratio": ratio(target.utilization_mean, baseline.utilization_mean),
    }
