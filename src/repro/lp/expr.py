"""Symbolic variables and affine expressions for the LP layer.

A :class:`LinExpr` is a sparse mapping ``variable -> coefficient`` plus a
constant.  Expressions support ``+``, ``-``, scalar ``*``/``/`` and the
comparison operators, which build :class:`~repro.lp.constraint.Constraint`
objects — enough to state every formulation in the paper readably::

    model.add_constr(sum(x[i, j] for j in paths) <= 1)
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Union

from repro.exceptions import ModelError

if TYPE_CHECKING:
    from repro.lp.constraint import Constraint

__all__ = ["Variable", "LinExpr"]

Number = Union[int, float]


class Variable:
    """A decision variable with bounds and an integrality flag.

    Create variables through :meth:`repro.lp.model.Model.add_var`, which
    assigns the solver column ``index``.
    """

    __slots__ = ("name", "lower", "upper", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
        *,
        is_integer: bool = False,
        index: int = -1,
    ) -> None:
        if not name:
            raise ModelError("variable name must be non-empty")
        if math.isnan(lower) or math.isnan(upper):
            raise ModelError(f"variable {name!r}: bounds may not be NaN")
        if lower > upper:
            raise ModelError(
                f"variable {name!r}: lower bound {lower} exceeds upper bound {upper}"
            )
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = bool(is_integer)
        self.index = index

    # Arithmetic delegates to LinExpr so `2 * x + y - 1` just works.

    def _as_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self._as_expr() + other

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self._as_expr() - other

    def __rsub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return (-self._as_expr()) + other

    def __mul__(self, other: Number) -> "LinExpr":
        return self._as_expr() * other

    __rmul__ = __mul__

    def __truediv__(self, other: Number) -> "LinExpr":
        return self._as_expr() / other

    def __neg__(self) -> "LinExpr":
        return self._as_expr() * -1.0

    def __le__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return self._as_expr() <= other

    def __ge__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        return self._as_expr() >= other

    def __eq__(self, other: object) -> object:
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._as_expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "int" if self.is_integer else "cont"
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {kind})"


class LinExpr:
    """A sparse affine expression ``sum(coef * var) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: dict[Variable, float] | None = None, constant: float = 0.0
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: "Variable | LinExpr | Number") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value._as_expr()
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ModelError(f"cannot use {value!r} in a linear expression")
        return LinExpr({}, float(value))

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        result = self.copy()
        for var, coef in rhs.terms.items():
            result.terms[var] = result.terms.get(var, 0.0) + coef
        result.constant += rhs.constant
        return result

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if isinstance(scalar, bool) or not isinstance(scalar, (int, float)):
            raise ModelError(f"can only scale by a number, got {scalar!r}")
        return LinExpr(
            {var: coef * scalar for var, coef in self.terms.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "LinExpr":
        if scalar == 0:
            raise ModelError("division of expression by zero")
        return self * (1.0 / scalar)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        from repro.lp.constraint import Constraint

        return Constraint(self - other, "<=")

    def __ge__(self, other: "Variable | LinExpr | Number") -> "Constraint":
        from repro.lp.constraint import Constraint

        return Constraint(self - other, ">=")

    def __eq__(self, other: object) -> object:
        from repro.lp.constraint import Constraint

        if isinstance(other, (Variable, LinExpr, int, float)):
            return Constraint(self - other, "==")
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def value(self, assignment: dict[Variable, float]) -> float:
        """Evaluate under a variable assignment (missing vars read as 0)."""
        return self.constant + sum(
            coef * assignment.get(var, 0.0) for var, coef in self.terms.items()
        )

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
