"""Array-native model compilation: COO triplets straight to sparse form.

The expression layer (:class:`~repro.lp.expr.LinExpr` /
:class:`~repro.lp.model.Model`) is the readable reference path, but it pays
for that readability per constraint: every row allocates a dict-backed
expression and :meth:`Model.compile` walks them term by term in Python.  On
hot paths that rebuild a structurally-similar model per step — the serving
loop compiles one incremental MILP per admission batch — that build cost
dominates the solve itself.

:func:`compile_coo` is the bypass: callers that already hold the model in
array form (objective vector, constraint triplets, bound vectors) assemble
the exact same :class:`~repro.lp.model.CompiledModel` sparse standard form
in a handful of vectorized numpy operations.  Duplicate ``(row, col)``
triplets are summed by the sparse constructor, exactly like repeated
``+=`` accumulation into a ``LinExpr``.

Models built this way carry no symbolic :class:`~repro.lp.expr.Variable`
objects (``variables`` is empty), so they must be solved with
:func:`repro.lp.solvers.solve_compiled_raw`, which returns the raw column
vector instead of a variable-keyed dict.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.lp.model import CompiledModel

__all__ = ["compile_coo", "with_objective", "with_row_upper"]


def with_row_upper(
    compiled: CompiledModel, row_upper: np.ndarray
) -> CompiledModel:
    """``compiled`` with new row upper bounds, sharing everything else.

    The sparse matrix, objective and column bounds are *not* copied — the
    returned model aliases them.  This is the cheap between-rounds update
    for formulations whose varying state enters solely through right-hand
    sides (the Metis BL-SPM re-solves under shrinking capacities).

    The parent's solver-side row-split cache (stacked ``A_ub``/``A_eq``
    and finite-bound masks, see :class:`~repro.lp.model.CompiledModel`)
    rides along through ``dataclasses.replace``: the split depends only on
    which bounds are finite/equal, so the derived model's first solve
    skips the mask computation and sparse re-stacking entirely.  The
    solver still validates the masks against the new values before
    trusting the cache, so a rewrite that *does* change the partition
    (e.g. a bound pushed to infinity) falls back to a fresh split.
    """
    row_upper = np.asarray(row_upper, dtype=float)
    if row_upper.size != compiled.row_upper.size:
        raise ModelError(
            f"row_upper sized {row_upper.size}, "
            f"expected {compiled.row_upper.size}"
        )
    return replace(compiled, row_upper=row_upper)


def with_objective(
    compiled: CompiledModel, objective: np.ndarray
) -> CompiledModel:
    """``compiled`` with a new objective vector, sharing everything else.

    ``objective`` is given in the model's *original* sense; the stored
    ``c`` keeps the compiled model's existing maximization sign.  The
    sparse matrix and all bound arrays alias the input — this is the
    cheap between-rounds update for formulations whose varying state
    enters solely through objective coefficients (the Lagrangian price
    iteration of :mod:`repro.decomp` re-solves each shard's SPM under
    shifted link prices).  As with :func:`with_row_upper`, the parent's
    row-split cache is inherited — the split never depends on ``c``.
    """
    objective = np.asarray(objective, dtype=float)
    if objective.size != compiled.c.size:
        raise ModelError(
            f"objective sized {objective.size}, expected {compiled.c.size}"
        )
    return replace(compiled, c=compiled.sign * objective)


def compile_coo(
    *,
    objective: np.ndarray,
    maximize: bool,
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    num_rows: int,
    row_lower: np.ndarray,
    row_upper: np.ndarray,
    var_lower: np.ndarray,
    var_upper: np.ndarray,
    integrality: np.ndarray,
    objective_constant: float = 0.0,
    check: bool = True,
) -> CompiledModel:
    """Assemble a :class:`CompiledModel` from COO constraint triplets.

    ``objective`` is the coefficient vector in the model's *original* sense
    (its length defines the column count); the maximization sign flip is
    applied here, mirroring :meth:`Model.compile`.  ``rows``/``cols``/
    ``data`` are parallel triplet arrays for the constraint matrix;
    ``row_lower``/``row_upper`` give each row's range (use ``-inf``/``inf``
    for one-sided rows, equal values for equalities).

    ``check=False`` skips the cross-array consistency validation for
    callers that assemble the arrays programmatically and are themselves
    tested for shape discipline (the per-batch serving build); leave it on
    for hand-built models.
    """
    objective = np.asarray(objective, dtype=float)
    num_vars = objective.size
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    data = np.asarray(data, dtype=float)
    row_lower = np.asarray(row_lower, dtype=float)
    row_upper = np.asarray(row_upper, dtype=float)
    var_lower = np.asarray(var_lower, dtype=float)
    var_upper = np.asarray(var_upper, dtype=float)
    integrality = np.asarray(integrality, dtype=np.int8)
    if check:
        if num_vars == 0:
            raise ModelError("array-native model has no variables")
        if not (rows.size == cols.size == data.size):
            raise ModelError(
                f"triplet arrays disagree: {rows.size} rows, "
                f"{cols.size} cols, {data.size} data"
            )
        if row_lower.size != num_rows or row_upper.size != num_rows:
            raise ModelError(
                f"row bounds sized {row_lower.size}/{row_upper.size}, "
                f"expected {num_rows}"
            )
        if not (
            var_lower.size == var_upper.size == integrality.size == num_vars
        ):
            raise ModelError(
                f"column arrays sized {var_lower.size}/{var_upper.size}/"
                f"{integrality.size}, expected {num_vars}"
            )

    sign = -1.0 if maximize else 1.0
    a_matrix = _csr_from_triplets(
        rows, cols, data, num_rows, num_vars, check=check
    )
    return CompiledModel(
        variables=[],
        c=sign * objective,
        a_matrix=a_matrix,
        row_lower=row_lower,
        row_upper=row_upper,
        var_lower=var_lower,
        var_upper=var_upper,
        integrality=integrality,
        sign=sign,
        objective_constant=float(objective_constant),
    )


_INT32_MAX = np.iinfo(np.int32).max


def _csr_from_triplets(
    rows: np.ndarray,
    cols: np.ndarray,
    data: np.ndarray,
    num_rows: int,
    num_vars: int,
    check: bool = True,
) -> sparse.csr_matrix:
    """Canonical CSR straight from triplets, skipping the COO round-trip.

    Produces what ``csr_matrix((data, (rows, cols)))`` would — row-major,
    column-sorted, duplicates summed — bitwise identical for duplicate-free
    triplets (the serving build is one) and identical up to float summation
    order otherwise.  The three CSR arrays are assembled here with a
    lexsort and a bincount instead of scipy's generic
    (and per-call much more expensive) COO conversion and validation
    machinery, then grafts them onto a blank ``csr_matrix``.  On the
    serving path this constructor runs once per admission batch, so its
    overhead is the floor of the batch build cost.
    """
    if check and rows.size:
        if int(rows.min()) < 0 or int(rows.max()) >= num_rows:
            raise ModelError("constraint row index out of range")
        if int(cols.min()) < 0 or int(cols.max()) >= num_vars:
            raise ModelError("constraint column index out of range")
    idx_dtype = (
        np.int32 if max(num_rows, num_vars, rows.size) < _INT32_MAX
        else np.int64
    )
    order = np.lexsort((cols, rows))
    sorted_rows = rows[order]
    indices = cols[order].astype(idx_dtype, copy=False)
    values = data[order]
    if sorted_rows.size:
        dup = (sorted_rows[1:] == sorted_rows[:-1]) & (
            indices[1:] == indices[:-1]
        )
        if dup.any():
            starts = np.flatnonzero(np.r_[True, ~dup])
            values = np.add.reduceat(values, starts)
            sorted_rows = sorted_rows[starts]
            indices = indices[starts]
    indptr = np.zeros(num_rows + 1, dtype=idx_dtype)
    np.cumsum(np.bincount(sorted_rows, minlength=num_rows), out=indptr[1:])
    # csr_matrix.__new__ + direct attribute assignment: the public
    # constructors re-validate (check_format, index-dtype selection, prune)
    # on every call, which at serving batch sizes costs more than the
    # actual assembly above.  The four attributes set here are the complete
    # state of a csr_matrix.
    a_matrix = sparse.csr_matrix.__new__(sparse.csr_matrix)
    a_matrix._shape = (int(num_rows), int(num_vars))
    a_matrix.data = values
    a_matrix.indices = indices
    a_matrix.indptr = indptr
    a_matrix.has_canonical_format = True
    return a_matrix
