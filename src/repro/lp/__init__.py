"""Declarative LP/MILP modeling layer compiled to scipy's HiGHS solvers.

The paper calls Gurobi for its LP relaxations and the exact OPT baselines;
this package provides the modeling surface those algorithms need:

* :class:`Variable` / :class:`LinExpr` — symbolic affine expressions;
* :class:`Constraint` — ``expr <= / == / >= rhs``;
* :class:`Model` — collects variables/constraints, compiles to sparse
  matrices, and dispatches to ``scipy.optimize.linprog`` (pure LPs) or
  ``scipy.optimize.milp`` (with integer variables);
* :func:`compile_coo` — the array-native fast path: assemble the same
  compiled sparse form directly from COO triplets, bypassing the
  expression layer entirely (solve with :func:`solve_compiled_raw`);
* :func:`branch_and_bound` — an independent from-scratch MILP solver built
  on the LP relaxation, used to cross-check HiGHS in the test-suite.
"""

from repro.lp.expr import LinExpr, Variable
from repro.lp.constraint import Constraint
from repro.lp.model import Model
from repro.lp.result import RawSolution, Solution, SolveStatus
from repro.lp.fastbuild import compile_coo
from repro.lp.solvers import solve_compiled, solve_compiled_raw
from repro.lp.branch_and_bound import branch_and_bound
from repro.lp.simplex import simplex_solve, simplex_solve_model

__all__ = [
    "Variable",
    "LinExpr",
    "Constraint",
    "Model",
    "Solution",
    "RawSolution",
    "SolveStatus",
    "compile_coo",
    "solve_compiled",
    "solve_compiled_raw",
    "branch_and_bound",
    "simplex_solve",
    "simplex_solve_model",
]
