"""Warm-started re-solves: one compiled structure, many cheap solves.

Every hot loop in this library re-solves a *structurally identical* model
over and over: the Metis alternation re-solves BL-SPM with only capacity
right-hand sides shrinking and repeats the very same RL-SPM relaxation
``maa_rounds`` times per round; the Lagrangian price iteration of
:mod:`repro.decomp` re-solves each shard's SPM with only objective
coefficients (the effective prices ``u + lambda``) moving.  A
:class:`ResolveSession` owns one such structure and exploits what changed
between consecutive solves, with two reuse tiers that are *certified* —
never heuristic — so the session's answers are bitwise-identical to what a
cold solve would return:

**Exact-repeat reuse.**  Solves are keyed by the bytes of ``(c,
row_upper, row_lower)``.  A byte-identical model is the same model; the
cached :class:`~repro.lp.result.RawSolution` is returned outright.  This
is the dominant hit for MAA, whose repeated randomized roundings all start
from one identical RL-SPM relaxation per round.

**Certified dual reuse (LPs only).**  When only ``row_upper`` moved, the
previous optimum ``x*`` remains optimal iff (a) ``x*`` still satisfies
every changed row and (b) every changed row had an exactly-zero dual.
Zero duals keep the old dual solution feasible for the new problem with an
unchanged dual objective, and (a) keeps ``x*`` primal feasible, so strong
duality pins the optimum: both bounds meet at the old objective value.
The session then returns the previous solution without dispatching HiGHS
at all.  Rows whose bound change breaks the certificate (a tightened
binding row, a nonzero dual) trigger an honest cold solve.  Duals come
from HiGHS via ``linprog``'s ``ineqlin``/``eqlin`` marginals, captured on
every cold LP solve.

Only ``OPTIMAL`` results enter either tier: limit-hit incumbents are
returned to the caller but never cached (an incumbent is not a certificate
of anything).

The bitwise guarantee rests on an empirical property of HiGHS that the
equivalence suites (``tests/test_lp_warmstart.py``) enforce: re-solving
after a slack, zero-dual bound change reproduces not just the objective
but the identical solution vector — the optimal basis is unchanged, and
the basic solution is a deterministic factorization of the same basis.

:func:`relax` builds the LP relaxation of a MILP while *sharing* every
array (and the solver's row-split cache) with the parent — the screening
path of the online batch solver and the shard price loop, where the
relaxation bound decides whether the integer solve can be skipped.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.lp import solvers as _solvers
from repro.lp.model import CompiledModel
from repro.lp.result import RawSolution, SolveStatus

__all__ = ["ResolveSession", "SessionStats", "relax"]


def relax(compiled: CompiledModel) -> CompiledModel:
    """The LP relaxation of ``compiled``, sharing every other array.

    Integrality is the only field replaced, so the relaxation aliases the
    parent's matrix, bounds and row-split cache; models that are already
    pure LPs are returned as-is.
    """
    if not np.any(compiled.integrality):
        return compiled
    return replace(
        compiled, integrality=np.zeros_like(compiled.integrality)
    )


@dataclass
class SessionStats:
    """Reuse counters of one :class:`ResolveSession` (telemetry)."""

    cold_solves: int = 0
    repeat_hits: int = 0
    certified_hits: int = 0

    @property
    def warm_hits(self) -> int:
        """Solves answered without dispatching the backend."""
        return self.repeat_hits + self.certified_hits

    @property
    def total_solves(self) -> int:
        return self.cold_solves + self.warm_hits


class _LastSolve:
    """The certificate state of the most recent cold OPTIMAL LP solve."""

    __slots__ = ("key", "row_upper", "activity", "solution")

    def __init__(self, key, row_upper, activity, solution) -> None:
        self.key = key
        self.row_upper = row_upper
        self.activity = activity
        self.solution = solution


class ResolveSession:
    """Owns one compiled structure across structurally-identical solves.

    The session anchors on the first model it sees: the constraint matrix,
    column bounds and integrality pattern must be the *same objects* on
    every later call (exactly what :func:`~repro.lp.fastbuild.with_row_upper`
    and :func:`~repro.lp.fastbuild.with_objective` derivatives provide).  A
    model with a different structure re-anchors the session, dropping all
    cached state — so holding one session per cached formulation structure
    is always safe, never wrong.

    ``cache_size`` bounds the exact-repeat LRU; certificate state is one
    extra solution.  Returned solutions are shared objects — callers must
    treat ``x`` as read-only (every consumer in this library already does).
    """

    def __init__(self, *, cache_size: int = 8) -> None:
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        self.cache_size = cache_size
        self.stats = SessionStats()
        self._anchor: tuple | None = None
        self._is_milp = False
        self._cache: OrderedDict[tuple, RawSolution] = OrderedDict()
        self._last: _LastSolve | None = None

    # ------------------------------------------------------------ internals

    def _anchored(self, compiled: CompiledModel) -> None:
        anchor = (
            id(compiled.a_matrix),
            id(compiled.var_lower),
            id(compiled.var_upper),
            id(compiled.integrality),
        )
        if self._anchor != anchor:
            self._anchor = anchor
            self._is_milp = bool(np.any(compiled.integrality))
            self._cache.clear()
            self._last = None

    @staticmethod
    def _key(compiled: CompiledModel) -> tuple:
        return (
            compiled.c.tobytes(),
            compiled.row_upper.tobytes(),
            compiled.row_lower.tobytes(),
        )

    def _certified(self, compiled: CompiledModel, key: tuple) -> RawSolution | None:
        """The previous optimum, iff the dual certificate covers the change."""
        last = self._last
        if last is None or self._is_milp:
            return None
        if key[0] != last.key[0] or key[2] != last.key[2]:
            return None  # objective or row lower bounds moved
        new_upper = compiled.row_upper
        changed = np.flatnonzero(new_upper != last.row_upper)
        if changed.size == 0:
            # Values compare equal though bytes differ (-0.0 vs +0.0):
            # mathematically the same model.
            return last.solution
        duals = last.solution.upper_duals
        if duals is None or not np.all(np.isfinite(new_upper[changed])):
            return None
        if np.any(duals[changed] != 0.0):
            return None
        if np.any(last.activity[changed] > new_upper[changed]):
            return None
        return last.solution

    def _remember(self, key: tuple, solution: RawSolution) -> None:
        self._cache[key] = solution
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # -------------------------------------------------------------- solving

    def solve(
        self,
        compiled: CompiledModel,
        *,
        time_limit: float | None = None,
        check_cancelled=None,
    ) -> RawSolution:
        """Solve ``compiled``, reusing prior work whenever certified.

        Semantics match :func:`repro.lp.solvers.solve_compiled_raw`
        exactly; the only difference is that byte-identical repeats and
        certified-slack bound changes skip the backend dispatch.
        """
        self._anchored(compiled)
        key = self._key(compiled)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.repeat_hits += 1
            return cached
        certified = self._certified(compiled, key)
        if certified is not None:
            self.stats.certified_hits += 1
            self._remember(key, certified)
            return certified
        if check_cancelled is not None and check_cancelled():
            from repro.exceptions import SolverError

            raise SolverError("solve cancelled before dispatch")
        if self._is_milp:
            solution = _solvers._solve_milp(compiled, time_limit=time_limit)
        else:
            solution = _solvers._solve_linprog(
                compiled, time_limit=time_limit, duals=True
            )
        self.stats.cold_solves += 1
        if solution.status is SolveStatus.OPTIMAL:
            self._remember(key, solution)
            if not self._is_milp and solution.x is not None:
                self._last = _LastSolve(
                    key=key,
                    row_upper=compiled.row_upper,
                    activity=compiled.a_matrix @ solution.x,
                    solution=solution,
                )
        return solution

    def reset(self) -> None:
        """Drop every cached result and certificate."""
        self._anchor = None
        self._cache.clear()
        self._last = None

    def __repr__(self) -> str:
        return (
            f"ResolveSession(cold={self.stats.cold_solves}, "
            f"repeat={self.stats.repeat_hits}, "
            f"certified={self.stats.certified_hits})"
        )
