"""Linear constraints for the LP layer.

A constraint is stored in normalized form ``expr (sense) 0`` where ``expr``
absorbs both sides; the solver-facing form ``lhs-terms (sense) rhs`` is
recovered via :attr:`Constraint.rhs`.
"""

from __future__ import annotations

from repro.exceptions import ModelError
from repro.lp.expr import LinExpr, Variable

__all__ = ["Constraint", "SENSES"]

SENSES = ("<=", ">=", "==")


class Constraint:
    """A linear constraint ``expr <= 0``, ``expr >= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: str, name: str = "") -> None:
        if sense not in SENSES:
            raise ModelError(f"invalid constraint sense {sense!r}; use one of {SENSES}")
        if not isinstance(expr, LinExpr):
            raise ModelError(f"constraint expression must be LinExpr, got {type(expr)!r}")
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def terms(self) -> dict[Variable, float]:
        """Variable coefficients on the left-hand side."""
        return self.expr.terms

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant over: ``-expr.constant``."""
        return -self.expr.constant

    def is_satisfied(self, assignment: dict[Variable, float], tol: float = 1e-7) -> bool:
        """Whether ``assignment`` satisfies the constraint within ``tol``."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return lhs <= tol
        if self.sense == ">=":
            return lhs >= -tol
        return abs(lhs) <= tol

    def violation(self, assignment: dict[Variable, float]) -> float:
        """Non-negative violation magnitude under ``assignment``."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return max(0.0, lhs)
        if self.sense == ">=":
            return max(0.0, -lhs)
        return abs(lhs)

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Constraint({self.expr!r} {self.sense} 0{label})"
