"""Solver results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.lp.expr import LinExpr, Variable

__all__ = ["SolveStatus", "Solution"]


class SolveStatus(Enum):
    """Normalized solver outcome."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class Solution:
    """An optimization result.

    ``objective`` is in the model's original sense (maximization objectives
    are reported as maximization values).  ``values`` maps every model
    variable to its solution value; integer variables from the MILP path are
    rounded to exact ints.
    """

    status: SolveStatus
    objective: float
    values: dict[Variable, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value_of(self, expr: LinExpr | Variable) -> float:
        """Evaluate an expression (or variable) under this solution."""
        if isinstance(expr, Variable):
            return self.values[expr]
        return expr.value(self.values)
