"""Solver results."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.lp.expr import LinExpr, Variable

__all__ = ["SolveStatus", "Solution", "RawSolution"]


class SolveStatus(Enum):
    """Normalized solver outcome.

    ``OPTIMAL`` is a proven optimum.  ``FEASIBLE`` means the solver hit its
    iteration/time limit but returned an incumbent: a valid,
    constraint-respecting solution that is merely possibly suboptimal.
    ``TIME_LIMIT`` is a limit hit with *no* incumbent — the solve produced
    nothing usable.
    """

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    TIME_LIMIT = "time_limit"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass
class Solution:
    """An optimization result.

    ``objective`` is in the model's original sense (maximization objectives
    are reported as maximization values).  ``values`` maps every model
    variable to its solution value; integer variables from the MILP path are
    rounded to exact ints.  For ``FEASIBLE`` results the objective and
    values describe the incumbent.
    """

    status: SolveStatus
    objective: float
    values: dict[Variable, float] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        """Whether a usable (optimal or incumbent) solution is present."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Variable) -> float:
        return self.values[var]

    def value_of(self, expr: LinExpr | Variable) -> float:
        """Evaluate an expression (or variable) under this solution."""
        if isinstance(expr, Variable):
            return self.values[expr]
        return expr.value(self.values)


@dataclass
class RawSolution:
    """An array-form result for models solved without the expression layer.

    ``x`` is the raw solution vector in column order (``None`` when the
    solve produced no usable point); integer columns are *not* rounded —
    consumers index it directly.  Used by the fast compilation path
    (:mod:`repro.lp.fastbuild`), whose compiled models carry no symbolic
    :class:`~repro.lp.expr.Variable` objects to key a ``values`` dict with.

    ``upper_duals`` (LP path only, on request) holds one dual value per
    *original* model row for its upper-bound side — equality rows carry
    their equality dual, rows with no finite upper bound carry 0.  The
    warm-start layer (:mod:`repro.lp.warmstart`) uses them to certify that
    a right-hand-side change cannot move the optimum.
    """

    status: SolveStatus
    objective: float
    x: np.ndarray | None = None
    upper_duals: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def is_optimal(self) -> bool:
        return self.status is SolveStatus.OPTIMAL

    @property
    def is_feasible(self) -> bool:
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)
