"""The :class:`Model`: variable/constraint registry and sparse compilation.

A model collects variables and constraints, then compiles them into the
sparse-matrix form scipy's HiGHS backends consume.  Pure LPs are solved with
``scipy.optimize.linprog``; models containing integer variables go through
``scipy.optimize.milp``.  Callers can also relax a mixed-integer model to
its LP relaxation — the first step of both MAA and TAA.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.exceptions import ModelError
from repro.lp.constraint import Constraint
from repro.lp.expr import LinExpr, Variable
from repro.lp.result import Solution, SolveStatus

__all__ = ["Model", "CompiledModel"]


@dataclass
class CompiledModel:
    """Sparse standard form: min c'x s.t. lb_row <= A x <= ub_row, lb <= x <= ub.

    ``sign`` is +1 for minimization models and -1 for maximization (the
    objective vector ``c`` is already negated for maximization so the solver
    always minimizes); reported objectives are multiplied back by ``sign``.

    ``split_cache`` holds the solver-side row-split structure (the
    equality/upper/lower partition and the stacked ``A_ub``/``A_eq``
    matrices scipy's linprog consumes), computed lazily by
    :mod:`repro.lp.solvers` on first solve.  The partition depends only on
    which row bounds are finite/equal — invariant under the row-*value*
    rewrites of :func:`repro.lp.fastbuild.with_row_upper` — so
    ``dataclasses.replace`` derivatives inherit it and the per-round
    re-solves skip the split entirely (it is still validated against the
    current bound masks before reuse).
    """

    variables: list[Variable]
    c: np.ndarray
    a_matrix: sparse.csr_matrix
    row_lower: np.ndarray
    row_upper: np.ndarray
    var_lower: np.ndarray
    var_upper: np.ndarray
    integrality: np.ndarray
    sign: float
    objective_constant: float = 0.0
    split_cache: object = field(default=None, repr=False, compare=False)


class Model:
    """A linear / mixed-integer program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinExpr = LinExpr()
        self._maximize = False
        self._names: set[str] = set()

    # -------------------------------------------------------------- building

    def add_var(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = math.inf,
        *,
        is_integer: bool = False,
    ) -> Variable:
        """Create and register a variable.  Names must be unique."""
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        var = Variable(
            name, lower, upper, is_integer=is_integer, index=len(self._variables)
        )
        self._variables.append(var)
        self._names.add(name)
        return var

    def add_binary(self, name: str) -> Variable:
        """Shortcut for an integer variable in {0, 1}."""
        return self.add_var(name, 0.0, 1.0, is_integer=True)

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparisons."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                f"expected Constraint, got {type(constraint).__name__}; "
                "did you compare an expression with <=, >= or ==?"
            )
        for var in constraint.terms:
            self._check_owned(var)
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def set_objective(self, expr: LinExpr | Variable, *, maximize: bool) -> None:
        """Set the objective expression and sense."""
        expr = LinExpr._coerce(expr)
        for var in expr.terms:
            self._check_owned(var)
        self._objective = expr
        self._maximize = maximize

    def _check_owned(self, var: Variable) -> None:
        if var.index < 0 or var.index >= len(self._variables) or self._variables[var.index] is not var:
            raise ModelError(f"variable {var.name!r} does not belong to model {self.name!r}")

    # ------------------------------------------------------------- accessors

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    @property
    def constraints(self) -> list[Constraint]:
        return list(self._constraints)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def is_maximization(self) -> bool:
        return self._maximize

    @property
    def has_integer_vars(self) -> bool:
        return any(v.is_integer for v in self._variables)

    # ------------------------------------------------------------ compilation

    def compile(self, *, relax_integrality: bool = False) -> CompiledModel:
        """Compile to the sparse standard form used by the solver backends."""
        if not self._variables:
            raise ModelError(f"model {self.name!r} has no variables")
        n = len(self._variables)
        sign = -1.0 if self._maximize else 1.0
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            c[var.index] = sign * coef

        rows, cols, data = [], [], []
        row_lower = np.empty(len(self._constraints))
        row_upper = np.empty(len(self._constraints))
        for row_idx, constr in enumerate(self._constraints):
            rhs = constr.rhs
            if constr.sense == "<=":
                row_lower[row_idx], row_upper[row_idx] = -np.inf, rhs
            elif constr.sense == ">=":
                row_lower[row_idx], row_upper[row_idx] = rhs, np.inf
            else:
                row_lower[row_idx] = row_upper[row_idx] = rhs
            for var, coef in constr.terms.items():
                if coef != 0.0:
                    rows.append(row_idx)
                    cols.append(var.index)
                    data.append(coef)

        a_matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self._constraints), n)
        )
        integrality = np.array(
            [
                0 if relax_integrality else (1 if v.is_integer else 0)
                for v in self._variables
            ],
            dtype=np.int8,
        )
        return CompiledModel(
            variables=list(self._variables),
            c=c,
            a_matrix=a_matrix,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=np.array([v.lower for v in self._variables]),
            var_upper=np.array([v.upper for v in self._variables]),
            integrality=integrality,
            sign=sign,
            objective_constant=self._objective.constant,
        )

    # --------------------------------------------------------------- solving

    def solve(
        self,
        *,
        relax_integrality: bool = False,
        time_limit: float | None = None,
        check_cancelled=None,
    ) -> Solution:
        """Solve the model; see :mod:`repro.lp.solvers` for backend details.

        ``relax_integrality=True`` drops all integrality flags — the LP
        relaxation used by the approximation algorithms.  ``time_limit``
        (seconds) caps both LP and MILP solves; a limit-hit solve reports
        ``SolveStatus.FEASIBLE`` with the incumbent when one exists and
        ``SolveStatus.TIME_LIMIT`` (no values) otherwise — never a silently
        suboptimal answer presented as optimal.  ``check_cancelled`` is
        polled before dispatch (see
        :func:`repro.lp.solvers.solve_compiled`).
        """
        from repro.lp.solvers import solve_compiled

        compiled = self.compile(relax_integrality=relax_integrality)
        return solve_compiled(
            compiled, time_limit=time_limit, check_cancelled=check_cancelled
        )

    def check_feasible(self, assignment: dict[Variable, float], tol: float = 1e-7) -> bool:
        """Whether ``assignment`` satisfies every constraint and bound."""
        for var in self._variables:
            val = assignment.get(var, 0.0)
            if val < var.lower - tol or val > var.upper + tol:
                return False
        return all(c.is_satisfied(assignment, tol) for c in self._constraints)

    def objective_value(self, assignment: dict[Variable, float]) -> float:
        """Evaluate the objective under ``assignment`` (original sense)."""
        return self._objective.value(assignment)

    # ----------------------------------------------------------------- export

    def to_lp_string(self) -> str:
        """Render the model in CPLEX LP text format.

        Useful for debugging a formulation or feeding it to an external
        solver; round-trips through any LP-format reader (the constant term
        of the objective, which LP format cannot express, is emitted as a
        comment).
        """

        def render_terms(terms: dict[Variable, float]) -> str:
            if not terms:
                return "0"
            parts = []
            for var, coef in terms.items():
                sign = "-" if coef < 0 else "+"
                parts.append(f"{sign} {abs(coef):g} {var.name}")
            text = " ".join(parts)
            return text[2:] if text.startswith("+ ") else text

        lines = [f"\\ model {self.name}"]
        if self._objective.constant:
            lines.append(f"\\ objective constant: {self._objective.constant:g}")
        lines.append("Maximize" if self._maximize else "Minimize")
        lines.append(f" obj: {render_terms(self._objective.terms)}")
        lines.append("Subject To")
        for idx, constr in enumerate(self._constraints):
            name = constr.name or f"c{idx}"
            sense = {"<=": "<=", ">=": ">=", "==": "="}[constr.sense]
            lines.append(
                f" {name}: {render_terms(constr.terms)} {sense} {constr.rhs:g}"
            )
        lines.append("Bounds")
        for var in self._variables:
            lower = "-inf" if var.lower == -math.inf else f"{var.lower:g}"
            upper = "+inf" if var.upper == math.inf else f"{var.upper:g}"
            lines.append(f" {lower} <= {var.name} <= {upper}")
        integers = [v.name for v in self._variables if v.is_integer]
        if integers:
            lines.append("Generals")
            lines.append(" " + " ".join(integers))
        lines.append("End")
        return "\n".join(lines)

    def __repr__(self) -> str:
        sense = "max" if self._maximize else "min"
        return (
            f"Model({self.name!r}, {sense}, vars={len(self._variables)}, "
            f"constrs={len(self._constraints)})"
        )
