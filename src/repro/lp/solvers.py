"""HiGHS solver backends for compiled models.

Pure LPs dispatch to ``scipy.optimize.linprog(method="highs")``; models with
integral variables go through ``scipy.optimize.milp``.  Both paths normalize
scipy's status codes into :class:`~repro.lp.result.SolveStatus` and convert
the objective back to the model's original sense.

Two entry points share the same core:

* :func:`solve_compiled` — the expression-layer path; returns a
  :class:`~repro.lp.result.Solution` whose ``values`` dict is keyed by the
  model's :class:`~repro.lp.expr.Variable` objects.
* :func:`solve_compiled_raw` — the array-native path; returns a
  :class:`~repro.lp.result.RawSolution` holding the raw column vector.
  This is what the fast compilation path (:mod:`repro.lp.fastbuild`)
  consumes, since its compiled models carry no symbolic variables.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.exceptions import SolverError
from repro.lp.model import CompiledModel
from repro.lp.result import RawSolution, Solution, SolveStatus

__all__ = ["solve_compiled", "solve_compiled_raw"]

#: scipy status code for "iteration or time limit reached" (both backends).
#: Mapped to ``FEASIBLE`` when an incumbent is present, ``TIME_LIMIT``
#: otherwise — never to ``ERROR``, so callers can keep a usable incumbent.
_LIMIT_CODE = 1

# scipy linprog/milp status codes -> normalized status (limit handled above)
_STATUS = {
    0: SolveStatus.OPTIMAL,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_compiled_raw(
    compiled: CompiledModel,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
) -> RawSolution:
    """Solve a :class:`~repro.lp.model.CompiledModel`, returning raw arrays.

    ``time_limit`` (seconds) caps both paths: MILPs via ``scipy.optimize.milp``
    and LPs via HiGHS' own ``time_limit`` option, so serving-path solves are
    always bounded.  A solve that hits the limit returns the incumbent with
    status ``FEASIBLE`` when one exists, and ``TIME_LIMIT`` (no values)
    otherwise — feasible incumbents are first-class, never discarded.

    ``check_cancelled`` is an optional zero-argument callable polled before
    the solver is dispatched; returning truthy raises
    :class:`~repro.exceptions.SolverError`.  Solver worker pools use it to
    drain queued work cooperatively after a sibling task fails.
    """
    if check_cancelled is not None and check_cancelled():
        raise SolverError("solve cancelled before dispatch")
    if np.any(compiled.integrality):
        return _solve_milp(compiled, time_limit=time_limit)
    return _solve_linprog(compiled, time_limit=time_limit)


def solve_compiled(
    compiled: CompiledModel,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
) -> Solution:
    """Solve a compiled model and map the result back to model variables.

    Same semantics as :func:`solve_compiled_raw` (which it wraps); the
    returned :class:`~repro.lp.result.Solution` carries a ``values`` dict
    keyed by the model's variables, with integer columns rounded to ints.
    """
    if len(compiled.variables) != compiled.c.size:
        raise SolverError(
            "compiled model has no symbolic variables (array-native "
            "compilation); solve it with solve_compiled_raw instead"
        )
    raw = solve_compiled_raw(
        compiled, time_limit=time_limit, check_cancelled=check_cancelled
    )
    values = _extract_values(compiled, raw.x) if raw.x is not None else {}
    return Solution(status=raw.status, objective=raw.objective, values=values)


def _extract_values(compiled: CompiledModel, x: np.ndarray) -> dict:
    values = {}
    for var, val in zip(compiled.variables, x):
        val = float(val)
        if compiled.integrality[var.index]:
            val = float(round(val))
        values[var] = val
    return values


def _finish(compiled: CompiledModel, result) -> RawSolution:
    """Map a scipy result to a :class:`RawSolution` (shared by both paths)."""
    if result.status == _LIMIT_CODE:
        status = (
            SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
        )
    else:
        status = _STATUS.get(result.status, SolveStatus.ERROR)
    if status not in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
        return RawSolution(status=status, objective=float("nan"))
    if result.x is None:
        raise SolverError(
            f"solver reported {status.value} but returned no solution"
        )
    return RawSolution(
        status=status,
        objective=compiled.sign * float(result.fun) + compiled.objective_constant,
        x=np.asarray(result.x),
    )


class _RowSplit:
    """The linprog-side standard-form split of one constraint structure.

    scipy's ``linprog`` wants ``A_ub x <= b_ub`` and ``A_eq x == b_eq``,
    so every solve must partition the model's ranged rows into equality /
    finite-upper / finite-lower sets and stack the (negated-lower) pieces.
    The partition and the stacked matrices depend only on *which* bounds
    are finite or equal, never on their values, so they are computed once
    and cached on the :class:`CompiledModel` (and inherited by its
    ``with_row_upper`` / ``with_objective`` derivatives).  ``validate``
    re-derives the cheap boolean masks per solve and rejects the cache if
    a bound rewrite ever changed the partition.

    The per-solve leftovers are pure takes: ``b_ub``/``b_eq`` gather the
    current bound values through the precomputed index arrays, in exactly
    the order the unsplit path concatenated them, so the solver sees
    bitwise-identical inputs.
    """

    __slots__ = (
        "finite_eq", "rows_ub", "rows_lb", "eq_idx", "ub_idx", "lb_idx",
        "a_ub", "a_eq", "bounds", "num_ub",
    )

    def __init__(self, compiled: CompiledModel) -> None:
        finite_eq = compiled.row_lower == compiled.row_upper
        rows_ub = ~finite_eq & np.isfinite(compiled.row_upper)
        rows_lb = ~finite_eq & np.isfinite(compiled.row_lower)
        self.finite_eq = finite_eq
        self.rows_ub = rows_ub
        self.rows_lb = rows_lb
        self.eq_idx = np.flatnonzero(finite_eq)
        self.ub_idx = np.flatnonzero(rows_ub)
        self.lb_idx = np.flatnonzero(rows_lb)
        self.num_ub = self.ub_idx.size
        a_matrix = compiled.a_matrix
        a_ub_parts = []
        if self.ub_idx.size:
            a_ub_parts.append(a_matrix[rows_ub])
        if self.lb_idx.size:
            a_ub_parts.append(-a_matrix[rows_lb])
        self.a_ub = sparse.vstack(a_ub_parts).tocsr() if a_ub_parts else None
        self.a_eq = a_matrix[finite_eq] if self.eq_idx.size else None
        self.bounds = np.column_stack((compiled.var_lower, compiled.var_upper))

    def validate(self, compiled: CompiledModel) -> bool:
        finite_eq = compiled.row_lower == compiled.row_upper
        if not np.array_equal(finite_eq, self.finite_eq):
            return False
        return np.array_equal(
            ~finite_eq & np.isfinite(compiled.row_upper), self.rows_ub
        ) and np.array_equal(
            ~finite_eq & np.isfinite(compiled.row_lower), self.rows_lb
        )


def _row_split(compiled: CompiledModel) -> _RowSplit:
    split = compiled.split_cache
    if isinstance(split, _RowSplit) and split.validate(compiled):
        return split
    split = _RowSplit(compiled)
    compiled.split_cache = split
    return split


def _solve_linprog(
    compiled: CompiledModel,
    *,
    time_limit: float | None = None,
    duals: bool = False,
) -> RawSolution:
    split = _row_split(compiled)

    b_ub_parts = []
    if split.ub_idx.size:
        b_ub_parts.append(compiled.row_upper[split.rows_ub])
    if split.lb_idx.size:
        b_ub_parts.append(-compiled.row_lower[split.rows_lb])
    b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
    b_eq = compiled.row_upper[split.finite_eq] if split.eq_idx.size else None

    result = optimize.linprog(
        compiled.c,
        A_ub=split.a_ub,
        b_ub=b_ub,
        A_eq=split.a_eq,
        b_eq=b_eq,
        bounds=split.bounds,
        method="highs",
        options=None if time_limit is None else {"time_limit": float(time_limit)},
    )
    solution = _finish(compiled, result)
    if duals and solution.x is not None:
        upper_duals = np.zeros(compiled.row_upper.size)
        if split.eq_idx.size:
            upper_duals[split.eq_idx] = np.asarray(result.eqlin.marginals)
        if split.ub_idx.size:
            marginals = np.asarray(result.ineqlin.marginals)
            upper_duals[split.ub_idx] = marginals[: split.num_ub]
        solution.upper_duals = upper_duals
    return solution


def _solve_milp(
    compiled: CompiledModel, *, time_limit: float | None = None
) -> RawSolution:
    constraints = optimize.LinearConstraint(
        compiled.a_matrix, compiled.row_lower, compiled.row_upper
    )
    bounds = optimize.Bounds(compiled.var_lower, compiled.var_upper)
    options = {} if time_limit is None else {"time_limit": float(time_limit)}
    result = optimize.milp(
        compiled.c,
        constraints=constraints,
        bounds=bounds,
        integrality=compiled.integrality,
        options=options,
    )
    return _finish(compiled, result)
