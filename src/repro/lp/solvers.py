"""HiGHS solver backends for compiled models.

Pure LPs dispatch to ``scipy.optimize.linprog(method="highs")``; models with
integral variables go through ``scipy.optimize.milp``.  Both paths normalize
scipy's status codes into :class:`~repro.lp.result.SolveStatus` and convert
the objective back to the model's original sense.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.exceptions import SolverError
from repro.lp.model import CompiledModel
from repro.lp.result import Solution, SolveStatus

__all__ = ["solve_compiled"]

# scipy linprog status codes -> normalized status
_LINPROG_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

# scipy milp status codes -> normalized status
_MILP_STATUS = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ERROR,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_compiled(
    compiled: CompiledModel,
    *,
    time_limit: float | None = None,
    check_cancelled=None,
) -> Solution:
    """Solve a :class:`~repro.lp.model.CompiledModel` with HiGHS.

    ``time_limit`` (seconds) caps both paths: MILPs via ``scipy.optimize.milp``
    and LPs via HiGHS' own ``time_limit`` option, so serving-path solves are
    always bounded.  A solve that hits the limit reports
    ``SolveStatus.ERROR`` rather than a silently suboptimal answer.

    ``check_cancelled`` is an optional zero-argument callable polled before
    the solver is dispatched; returning truthy raises
    :class:`~repro.exceptions.SolverError`.  Solver worker pools use it to
    drain queued work cooperatively after a sibling task fails.
    """
    if check_cancelled is not None and check_cancelled():
        raise SolverError("solve cancelled before dispatch")
    if np.any(compiled.integrality):
        return _solve_milp(compiled, time_limit=time_limit)
    return _solve_linprog(compiled, time_limit=time_limit)


def _extract_values(compiled: CompiledModel, x: np.ndarray) -> dict:
    values = {}
    for var, val in zip(compiled.variables, x):
        val = float(val)
        if compiled.integrality[var.index]:
            val = float(round(val))
        values[var] = val
    return values


def _solve_linprog(
    compiled: CompiledModel, *, time_limit: float | None = None
) -> Solution:
    finite_eq = compiled.row_lower == compiled.row_upper
    a_matrix = compiled.a_matrix

    constraints_ub = []
    rows_ub = ~finite_eq & np.isfinite(compiled.row_upper)
    rows_lb = ~finite_eq & np.isfinite(compiled.row_lower)

    a_ub_parts, b_ub_parts = [], []
    if rows_ub.any():
        a_ub_parts.append(a_matrix[rows_ub])
        b_ub_parts.append(compiled.row_upper[rows_ub])
    if rows_lb.any():
        a_ub_parts.append(-a_matrix[rows_lb])
        b_ub_parts.append(-compiled.row_lower[rows_lb])

    a_ub = sparse.vstack(a_ub_parts).tocsr() if a_ub_parts else None
    b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
    a_eq = a_matrix[finite_eq] if finite_eq.any() else None
    b_eq = compiled.row_upper[finite_eq] if finite_eq.any() else None

    bounds = [
        (lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
        for lo, hi in zip(compiled.var_lower, compiled.var_upper)
    ]
    result = optimize.linprog(
        compiled.c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
        options=None if time_limit is None else {"time_limit": float(time_limit)},
    )
    status = _LINPROG_STATUS.get(result.status, SolveStatus.ERROR)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status=status, objective=float("nan"))
    if result.x is None:
        raise SolverError("linprog reported optimal but returned no solution")
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=compiled.sign * float(result.fun) + compiled.objective_constant,
        values=_extract_values(compiled, result.x),
    )


def _solve_milp(
    compiled: CompiledModel, *, time_limit: float | None = None
) -> Solution:
    constraints = optimize.LinearConstraint(
        compiled.a_matrix, compiled.row_lower, compiled.row_upper
    )
    bounds = optimize.Bounds(compiled.var_lower, compiled.var_upper)
    options = {} if time_limit is None else {"time_limit": float(time_limit)}
    result = optimize.milp(
        compiled.c,
        constraints=constraints,
        bounds=bounds,
        integrality=compiled.integrality,
        options=options,
    )
    status = _MILP_STATUS.get(result.status, SolveStatus.ERROR)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status=status, objective=float("nan"))
    if result.x is None:
        raise SolverError("milp reported optimal but returned no solution")
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=compiled.sign * float(result.fun) + compiled.objective_constant,
        values=_extract_values(compiled, result.x),
    )
