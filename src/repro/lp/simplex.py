"""A from-scratch dense two-phase simplex LP solver.

Third, fully independent backend for the LP layer (after scipy-HiGHS and
the branch-and-bound/relaxation pair): a textbook tableau simplex with
Bland's anti-cycling rule.  It exists for *verification* — the test-suite
cross-checks HiGHS against it on randomly generated LPs and on the paper's
relaxations — not for performance; it is dense and O(rows x cols) per
pivot.

Scope (enough for every relaxation in this library):

* variables with lower bound 0 (finite upper bounds become rows);
* ``<=``, ``>=`` and ``==`` rows;
* minimization or maximization.

Unsupported variable lower bounds (< 0 or > 0) raise
:class:`~repro.exceptions.SolverError` rather than silently mis-solving.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SolverError
from repro.lp.model import CompiledModel, Model
from repro.lp.result import RawSolution, Solution, SolveStatus

__all__ = ["simplex_solve", "simplex_solve_model", "WarmSimplex"]

_EPS = 1e-9
#: Entering threshold: a column must price out this negative to pivot in.
#: Bland's rule only guarantees termination in exact arithmetic — with a
#: threshold at float-noise level (1e-9), accumulated round-off can make a
#: reduced cost flicker around zero and the walk stall on degenerate
#: vertices.  1e-7 is far above tableau noise for the well-scaled LPs this
#: backend sees, and far below any meaningful reduced cost.
_ENTER_EPS = 1e-7
_MAX_PIVOTS = 50_000


def simplex_solve_model(model: Model) -> Solution:
    """Solve ``model``'s LP relaxation with the from-scratch simplex."""
    return simplex_solve(model.compile(relax_integrality=True))


def simplex_solve(compiled: CompiledModel) -> Solution:
    """Solve a compiled model (integrality ignored — LP relaxation)."""
    c, a_rows, b = _to_standard_form(compiled)
    status, x, objective = _two_phase_simplex(c, a_rows, b)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status=status, objective=float("nan"))
    values = {
        var: float(x[var.index]) for var in compiled.variables
    }
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=compiled.sign * objective + compiled.objective_constant,
        values=values,
    )


def _to_standard_form(compiled: CompiledModel):
    """Convert to ``min c'x  s.t.  rows (<=, >=, ==),  x >= 0``.

    Returns ``(c, rows, b)`` where ``rows`` is a list of
    ``(coefficients, sense)`` with sense in {-1: <=, 0: ==, +1: >=}.
    """
    n = compiled.c.size
    bad = np.flatnonzero(np.asarray(compiled.var_lower) != 0.0)
    if bad.size:
        raise SolverError(
            f"simplex backend requires lower bound 0, column "
            f"{int(bad[0])} has {float(compiled.var_lower[bad[0]])}"
        )
    dense = compiled.a_matrix.toarray()
    rows: list[np.ndarray] = []
    senses: list[int] = []
    b: list[float] = []
    for i in range(dense.shape[0]):
        lower, upper = compiled.row_lower[i], compiled.row_upper[i]
        if lower == upper:
            rows.append(dense[i])
            senses.append(0)
            b.append(float(upper))
            continue
        if math.isfinite(upper):
            rows.append(dense[i])
            senses.append(-1)
            b.append(float(upper))
        if math.isfinite(lower):
            rows.append(dense[i])
            senses.append(1)
            b.append(float(lower))
    for col in range(n):
        if math.isfinite(compiled.var_upper[col]):
            row = np.zeros(n)
            row[col] = 1.0
            rows.append(row)
            senses.append(-1)
            b.append(float(compiled.var_upper[col]))
    return (
        compiled.c.astype(float),
        list(zip(rows, senses)),
        np.array(b, dtype=float),
    )


def _two_phase_simplex(c, a_rows, b):
    """Textbook two-phase tableau simplex with Bland's rule."""
    n = len(c)
    m = len(a_rows)
    if m == 0:
        # Unconstrained over x >= 0: finite iff c >= 0.
        if np.any(c < -_EPS):
            return SolveStatus.UNBOUNDED, None, math.nan
        return SolveStatus.OPTIMAL, np.zeros(n), 0.0

    # Normalize to b >= 0 by flipping rows.
    rows = []
    senses = []
    rhs = []
    for (row, sense), bi in zip(a_rows, b):
        if bi < 0:
            rows.append(-row)
            senses.append(-sense)
            rhs.append(-bi)
        else:
            rows.append(row.copy())
            senses.append(sense)
            rhs.append(bi)

    # Columns: original n | slacks/surplus | artificials.
    slack_count = sum(1 for s in senses if s != 0)
    artificial_needed = [s != -1 for s in senses]  # >= and == rows
    art_count = sum(artificial_needed)
    total = n + slack_count + art_count

    tableau = np.zeros((m, total))
    basis = np.empty(m, dtype=int)
    slack_idx = n
    art_idx = n + slack_count
    for i, (row, sense) in enumerate(zip(rows, senses)):
        tableau[i, :n] = row
        if sense == -1:
            tableau[i, slack_idx] = 1.0
            basis[i] = slack_idx
            slack_idx += 1
        elif sense == 1:
            tableau[i, slack_idx] = -1.0
            slack_idx += 1
        if sense != -1:
            tableau[i, art_idx] = 1.0
            basis[i] = art_idx
            art_idx += 1
    rhs = np.array(rhs, dtype=float)

    # Phase 1: minimize the sum of artificials.
    if art_count:
        phase1_c = np.zeros(total)
        phase1_c[n + slack_count :] = 1.0
        status = _optimize(tableau, rhs, basis, phase1_c)
        if status is not SolveStatus.OPTIMAL:
            raise SolverError("phase-1 simplex failed to terminate")
        phase1_value = phase1_c[basis] @ rhs
        if phase1_value > 1e-7:
            return SolveStatus.INFEASIBLE, None, math.nan
        # Pivot any artificial still in the basis out (or drop its row).
        for i in range(m):
            if basis[i] >= n + slack_count:
                pivot_col = next(
                    (
                        j
                        for j in range(n + slack_count)
                        if abs(tableau[i, j]) > _EPS
                    ),
                    None,
                )
                if pivot_col is not None:
                    _pivot(tableau, rhs, basis, i, pivot_col)
        # Freeze artificial columns at zero.
        tableau[:, n + slack_count :] = 0.0

    # Phase 2: original objective (zero cost on slack/artificials).
    phase2_c = np.zeros(total)
    phase2_c[:n] = c
    status = _optimize(tableau, rhs, basis, phase2_c)
    if status is not SolveStatus.OPTIMAL:
        return status, None, math.nan

    x = np.zeros(total)
    x[basis] = rhs
    return SolveStatus.OPTIMAL, x[:n], float(c @ x[:n])


def _optimize(tableau, rhs, basis, costs):
    """Primal simplex iterations on the tableau; Bland's rule throughout."""
    m, total = tableau.shape
    for _ in range(_MAX_PIVOTS):
        # Reduced costs: c_j - c_B' B^-1 A_j; tableau rows are already
        # B^-1 A, so reduced = costs - costs[basis] @ tableau.
        reduced = costs - costs[basis] @ tableau
        entering = next(
            (j for j in range(total) if reduced[j] < -_ENTER_EPS), None
        )
        if entering is None:
            return SolveStatus.OPTIMAL
        column = tableau[:, entering]
        candidates = [
            (rhs[i] / column[i], basis[i], i)
            for i in range(m)
            if column[i] > _EPS
        ]
        if not candidates:
            return SolveStatus.UNBOUNDED
        # Bland: min ratio, ties by smallest basis variable index.
        _, _, leaving_row = min(candidates, key=lambda t: (t[0], t[1]))
        _pivot(tableau, rhs, basis, leaving_row, entering)
    raise SolverError(f"simplex exceeded {_MAX_PIVOTS} pivots")


def _pivot(tableau, rhs, basis, row, col) -> None:
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    rhs[row] /= pivot_value
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _EPS:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]
    basis[row] = col


class WarmSimplex:
    """Dual-simplex re-solves of one LP structure under moving row bounds.

    The in-tree warm-start path: the first ``solve_raw`` runs the cold
    two-phase simplex and captures the oriented standard-form matrix and
    the optimal basis.  Later solves of the *same structure* (same
    constraint matrix and column bounds, changed ``row_lower`` /
    ``row_upper`` values) rebuild only the right-hand side, refactorize the
    stored basis, and run dual-simplex pivots from it: the basis stays dual
    feasible when ``b`` moves (reduced costs never involve ``b``), so the
    re-solve needs exactly as many pivots as the bound change displaced the
    optimum — typically zero for the slack-row tightenings of the Metis
    shrink loop.

    Like the cold backend this exists for *verification*, not speed: the
    equivalence suites cross-check :class:`~repro.lp.warmstart.ResolveSession`
    certificates against it on small LPs.  Dense, O(rows²·cols) per warm
    re-solve.
    """

    def __init__(self) -> None:
        self.cold_solves = 0
        self.warm_resolves = 0
        self.dual_pivots = 0
        self._structure: tuple | None = None
        self._state: tuple | None = None  # (a_std, orient, costs, basis)

    def solve_raw(self, compiled: CompiledModel) -> RawSolution:
        """Solve ``compiled`` (LP relaxation), warm when the basis is reusable."""
        structure = (
            id(compiled.a_matrix),
            id(compiled.var_lower),
            id(compiled.var_upper),
        )
        if structure != self._structure:
            self._structure = structure
            self._state = None
        if self._state is not None:
            warm = self._resolve(compiled)
            if warm is not None:
                self.warm_resolves += 1
                return warm
        return self._cold(compiled)

    # ---------------------------------------------------------------- cold

    def _cold(self, compiled: CompiledModel) -> RawSolution:
        self.cold_solves += 1
        self._state = None
        c, a_rows, b = _to_standard_form(compiled)
        n = c.size
        m = len(a_rows)
        if m == 0:
            if np.any(c < -_EPS):
                return RawSolution(SolveStatus.UNBOUNDED, math.nan)
            x = np.zeros(n)
            return RawSolution(
                SolveStatus.OPTIMAL,
                compiled.sign * 0.0 + compiled.objective_constant,
                x,
            )

        # Orient rows so the cold phase-1 sees b >= 0; the orientation is a
        # row scaling, so it stays valid for every later right-hand side.
        orient = np.where(b < 0, -1.0, 1.0)
        senses = np.array([s for _, s in a_rows], dtype=int)
        senses = np.where(orient < 0, -senses, senses)
        rows = np.array([row for row, _ in a_rows]) * orient[:, None]
        rhs = b * orient

        slack_count = int(np.sum(senses != 0))
        art_needed = senses != -1
        art_count = int(np.sum(art_needed))
        total = n + slack_count + art_count

        a_std = np.zeros((m, total))
        a_std[:, :n] = rows
        basis = np.empty(m, dtype=int)
        slack_idx, art_idx = n, n + slack_count
        for i in range(m):
            if senses[i] == -1:
                a_std[i, slack_idx] = 1.0
                basis[i] = slack_idx
                slack_idx += 1
            elif senses[i] == 1:
                a_std[i, slack_idx] = -1.0
                slack_idx += 1
            if senses[i] != -1:
                a_std[i, art_idx] = 1.0
                basis[i] = art_idx
                art_idx += 1

        tableau = a_std.copy()
        rhs = rhs.astype(float)
        if art_count:
            phase1_c = np.zeros(total)
            phase1_c[n + slack_count:] = 1.0
            status = _optimize(tableau, rhs, basis, phase1_c)
            if status is not SolveStatus.OPTIMAL:
                raise SolverError("phase-1 simplex failed to terminate")
            if phase1_c[basis] @ rhs > 1e-7:
                return RawSolution(SolveStatus.INFEASIBLE, math.nan)
            for i in range(m):
                if basis[i] >= n + slack_count:
                    pivot_col = next(
                        (
                            j
                            for j in range(n + slack_count)
                            if abs(tableau[i, j]) > _EPS
                        ),
                        None,
                    )
                    if pivot_col is not None:
                        _pivot(tableau, rhs, basis, i, pivot_col)
            tableau[:, n + slack_count:] = 0.0

        costs = np.zeros(total)
        costs[:n] = c
        status = _optimize(tableau, rhs, basis, costs)
        if status is not SolveStatus.OPTIMAL:
            return RawSolution(status, math.nan)

        x = np.zeros(total)
        x[basis] = rhs
        solution = RawSolution(
            SolveStatus.OPTIMAL,
            compiled.sign * float(c @ x[:n]) + compiled.objective_constant,
            x[:n],
        )
        # An artificial stuck in the basis (degenerate) is not a reusable
        # starting point; simply skip capturing and stay cold next time.
        if not np.any(basis >= n + slack_count):
            self._state = (a_std, orient, costs, basis.copy(), n, slack_count)
        return solution

    # ---------------------------------------------------------------- warm

    def _resolve(self, compiled: CompiledModel) -> RawSolution | None:
        a_std, orient, costs, basis, n, slack_count = self._state
        _, _, b = _to_standard_form(compiled)
        if b.size != orient.size:
            return None
        b_std = b * orient
        basis = basis.copy()
        basis_matrix = a_std[:, basis]
        try:
            rhs = np.linalg.solve(basis_matrix, b_std)
            tableau = np.linalg.solve(basis_matrix, a_std)
        except np.linalg.LinAlgError:
            return None
        tableau[:, n + slack_count:] = 0.0  # artificials stay frozen

        for _ in range(_MAX_PIVOTS):
            negative = np.flatnonzero(rhs < -_EPS)
            if negative.size == 0:
                x = np.zeros(a_std.shape[1])
                x[basis] = rhs
                self._state = (a_std, orient, costs, basis, n, slack_count)
                c = costs[:n]
                return RawSolution(
                    SolveStatus.OPTIMAL,
                    compiled.sign * float(c @ x[:n])
                    + compiled.objective_constant,
                    x[:n],
                )
            # Bland-flavored leaving choice: most negative rhs, ties by
            # smallest basis variable index.
            leaving = min(negative, key=lambda i: (rhs[i], basis[i]))
            row = tableau[leaving]
            reduced = costs - costs[basis] @ tableau
            candidates = [
                j
                for j in range(n + slack_count)
                if row[j] < -_EPS
            ]
            if not candidates:
                return RawSolution(SolveStatus.INFEASIBLE, math.nan)
            entering = min(
                candidates,
                key=lambda j: (max(reduced[j], 0.0) / -row[j], j),
            )
            _pivot(tableau, rhs, basis, leaving, entering)
            self.dual_pivots += 1
        raise SolverError(f"dual simplex exceeded {_MAX_PIVOTS} pivots")
