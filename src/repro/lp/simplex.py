"""A from-scratch dense two-phase simplex LP solver.

Third, fully independent backend for the LP layer (after scipy-HiGHS and
the branch-and-bound/relaxation pair): a textbook tableau simplex with
Bland's anti-cycling rule.  It exists for *verification* — the test-suite
cross-checks HiGHS against it on randomly generated LPs and on the paper's
relaxations — not for performance; it is dense and O(rows x cols) per
pivot.

Scope (enough for every relaxation in this library):

* variables with lower bound 0 (finite upper bounds become rows);
* ``<=``, ``>=`` and ``==`` rows;
* minimization or maximization.

Unsupported variable lower bounds (< 0 or > 0) raise
:class:`~repro.exceptions.SolverError` rather than silently mis-solving.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import SolverError
from repro.lp.model import CompiledModel, Model
from repro.lp.result import Solution, SolveStatus

__all__ = ["simplex_solve", "simplex_solve_model"]

_EPS = 1e-9
#: Entering threshold: a column must price out this negative to pivot in.
#: Bland's rule only guarantees termination in exact arithmetic — with a
#: threshold at float-noise level (1e-9), accumulated round-off can make a
#: reduced cost flicker around zero and the walk stall on degenerate
#: vertices.  1e-7 is far above tableau noise for the well-scaled LPs this
#: backend sees, and far below any meaningful reduced cost.
_ENTER_EPS = 1e-7
_MAX_PIVOTS = 50_000


def simplex_solve_model(model: Model) -> Solution:
    """Solve ``model``'s LP relaxation with the from-scratch simplex."""
    return simplex_solve(model.compile(relax_integrality=True))


def simplex_solve(compiled: CompiledModel) -> Solution:
    """Solve a compiled model (integrality ignored — LP relaxation)."""
    c, a_rows, b = _to_standard_form(compiled)
    status, x, objective = _two_phase_simplex(c, a_rows, b)
    if status is not SolveStatus.OPTIMAL:
        return Solution(status=status, objective=float("nan"))
    values = {
        var: float(x[var.index]) for var in compiled.variables
    }
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=compiled.sign * objective + compiled.objective_constant,
        values=values,
    )


def _to_standard_form(compiled: CompiledModel):
    """Convert to ``min c'x  s.t.  rows (<=, >=, ==),  x >= 0``.

    Returns ``(c, rows, b)`` where ``rows`` is a list of
    ``(coefficients, sense)`` with sense in {-1: <=, 0: ==, +1: >=}.
    """
    n = len(compiled.variables)
    for var in compiled.variables:
        if var.lower != 0.0:
            raise SolverError(
                f"simplex backend requires lower bound 0, variable "
                f"{var.name!r} has {var.lower}"
            )
    dense = compiled.a_matrix.toarray()
    rows: list[np.ndarray] = []
    senses: list[int] = []
    b: list[float] = []
    for i in range(dense.shape[0]):
        lower, upper = compiled.row_lower[i], compiled.row_upper[i]
        if lower == upper:
            rows.append(dense[i])
            senses.append(0)
            b.append(float(upper))
            continue
        if math.isfinite(upper):
            rows.append(dense[i])
            senses.append(-1)
            b.append(float(upper))
        if math.isfinite(lower):
            rows.append(dense[i])
            senses.append(1)
            b.append(float(lower))
    for var in compiled.variables:
        if math.isfinite(var.upper):
            row = np.zeros(n)
            row[var.index] = 1.0
            rows.append(row)
            senses.append(-1)
            b.append(float(var.upper))
    return (
        compiled.c.astype(float),
        list(zip(rows, senses)),
        np.array(b, dtype=float),
    )


def _two_phase_simplex(c, a_rows, b):
    """Textbook two-phase tableau simplex with Bland's rule."""
    n = len(c)
    m = len(a_rows)
    if m == 0:
        # Unconstrained over x >= 0: finite iff c >= 0.
        if np.any(c < -_EPS):
            return SolveStatus.UNBOUNDED, None, math.nan
        return SolveStatus.OPTIMAL, np.zeros(n), 0.0

    # Normalize to b >= 0 by flipping rows.
    rows = []
    senses = []
    rhs = []
    for (row, sense), bi in zip(a_rows, b):
        if bi < 0:
            rows.append(-row)
            senses.append(-sense)
            rhs.append(-bi)
        else:
            rows.append(row.copy())
            senses.append(sense)
            rhs.append(bi)

    # Columns: original n | slacks/surplus | artificials.
    slack_count = sum(1 for s in senses if s != 0)
    artificial_needed = [s != -1 for s in senses]  # >= and == rows
    art_count = sum(artificial_needed)
    total = n + slack_count + art_count

    tableau = np.zeros((m, total))
    basis = np.empty(m, dtype=int)
    slack_idx = n
    art_idx = n + slack_count
    for i, (row, sense) in enumerate(zip(rows, senses)):
        tableau[i, :n] = row
        if sense == -1:
            tableau[i, slack_idx] = 1.0
            basis[i] = slack_idx
            slack_idx += 1
        elif sense == 1:
            tableau[i, slack_idx] = -1.0
            slack_idx += 1
        if sense != -1:
            tableau[i, art_idx] = 1.0
            basis[i] = art_idx
            art_idx += 1
    rhs = np.array(rhs, dtype=float)

    # Phase 1: minimize the sum of artificials.
    if art_count:
        phase1_c = np.zeros(total)
        phase1_c[n + slack_count :] = 1.0
        status = _optimize(tableau, rhs, basis, phase1_c)
        if status is not SolveStatus.OPTIMAL:
            raise SolverError("phase-1 simplex failed to terminate")
        phase1_value = phase1_c[basis] @ rhs
        if phase1_value > 1e-7:
            return SolveStatus.INFEASIBLE, None, math.nan
        # Pivot any artificial still in the basis out (or drop its row).
        for i in range(m):
            if basis[i] >= n + slack_count:
                pivot_col = next(
                    (
                        j
                        for j in range(n + slack_count)
                        if abs(tableau[i, j]) > _EPS
                    ),
                    None,
                )
                if pivot_col is not None:
                    _pivot(tableau, rhs, basis, i, pivot_col)
        # Freeze artificial columns at zero.
        tableau[:, n + slack_count :] = 0.0

    # Phase 2: original objective (zero cost on slack/artificials).
    phase2_c = np.zeros(total)
    phase2_c[:n] = c
    status = _optimize(tableau, rhs, basis, phase2_c)
    if status is not SolveStatus.OPTIMAL:
        return status, None, math.nan

    x = np.zeros(total)
    x[basis] = rhs
    return SolveStatus.OPTIMAL, x[:n], float(c @ x[:n])


def _optimize(tableau, rhs, basis, costs):
    """Primal simplex iterations on the tableau; Bland's rule throughout."""
    m, total = tableau.shape
    for _ in range(_MAX_PIVOTS):
        # Reduced costs: c_j - c_B' B^-1 A_j; tableau rows are already
        # B^-1 A, so reduced = costs - costs[basis] @ tableau.
        reduced = costs - costs[basis] @ tableau
        entering = next(
            (j for j in range(total) if reduced[j] < -_ENTER_EPS), None
        )
        if entering is None:
            return SolveStatus.OPTIMAL
        column = tableau[:, entering]
        candidates = [
            (rhs[i] / column[i], basis[i], i)
            for i in range(m)
            if column[i] > _EPS
        ]
        if not candidates:
            return SolveStatus.UNBOUNDED
        # Bland: min ratio, ties by smallest basis variable index.
        _, _, leaving_row = min(candidates, key=lambda t: (t[0], t[1]))
        _pivot(tableau, rhs, basis, leaving_row, entering)
    raise SolverError(f"simplex exceeded {_MAX_PIVOTS} pivots")


def _pivot(tableau, rhs, basis, row, col) -> None:
    pivot_value = tableau[row, col]
    tableau[row] /= pivot_value
    rhs[row] /= pivot_value
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > _EPS:
            factor = tableau[i, col]
            tableau[i] -= factor * tableau[row]
            rhs[i] -= factor * rhs[row]
    basis[row] = col
