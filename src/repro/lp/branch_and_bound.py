"""A from-scratch branch-and-bound MILP solver.

The paper uses Gurobi for the exact OPT baselines; our primary substitute is
HiGHS via ``scipy.optimize.milp``.  This module is an *independent* MILP
solver built only on the LP relaxation (``linprog``) so the test-suite can
cross-check the two implementations against each other on small instances —
the same role a second solver license plays in a careful evaluation.

Standard best-bound branch and bound:

1. solve the LP relaxation of the node;
2. if the relaxation is worse than the incumbent, prune;
3. pick the integer variable whose value is most fractional, branch on
   ``floor``/``ceil`` bound tightenings;
4. integral relaxations update the incumbent.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SolverError
from repro.lp.model import CompiledModel, Model
from repro.lp.result import Solution, SolveStatus
from repro.lp.solvers import solve_compiled

__all__ = ["branch_and_bound"]

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A search node ordered by its parent's relaxation bound (best-first)."""

    bound: float
    tie_breaker: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)


def branch_and_bound(
    model: Model,
    *,
    max_nodes: int = 100_000,
    gap_tol: float = 1e-7,
) -> Solution:
    """Solve ``model`` to optimality by branch and bound.

    ``max_nodes`` bounds the search; exceeding it raises
    :class:`~repro.exceptions.SolverError` rather than silently returning a
    suboptimal incumbent.  ``gap_tol`` is the absolute optimality gap at
    which the search may stop.
    """
    compiled = model.compile(relax_integrality=True)
    int_indices = np.array(
        [v.index for v in compiled.variables if v.is_integer], dtype=int
    )
    if int_indices.size == 0:
        return solve_compiled(compiled)

    sign = compiled.sign  # +1 min, -1 max; work internally in minimization
    counter = itertools.count()
    root = _Node(
        bound=-math.inf,
        tie_breaker=next(counter),
        lower=compiled.var_lower.copy(),
        upper=compiled.var_upper.copy(),
    )
    heap = [root]
    incumbent: dict | None = None
    incumbent_obj = math.inf  # minimization objective (sign-adjusted)
    nodes_explored = 0

    while heap:
        node = heapq.heappop(heap)
        if node.bound >= incumbent_obj - gap_tol:
            continue  # pruned by bound
        nodes_explored += 1
        if nodes_explored > max_nodes:
            raise SolverError(
                f"branch and bound exceeded {max_nodes} nodes on model {model.name!r}"
            )

        relaxation = _solve_relaxation(compiled, node.lower, node.upper)
        if relaxation is None:
            continue  # infeasible subtree
        obj, x = relaxation
        if obj >= incumbent_obj - gap_tol:
            continue

        frac_idx = _most_fractional(x, int_indices)
        if frac_idx is None:
            # Integral: new incumbent.
            incumbent_obj = obj
            incumbent = {
                var: (round(float(x[var.index])) if var.is_integer else float(x[var.index]))
                for var in compiled.variables
            }
            continue

        value = x[frac_idx]
        down = _Node(obj, next(counter), node.lower.copy(), node.upper.copy())
        down.upper[frac_idx] = math.floor(value)
        up = _Node(obj, next(counter), node.lower.copy(), node.upper.copy())
        up.lower[frac_idx] = math.ceil(value)
        if down.lower[frac_idx] <= down.upper[frac_idx]:
            heapq.heappush(heap, down)
        if up.lower[frac_idx] <= up.upper[frac_idx]:
            heapq.heappush(heap, up)

    if incumbent is None:
        # Exhausted search without an integral solution: the MILP is
        # infeasible even when its LP relaxation is not.
        return Solution(status=SolveStatus.INFEASIBLE, objective=float("nan"))
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=sign * incumbent_obj + compiled.objective_constant,
        values=incumbent,
    )


def _solve_relaxation(
    compiled: CompiledModel, lower: np.ndarray, upper: np.ndarray
) -> tuple[float, np.ndarray] | None:
    """LP relaxation with overridden bounds -> (min-objective, x) or None."""
    node_compiled = CompiledModel(
        variables=compiled.variables,
        c=compiled.c,
        a_matrix=compiled.a_matrix,
        row_lower=compiled.row_lower,
        row_upper=compiled.row_upper,
        var_lower=lower,
        var_upper=upper,
        integrality=np.zeros(len(compiled.variables), dtype=np.int8),
        sign=1.0,  # keep minimization internally; compiled.c is already signed
    )
    solution = solve_compiled(node_compiled)
    if solution.status is SolveStatus.INFEASIBLE:
        return None
    if solution.status is SolveStatus.UNBOUNDED:
        raise SolverError("LP relaxation is unbounded; MILP is ill-posed")
    if not solution.is_optimal:
        raise SolverError(f"LP relaxation failed with status {solution.status}")
    x = np.array([solution.values[v] for v in compiled.variables])
    return solution.objective, x


def _most_fractional(x: np.ndarray, int_indices: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    fractional_parts = np.abs(x[int_indices] - np.round(x[int_indices]))
    worst = int(np.argmax(fractional_parts))
    if fractional_parts[worst] <= _INT_TOL:
        return None
    return int(int_indices[worst])
