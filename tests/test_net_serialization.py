"""Tests for repro.net.serialization."""

import json

import pytest

from repro.exceptions import TopologyError
from repro.net.serialization import topology_from_dict, topology_to_dict
from repro.net.topologies import b4, sub_b4


class TestRoundTrip:
    @pytest.mark.parametrize("builder", [b4, sub_b4])
    def test_structure_preserved(self, builder):
        original = builder()
        original.set_capacity("DC1", "DC2", 7)
        restored = topology_from_dict(topology_to_dict(original))
        assert restored.name == original.name
        assert restored.num_datacenters == original.num_datacenters
        assert restored.num_edges == original.num_edges
        for edge in original.edges:
            assert restored.price(edge.tail, edge.head) == edge.weight
            assert restored.capacity(edge.tail, edge.head) == original.capacity(
                edge.tail, edge.head
            )

    def test_regions_preserved(self):
        restored = topology_from_dict(topology_to_dict(b4()))
        assert restored.region("DC9") == "asia"

    def test_json_compatible(self):
        payload = topology_to_dict(sub_b4())
        text = json.dumps(payload)
        restored = topology_from_dict(json.loads(text))
        assert restored.num_edges == 14

    def test_bad_version_rejected(self):
        payload = topology_to_dict(sub_b4())
        payload["format_version"] = 999
        with pytest.raises(TopologyError, match="format version"):
            topology_from_dict(payload)
