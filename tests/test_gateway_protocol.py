"""Wire-protocol tests: bid parsing, structured errors, response shapes."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ProtocolError
from repro.gateway.protocol import (
    DECISIONS,
    PROTOCOL_VERSION,
    bid_to_line,
    bye_message,
    decision_message,
    decode_message,
    encode_message,
    error_message,
    hello_message,
    parse_bid_line,
)
from repro.workload.request import Request


def _bid(**overrides) -> dict:
    record = {
        "request_id": 7,
        "source": "A",
        "dest": "B",
        "start": 1,
        "end": 4,
        "rate": 2.5,
        "value": 12.0,
    }
    record.update(overrides)
    return record


class TestBidLines:
    def test_roundtrip_through_wire_schema(self):
        request = Request(
            request_id=3, source="A", dest="B", start=0, end=5, rate=1.5, value=9.0
        )
        line = bid_to_line(request)
        assert line.endswith(b"\n")
        parsed = parse_bid_line(line, 1)
        assert parsed == request

    def test_accepts_str_and_bytes(self):
        line = json.dumps(_bid())
        assert parse_bid_line(line, 1) == parse_bid_line(line.encode(), 1)

    def test_malformed_json_carries_lineno(self):
        with pytest.raises(ProtocolError, match="line 42") as excinfo:
            parse_bid_line(b"{nope", 42)
        assert excinfo.value.lineno == 42

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_bid_line(b"[1, 2, 3]", 1)

    def test_missing_fields_are_named(self):
        record = _bid()
        del record["rate"], record["value"]
        with pytest.raises(ProtocolError, match="rate"):
            parse_bid_line(json.dumps(record), 5)

    def test_workload_validation_becomes_protocol_error(self):
        # end < start violates the Request invariant, not JSON syntax.
        with pytest.raises(ProtocolError, match="line 9") as excinfo:
            parse_bid_line(json.dumps(_bid(start=5, end=2)), 9)
        assert excinfo.value.lineno == 9

    def test_wrong_types_rejected(self):
        with pytest.raises(ProtocolError, match="invalid bid record"):
            parse_bid_line(json.dumps(_bid(rate="fast")), 1)

    def test_window_checked_against_cycle_length(self):
        parse_bid_line(json.dumps(_bid(end=11)), 1, num_slots=12)
        with pytest.raises(ProtocolError, match="outside the billing cycle"):
            parse_bid_line(json.dumps(_bid(end=12)), 1, num_slots=12)

    def test_unknown_node_rejected_when_nodes_given(self):
        line = json.dumps(_bid(source="Z"))
        parse_bid_line(line, 1)  # no node check without the set
        with pytest.raises(ProtocolError, match="unknown node 'Z'"):
            parse_bid_line(line, 1, nodes={"A", "B"})


class TestResponses:
    def test_encode_decode_roundtrip(self):
        message = hello_message(
            topology="B4", slots_per_cycle=12, window=2,
            slot_seconds=0.5, num_cycles=None,
        )
        line = encode_message(message)
        assert line.endswith(b"\n") and b" " not in line.split(b'"hello"')[0]
        assert decode_message(line) == message
        assert message["protocol"] == PROTOCOL_VERSION

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError, match="'type'"):
            decode_message(b'{"no_type": 1}\n')

    def test_decision_message_validates_verdict(self):
        for verdict in DECISIONS:
            message = decision_message(
                request_id=1, decision=verdict, path=0, cycle=0,
                window_start=0, latency_ms=1.0,
            )
            assert message["decision"] == verdict
        with pytest.raises(ValueError):
            decision_message(
                request_id=1, decision="maybe", path=None, cycle=0,
                window_start=0, latency_ms=0.0,
            )

    def test_error_and_bye_shapes(self):
        err = error_message(3, "line 3: bad")
        assert err == {"type": "error", "line": 3, "error": "line 3: bad"}
        bye = bye_message(submitted=10, responded=10)
        assert bye["type"] == "bye" and bye["reason"] == "eof"
