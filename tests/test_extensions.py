"""Tests for the extensions beyond the paper's core: the Abilene topology,
the heavy-tail value model, the LP-format exporter, and the ablation
experiments."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    run_k_paths_ablation,
    run_limiter_ablation,
    run_seed_stability,
    run_theta_ablation,
    run_value_model_ablation,
)
from repro.experiments.common import ExperimentConfig
from repro.exceptions import WorkloadError
from repro.lp.model import Model
from repro.net.topologies import abilene
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.value_models import HeavyTailValueModel


class TestAbilene:
    def test_dimensions(self):
        topo = abilene()
        assert topo.num_datacenters == 11
        assert topo.num_edges == 28  # 14 bidirectional links

    def test_uniform_baseline_price(self):
        topo = abilene()
        assert all(e.weight == 1.0 for e in topo.edges)

    def test_usable_end_to_end(self):
        topo = abilene()
        workload = generate_workload(topo, WorkloadConfig(num_requests=10), rng=0)
        from repro.core import Metis, SPMInstance

        instance = SPMInstance.build(topo, workload, k_paths=2)
        outcome = Metis(theta=3, maa_rounds=1).solve(instance, rng=0)
        assert outcome.best.profit >= 0.0


class TestHeavyTailValueModel:
    def test_bids_positive_and_dispersed(self):
        model = HeavyTailValueModel(shape=2.0, scale=0.5)
        topo = abilene()
        rng = np.random.default_rng(0)
        values = [
            model.value(topo, "Seattle", "NewYork", 0.3, 2, rng)
            for _ in range(300)
        ]
        assert all(v > 0 for v in values)
        assert max(values) > 4 * np.median(values), "heavy tail present"

    def test_scale_floors_the_multiplier(self):
        model = HeavyTailValueModel(shape=5.0, scale=0.5)
        topo = abilene()
        rng = np.random.default_rng(1)
        base = 0.3 * 2 * 3.0  # rate x duration x cheapest path price (3 hops)
        floor = 0.5 * base
        values = [
            model.value(topo, "Seattle", "NewYork", 0.3, 2, rng)
            for _ in range(100)
        ]
        assert all(v >= floor - 1e-9 for v in values)

    def test_invalid_params(self):
        with pytest.raises(WorkloadError):
            HeavyTailValueModel(shape=1.0)
        with pytest.raises(ValueError):
            HeavyTailValueModel(scale=0.0)


class TestLpExport:
    def build(self):
        m = Model("demo")
        x = m.add_var("x", 0, 3)
        b = m.add_binary("b")
        m.add_constr(x + 2 * b <= 4, name="cap")
        m.set_objective(x + 5 * b + 1, maximize=True)
        return m

    def test_sections_present(self):
        text = self.build().to_lp_string()
        assert "Maximize" in text
        assert "Subject To" in text
        assert "Bounds" in text
        assert "Generals" in text
        assert text.rstrip().endswith("End")

    def test_contents(self):
        text = self.build().to_lp_string()
        assert "cap: 1 x + 2 b <= 4" in text
        assert "0 <= x <= 3" in text
        assert "objective constant: 1" in text
        assert " b" in text.split("Generals")[1]

    def test_minimize_and_unbounded_var(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x >= 1)
        m.set_objective(x + 0, maximize=False)
        text = m.to_lp_string()
        assert "Minimize" in text
        assert "0 <= x <= +inf" in text


_FAST = ExperimentConfig(
    topology="sub-b4",
    request_counts=(20,),
    theta=4,
    maa_rounds=1,
    time_limit=60.0,
)


class TestAblations:
    def test_theta_ablation_monotone_profit(self):
        result = run_theta_ablation(_FAST, thetas=(1, 4))
        profits = result.column("profit")
        assert profits[1] >= profits[0] - 1e-9, "more rounds never hurt"

    def test_limiter_ablation_rows(self):
        result = run_limiter_ablation(_FAST)
        assert len(result.rows) == 4
        assert all(row[2] >= 0 for row in result.rows)

    def test_value_model_ablation_rows(self):
        cfg = ExperimentConfig(
            topology="sub-b4", request_counts=(20,), theta=4, maa_rounds=1
        )
        result = run_value_model_ablation(cfg)
        assert len(result.rows) == 5
        for row in result.rows:
            assert row[1] >= 0.0, "Metis profit never negative"

    def test_k_paths_ablation_lp_monotone(self):
        result = run_k_paths_ablation(_FAST, path_counts=(1, 3))
        lp_costs = result.column("lp_cost")
        assert lp_costs[1] <= lp_costs[0] + 1e-6, (
            "more candidate paths can only improve the LP optimum"
        )

    def test_seed_stability_rows(self):
        result = run_seed_stability(_FAST, seeds=(1, 2))
        assert len(result.rows) == 2
        assert result.headers[-1] == "ratio"

    def test_seasonality_ablation_rows(self):
        from repro.experiments.ablations import run_seasonality_ablation

        result = run_seasonality_ablation(_FAST)
        assert len(result.rows) == 4
        profiles = result.column("arrival profile")
        assert "uniform" in profiles and "retail calendar" in profiles
        assert all(row[1] >= 0 for row in result.rows)
