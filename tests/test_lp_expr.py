"""Tests for repro.lp.expr."""

import math

import pytest

from repro.exceptions import ModelError
from repro.lp.constraint import Constraint
from repro.lp.expr import LinExpr, Variable


def var(name="x", **kwargs):
    return Variable(name, **kwargs)


class TestVariable:
    def test_defaults(self):
        x = var()
        assert x.lower == 0.0
        assert x.upper == math.inf
        assert not x.is_integer

    def test_bad_bounds(self):
        with pytest.raises(ModelError):
            Variable("x", 2.0, 1.0)
        with pytest.raises(ModelError):
            Variable("x", float("nan"), 1.0)

    def test_empty_name(self):
        with pytest.raises(ModelError):
            Variable("")

    def test_hash_is_identity(self):
        a, b = var("x"), var("x")
        assert hash(a) != hash(b) or a is not b
        assert len({a, b}) == 2


class TestArithmetic:
    def test_add_variables(self):
        x, y = var("x"), var("y")
        expr = x + y
        assert expr.terms == {x: 1.0, y: 1.0}
        assert expr.constant == 0.0

    def test_scalar_operations(self):
        x = var("x")
        expr = 2 * x + 1 - x / 2
        assert expr.terms[x] == pytest.approx(1.5)
        assert expr.constant == 1.0

    def test_negation_and_rsub(self):
        x = var("x")
        expr = 5 - x
        assert expr.terms[x] == -1.0
        assert expr.constant == 5.0
        assert (-x).terms[x] == -1.0

    def test_sum_builtin(self):
        xs = [var(f"x{i}") for i in range(4)]
        expr = sum(xs)
        assert all(expr.terms[x] == 1.0 for x in xs)

    def test_terms_merge(self):
        x = var("x")
        expr = x + x + x
        assert expr.terms[x] == 3.0

    def test_mul_by_expr_rejected(self):
        x, y = var("x"), var("y")
        with pytest.raises((ModelError, TypeError)):
            _ = (x + 1) * (y + 1)  # type: ignore[operator]

    def test_divide_by_zero_rejected(self):
        with pytest.raises(ModelError):
            _ = (var() + 1) / 0

    def test_bool_scalar_rejected(self):
        with pytest.raises(ModelError):
            _ = (var() + 1) * True  # type: ignore[operator]

    def test_value_evaluation(self):
        x, y = var("x"), var("y")
        expr = 2 * x - y + 3
        assert expr.value({x: 1.0, y: 4.0}) == pytest.approx(1.0)
        assert expr.value({}) == 3.0, "missing variables read as zero"


class TestComparisons:
    def test_le_builds_constraint(self):
        x = var("x")
        constr = x + 1 <= 5
        assert isinstance(constr, Constraint)
        assert constr.sense == "<="
        assert constr.rhs == 4.0

    def test_ge_and_eq(self):
        x, y = var("x"), var("y")
        ge = x >= y
        assert ge.sense == ">="
        assert ge.terms == {x: 1.0, y: -1.0}
        eq = x + y == 2
        assert eq.sense == "=="
        assert eq.rhs == 2.0

    def test_variable_comparison(self):
        x = var("x")
        constr = x <= 3
        assert constr.terms == {x: 1.0}
        assert constr.rhs == 3.0
