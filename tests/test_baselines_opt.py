"""Tests for the exact OPT baselines."""

import pytest

from repro.baselines.ecoflow import solve_ecoflow
from repro.baselines.mincost import solve_mincost
from repro.baselines.opt import solve_opt_rl_spm, solve_opt_spm
from repro.core.metis import Metis
from repro.sim.validator import validate_schedule


class TestOptSpm:
    def test_dominates_every_heuristic(self, small_sub_b4_instance):
        opt = solve_opt_spm(small_sub_b4_instance)
        metis = Metis(theta=4).solve(small_sub_b4_instance, rng=0)
        ecoflow = solve_ecoflow(small_sub_b4_instance)
        assert opt.profit >= metis.best.profit - 1e-6
        assert opt.profit >= ecoflow.profit - 1e-6

    def test_profit_nonnegative(self, small_sub_b4_instance):
        assert solve_opt_spm(small_sub_b4_instance).profit >= -1e-9

    def test_objective_matches_schedule_profit(self, small_sub_b4_instance):
        opt = solve_opt_spm(small_sub_b4_instance)
        assert opt.objective == pytest.approx(opt.profit, abs=1e-6)

    def test_schedule_validates(self, small_sub_b4_instance):
        opt = solve_opt_spm(small_sub_b4_instance)
        assert validate_schedule(opt.schedule).ok

    def test_diamond_declines_negative_value_mix(self, diamond):
        from repro.core.instance import SPMInstance
        from repro.workload.request import RequestSet

        from tests.conftest import make_request

        requests = RequestSet(
            [
                make_request(0, rate=0.6, value=5.0),
                make_request(1, rate=0.6, value=0.1),  # would force a 2nd unit
            ],
            num_slots=1,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=2)
        opt = solve_opt_spm(inst)
        assert opt.schedule.assignment[0] is not None
        assert opt.schedule.assignment[1] is None
        assert opt.profit == pytest.approx(3.0)  # 5 - 2 links x 1 unit


class TestOptRlSpm:
    def test_accepts_everything(self, small_sub_b4_instance):
        opt = solve_opt_rl_spm(small_sub_b4_instance)
        assert opt.schedule.num_accepted == small_sub_b4_instance.num_requests

    def test_cost_not_above_mincost(self, small_sub_b4_instance):
        opt = solve_opt_rl_spm(small_sub_b4_instance)
        mincost = solve_mincost(small_sub_b4_instance)
        assert opt.schedule.cost <= mincost.cost + 1e-6

    def test_objective_is_min_cost(self, small_sub_b4_instance):
        opt = solve_opt_rl_spm(small_sub_b4_instance)
        assert opt.objective == pytest.approx(opt.schedule.cost, abs=1e-6)

    def test_spm_profit_at_least_rl_spm(self, small_sub_b4_instance):
        spm = solve_opt_spm(small_sub_b4_instance)
        rl = solve_opt_rl_spm(small_sub_b4_instance)
        assert spm.profit >= rl.schedule.profit - 1e-6
