"""Tests for repro.core.bounds — the theorems checked empirically."""

import math

import pytest

from repro.core.bounds import (
    ceiling_ratio_bound,
    maa_bound_report,
    maa_ratio_bound,
    taa_certificate,
)
from repro.core.maa import solve_maa
from repro.core.taa import solve_taa


class TestCeilingRatioBound:
    def test_formula(self):
        assert ceiling_ratio_bound(1.0) == 2.0
        assert ceiling_ratio_bound(4.0) == 1.25

    def test_degenerate_alpha(self):
        assert ceiling_ratio_bound(0.0) == math.inf
        assert ceiling_ratio_bound(-1.0) == math.inf

    def test_monotone_decreasing_in_alpha(self):
        assert ceiling_ratio_bound(0.5) > ceiling_ratio_bound(2.0)


class TestMaaRatioBound:
    def test_small_edge_counts_degenerate_gracefully(self):
        assert maa_ratio_bound(1.0, 1) == pytest.approx(2.0)
        assert maa_ratio_bound(1.0, 2) == pytest.approx(2.0)

    def test_grows_with_edges(self):
        assert maa_ratio_bound(1.0, 1000) > maa_ratio_bound(1.0, 10)

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            maa_ratio_bound(1.0, 0)


class TestMaaBoundReport:
    def test_observed_within_bound_on_real_instance(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=0)
        report = maa_bound_report(result, small_sub_b4_instance.num_edges)
        assert report.observed_ratio >= 1.0 - 1e-9
        assert report.ceiling_bound >= 1.0
        assert report.combined_bound >= report.ceiling_bound
        # Theorem 4 is a w.h.p. statement against a generous bound; a small
        # instance with tiny alpha has a huge bound, so this must hold.
        assert report.within_bound

    def test_zero_cost_instance(self, small_sub_b4_instance):
        result = solve_maa(small_sub_b4_instance, rng=0)
        report = maa_bound_report(
            type(result)(
                schedule=result.schedule,
                fractional_cost=0.0,
                fractional_weights=result.fractional_weights,
                alpha=result.alpha,
            ),
            small_sub_b4_instance.num_edges,
        )
        assert report.observed_ratio == 1.0


class TestTaaCertificate:
    def test_certificate_on_real_instance(self, small_sub_b4_instance):
        caps = {key: 3 for key in small_sub_b4_instance.edges}
        result = solve_taa(small_sub_b4_instance, caps)
        cert = taa_certificate(result)
        assert cert.floor_respected
        assert 0.0 <= cert.gap_to_relaxation <= 1.0 + 1e-9

    def test_uncertified_run_trivially_respected(self, small_sub_b4_instance):
        caps = {key: 1 for key in small_sub_b4_instance.edges}
        result = solve_taa(small_sub_b4_instance, caps)
        cert = taa_certificate(result)
        assert cert.floor_respected  # floor is 0 or the run is certified
