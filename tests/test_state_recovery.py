"""The crash matrix: durable journaling, recovery, and fault injection.

Every test here enforces the crash-equivalence invariant of
:mod:`repro.state`: whatever point the fault hits — after batch N, after a
cycle commit, a dead pool worker, a torn or corrupt WAL tail, a failing
fsync — a resumed run produces a :class:`~repro.service.broker.BrokerReport`
whose profit, decision log and purchased capacities are *identical* (not
approximately equal) to an uninterrupted run with the same seed.
"""

import json

import pytest

from repro.exceptions import JournalError, RecoveryError, SnapshotError
from repro.service import Broker, BrokerConfig
from repro.state import (
    FaultPlan,
    Journal,
    SimulatedCrash,
    SnapshotStore,
    config_fingerprint,
    corrupt_tail,
    read_wal,
    recover,
    scan_wal,
    snapshot_path,
    truncate_tail,
)

_BASE = dict(
    topology="sub-b4",
    num_cycles=3,
    slots_per_cycle=6,
    requests_per_cycle=8,
    seed=11,
    time_limit=60.0,
)


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted run every crashed-and-recovered run must equal."""
    return Broker(BrokerConfig(**_BASE)).run()


def _config(tmp_path, **overrides):
    return BrokerConfig(**{**_BASE, "wal_path": tmp_path / "broker.wal", **overrides})


def assert_equivalent(report, baseline):
    """Bit-identical crash equivalence: profit, decisions, purchases."""
    assert report.decision_log() == baseline.decision_log()
    assert report.profit == baseline.profit
    assert report.revenue == baseline.revenue
    assert report.cost == baseline.cost
    assert len(report.cycles) == len(baseline.cycles)
    for recovered, reference in zip(report.cycles, baseline.cycles):
        assert recovered.purchased == reference.purchased
        assert recovered.assignment == reference.assignment
        assert recovered.profit == reference.profit


class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal.open(path, fsync="always") as journal:
            journal.append({"type": "a", "n": 1})
            journal.append({"type": "b", "x": [1.5, None, "s"]})
        assert read_wal(path) == [
            {"type": "a", "n": 1},
            {"type": "b", "x": [1.5, None, "s"]},
        ]

    def test_torn_tail_detected_and_dropped(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal.open(path) as journal:
            for n in range(5):
                journal.append({"n": n})
        truncate_tail(path, 3)
        records, offset, truncated = scan_wal(path)
        assert [r["n"] for r in records] == [0, 1, 2, 3]
        assert truncated
        # Re-opening heals the file: the tail is truncated and appends resume.
        with Journal.open(path) as journal:
            journal.append({"n": 99})
        records, healed_offset, truncated = scan_wal(path)
        assert [r["n"] for r in records] == [0, 1, 2, 3, 99]
        assert not truncated
        assert healed_offset == path.stat().st_size > offset

    def test_corrupt_tail_stops_scan(self, tmp_path):
        path = tmp_path / "j.wal"
        with Journal.open(path) as journal:
            for n in range(4):
                journal.append({"n": n})
        corrupt_tail(path, 2)  # damages the last record's payload only
        records, _, truncated = scan_wal(path)
        assert [r["n"] for r in records] == [0, 1, 2]
        assert truncated

    def test_missing_file_is_empty_journal(self, tmp_path):
        assert read_wal(tmp_path / "nope.wal") == []

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Journal(tmp_path / "j.wal", fsync="sometimes")


class TestSnapshotStore:
    def test_publish_load_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        seconds = store.publish({"cycles": [1, 2], "pi": 3.5})
        assert seconds >= 0.0
        assert store.load() == {"cycles": [1, 2], "pi": 3.5}

    def test_publish_is_atomic_replace(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        store.publish({"v": 1})
        store.publish({"v": 2})
        assert store.load() == {"v": 2}
        # No temp litter left behind in the directory.
        assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]

    def test_corrupt_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "snap.json")
        store.publish({"v": 1})
        raw = json.loads(store.path.read_text())
        raw["state"]["v"] = 2  # state no longer matches its checksum
        store.path.write_text(json.dumps(raw))
        with pytest.raises(SnapshotError, match="checksum"):
            store.load()

    def test_missing_snapshot_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path / "none.json").load() is None


class TestCrashMatrix:
    @pytest.mark.parametrize("crash_after", [1, 4, 8, 11])
    def test_kill_after_batch_n(self, tmp_path, baseline, crash_after):
        config = _config(tmp_path)
        with pytest.raises(SimulatedCrash):
            Broker(config, faults=FaultPlan(crash_after_batches=crash_after)).run()
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)

    @pytest.mark.parametrize("crash_after", [1, 2])
    def test_kill_after_cycle_commit(self, tmp_path, baseline, crash_after):
        config = _config(tmp_path)
        with pytest.raises(SimulatedCrash):
            Broker(config, faults=FaultPlan(crash_after_cycles=crash_after)).run()
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)
        # The committed cycles were recovered, not re-solved.
        expected = sum(len(c.batches) for c in baseline.cycles[:crash_after])
        assert resumed.summary()["recovered_batches"] == expected

    @pytest.mark.parametrize("torn_bytes", [3, 9, 40])
    def test_torn_wal_tail(self, tmp_path, baseline, torn_bytes):
        config = _config(tmp_path)
        Broker(config).run()
        truncate_tail(config.wal_path, torn_bytes)
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)

    def test_corrupt_wal_tail(self, tmp_path, baseline):
        config = _config(tmp_path)
        Broker(config).run()
        corrupt_tail(config.wal_path, 16)
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)

    def test_worker_death_mid_solve(self, tmp_path, baseline):
        config = _config(tmp_path, workers=2)
        plan = FaultPlan(
            kill_worker_cycle=1, once_path=str(tmp_path / "kill.latch")
        )
        report = Broker(config, faults=plan).run()
        assert_equivalent(report, baseline)
        assert report.summary()["worker_restarts"] >= 1
        assert (tmp_path / "kill.latch").exists()

    def test_fsync_failure_is_loud_and_prefix_recovers(self, tmp_path, baseline):
        config = _config(tmp_path, fsync="always")
        with pytest.raises(JournalError, match="fsync"):
            Broker(config, faults=FaultPlan(fail_fsync_at=4)).run()
        resumed = Broker(_config(tmp_path)).run(resume=True)
        assert_equivalent(resumed, baseline)

    def test_corrupt_snapshot_falls_back_to_wal(self, tmp_path, baseline):
        config = _config(tmp_path)
        Broker(config).run()
        snap = snapshot_path(config.wal_path)
        snap.write_text("not json {")
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)

    def test_resume_of_finished_run_replays_everything(self, tmp_path, baseline):
        config = _config(tmp_path)
        first = Broker(config).run()
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)
        total = sum(len(c.batches) for c in first.cycles)
        assert resumed.summary()["recovered_batches"] == total
        # Nothing was re-served, so no new cycle commits were journaled.
        commits = [r for r in read_wal(config.wal_path) if r["type"] == "cycle"]
        assert len(commits) == len(baseline.cycles)

    def test_orphan_batch_records_match_the_rerun(self, tmp_path, baseline):
        # The WAL's per-decision trail for an uncommitted cycle must agree
        # with what the deterministic re-run decides — the write-ahead log
        # is a prefix of the truth, never a fork of it.
        config = _config(tmp_path)
        with pytest.raises(SimulatedCrash):
            Broker(config, faults=FaultPlan(crash_after_batches=8)).run()
        records = read_wal(config.wal_path)
        committed = {r["cycle"] for r in records if r["type"] == "cycle"}
        orphans = [
            r for r in records
            if r["type"] == "batch" and r["cycle"] not in committed
        ]
        assert orphans, "crash point must leave an uncommitted cycle behind"
        resumed = Broker(config).run(resume=True)
        assert_equivalent(resumed, baseline)
        rerun = resumed.cycles[orphans[0]["cycle"]]
        for orphan, record in zip(orphans, rerun.batches):
            assert orphan["accepted"] == record.accepted
            assert orphan["revenue"] == record.revenue
            assert orphan["incremental_cost"] == record.incremental_cost


class TestRecoveryGuards:
    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        config = _config(tmp_path)
        Broker(config).run()
        other = _config(tmp_path, seed=99)
        with pytest.raises(RecoveryError, match="different configuration"):
            Broker(other).run(resume=True)

    def test_resume_without_wal_rejected(self):
        with pytest.raises(ValueError, match="wal_path"):
            Broker(BrokerConfig(**_BASE)).run(resume=True)

    def test_resume_extends_horizon(self, tmp_path, baseline):
        # num_cycles is not part of the fingerprint: a resumed run may
        # serve more cycles than the run it continues.
        config = _config(tmp_path)
        Broker(config).run()
        longer = _config(tmp_path, num_cycles=4)
        extended = Broker(longer).run(resume=True)
        assert extended.decision_log()[: len(baseline.decision_log())] == (
            baseline.decision_log()
        )
        assert len(extended.cycles) == 4

    def test_fresh_wal_recovers_empty(self, tmp_path):
        config = _config(tmp_path)
        state = recover(config.wal_path, fingerprint=config_fingerprint(config))
        assert state.cycles == [] and state.next_cycle == 0

    def test_snapshot_cadence(self, tmp_path):
        config = _config(tmp_path, snapshot_every=2)
        Broker(config).run()
        snapshot = SnapshotStore(snapshot_path(config.wal_path)).load()
        # 3 cycles, snapshot every 2: the last publish covered cycles 0-1.
        assert snapshot["next_cycle"] == 2
        assert [c["cycle"] for c in snapshot["cycles"]] == [0, 1]
        assert snapshot["queue"] == []
        assert snapshot["seeds"]["seed"] == _BASE["seed"]


class TestTelemetryCounters:
    def test_wal_run_reports_durability_counters(self, tmp_path):
        config = _config(tmp_path)
        summary = Broker(config).run().summary()
        assert summary["wal_bytes"] > 0
        assert summary["snapshot_seconds"] > 0.0
        assert summary["recovered_batches"] == 0
        assert summary["worker_restarts"] == 0

    def test_wal_off_counters_zero(self):
        summary = Broker(BrokerConfig(**_BASE)).run().summary()
        assert summary["wal_bytes"] == 0
        assert summary["snapshot_seconds"] == 0.0
        assert summary["recovered_batches"] == 0
