"""Tests for the MinCost baseline."""

import pytest

from repro.baselines.mincost import solve_mincost
from repro.core.maa import solve_maa


class TestSolveMincost:
    def test_accepts_everything(self, small_sub_b4_instance):
        schedule = solve_mincost(small_sub_b4_instance)
        assert schedule.num_accepted == small_sub_b4_instance.num_requests

    def test_uses_cheapest_path(self, small_sub_b4_instance):
        schedule = solve_mincost(small_sub_b4_instance)
        assert all(p == 0 for p in schedule.assignment.values())

    def test_diamond_routes_on_cheap_links(self, diamond_instance):
        schedule = solve_mincost(diamond_instance)
        assert schedule.charged[("A", "C")] == 0
        assert schedule.charged[("A", "B")] > 0

    def test_exclusive_mode_charges_at_least_peak(self, small_sub_b4_instance):
        peak = solve_mincost(small_sub_b4_instance, sharing="peak")
        exclusive = solve_mincost(small_sub_b4_instance, sharing="exclusive")
        assert exclusive.cost >= peak.cost - 1e-9
        for key, units in peak.charged.items():
            assert exclusive.charged[key] >= units

    def test_exclusive_mode_sums_rates(self, diamond):
        from repro.core.instance import SPMInstance
        from repro.workload.request import RequestSet

        from tests.conftest import make_request

        # Two disjoint-window requests share a unit in peak mode but not in
        # exclusive mode.
        requests = RequestSet(
            [
                make_request(0, start=0, end=0, rate=0.6),
                make_request(1, start=1, end=1, rate=0.6),
            ],
            num_slots=2,
        )
        inst = SPMInstance.build(diamond, requests, k_paths=1)
        assert solve_mincost(inst, sharing="peak").charged[("A", "B")] == 1
        assert solve_mincost(inst, sharing="exclusive").charged[("A", "B")] == 2

    def test_invalid_sharing(self, small_sub_b4_instance):
        with pytest.raises(ValueError):
            solve_mincost(small_sub_b4_instance, sharing="magic")

    def test_never_cheaper_than_maa_lp_bound(self, small_sub_b4_instance):
        mincost = solve_mincost(small_sub_b4_instance)
        maa = solve_maa(small_sub_b4_instance, rng=0)
        assert mincost.cost >= maa.fractional_cost - 1e-6
