"""Hypothesis property tests across the whole pipeline.

Random workloads on random small WANs; the properties are the structural
invariants every component must preserve no matter the draw.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.ecoflow import solve_ecoflow
from repro.core.instance import SPMInstance
from repro.core.maa import improve_paths, solve_maa
from repro.core.metis import prune_unprofitable
from repro.core.schedule import Schedule
from repro.core.taa import solve_taa
from repro.net.topologies import random_wan
from repro.sim.validator import validate_schedule
from repro.workload.request import Request, RequestSet

SLOTS = 6


@st.composite
def random_instance(draw):
    """A small random WAN plus a random request set."""
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    n_dcs = draw(st.integers(min_value=3, max_value=6))
    max_extra = n_dcs * (n_dcs - 1) // 2 - n_dcs
    extra = draw(st.integers(min_value=0, max_value=min(2, max_extra)))
    topo = random_wan(n_dcs, extra, price_range=(1.0, 5.0), rng=topo_seed)
    dcs = topo.datacenters

    n_requests = draw(st.integers(min_value=1, max_value=10))
    requests = []
    for i in range(n_requests):
        src_idx = draw(st.integers(min_value=0, max_value=n_dcs - 1))
        dst_off = draw(st.integers(min_value=1, max_value=n_dcs - 1))
        start = draw(st.integers(min_value=0, max_value=SLOTS - 1))
        end = draw(st.integers(min_value=start, max_value=SLOTS - 1))
        requests.append(
            Request(
                request_id=i,
                source=dcs[src_idx],
                dest=dcs[(src_idx + dst_off) % n_dcs],
                start=start,
                end=end,
                rate=draw(
                    st.floats(min_value=0.05, max_value=0.5, allow_nan=False)
                ),
                value=draw(
                    st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
                ),
            )
        )
    return SPMInstance.build(topo, RequestSet(requests, SLOTS), k_paths=2)


common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestMaaProperties:
    @given(random_instance())
    @common_settings
    def test_maa_satisfies_all_and_validates(self, instance):
        result = solve_maa(instance, rng=0)
        assert result.schedule.num_accepted == instance.num_requests
        assert validate_schedule(result.schedule).ok
        assert result.cost >= result.fractional_cost - 1e-6

    @given(random_instance())
    @common_settings
    def test_improve_paths_never_worse(self, instance):
        schedule = solve_maa(instance, rng=1).schedule
        improved = improve_paths(instance, schedule.assignment)
        assert Schedule(instance, improved).cost <= schedule.cost + 1e-9


class TestTaaProperties:
    @given(random_instance(), st.integers(min_value=0, max_value=3))
    @common_settings
    def test_taa_feasible_and_bounded(self, instance, cap_units):
        capacities = {key: cap_units for key in instance.edges}
        result = solve_taa(instance, capacities)
        result.schedule.check_capacities(capacities)
        assert result.revenue <= result.relaxation_revenue + 1e-6
        assert validate_schedule(result.schedule).ok


class TestScheduleProperties:
    @given(random_instance())
    @common_settings
    def test_charging_is_minimal_integer_cover(self, instance):
        schedule = solve_maa(instance, rng=2).schedule
        peaks = schedule.loads.max(axis=1)
        for idx, key in enumerate(instance.edges):
            units = schedule.charged[key]
            assert units >= peaks[idx] - 1e-9
            assert units <= math.ceil(peaks[idx] - 1e-9) or units == 0

    @given(random_instance())
    @common_settings
    def test_profit_decomposition(self, instance):
        schedule = solve_maa(instance, rng=3).schedule
        assert schedule.profit == pytest.approx(
            schedule.revenue - schedule.cost
        )


class TestPruneProperties:
    @given(random_instance())
    @common_settings
    def test_prune_monotone_profit_and_feasible(self, instance):
        schedule = solve_maa(instance, rng=4).schedule
        pruned = prune_unprofitable(instance, schedule)
        assert pruned.profit >= schedule.profit - 1e-9
        assert validate_schedule(pruned).ok
        accepted_before = set(schedule.accepted_ids)
        assert set(pruned.accepted_ids) <= accepted_before


class TestEcoflowProperties:
    @given(random_instance())
    @common_settings
    def test_ecoflow_profit_nonnegative_and_valid(self, instance):
        result = solve_ecoflow(instance)
        assert result.profit >= -1e-9
        assert validate_schedule(result.schedule).ok
