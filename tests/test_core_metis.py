"""Tests for repro.core.metis — the alternating framework."""

import pytest

from repro.core.maa import solve_maa
from repro.core.metis import (
    Metis,
    MinUtilizationLimiter,
    ProportionalLimiter,
    prune_unprofitable,
)
from repro.core.schedule import Schedule
from repro.sim.validator import validate_schedule


class TestLimiters:
    def test_min_utilization_reduces_one_unit(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=1).schedule
        caps = {k: int(v) for k, v in schedule.charged.items()}
        shrunk = MinUtilizationLimiter().limit(
            small_sub_b4_instance, schedule, caps
        )
        assert shrunk is not None
        diff = {
            k: caps[k] - shrunk[k] for k in caps if caps[k] != shrunk[k]
        }
        assert sum(diff.values()) == 1, "exactly one unit removed"

    def test_min_utilization_targets_least_utilized(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=1).schedule
        caps = {k: int(v) for k, v in schedule.charged.items()}
        shrunk = MinUtilizationLimiter().limit(small_sub_b4_instance, schedule, caps)
        target = next(k for k in caps if caps[k] != shrunk[k])
        mean_loads = schedule.loads.mean(axis=1)
        target_util = (
            mean_loads[small_sub_b4_instance.edge_index[target]] / caps[target]
        )
        for idx, key in enumerate(small_sub_b4_instance.edges):
            if caps.get(key, 0) > 0:
                assert target_util <= mean_loads[idx] / caps[key] + 1e-12

    def test_min_utilization_exhausted_returns_none(self, small_sub_b4_instance):
        schedule = Schedule(
            small_sub_b4_instance,
            {rid: None for rid in small_sub_b4_instance.requests.request_ids},
        )
        caps = {k: 0 for k in small_sub_b4_instance.edges}
        assert MinUtilizationLimiter().limit(
            small_sub_b4_instance, schedule, caps
        ) is None

    def test_min_utilization_does_not_mutate(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=1).schedule
        caps = {k: int(v) for k, v in schedule.charged.items()}
        before = dict(caps)
        MinUtilizationLimiter().limit(small_sub_b4_instance, schedule, caps)
        assert caps == before

    def test_proportional_shrinks(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=1).schedule
        caps = {k: 10 for k in small_sub_b4_instance.edges}
        shrunk = ProportionalLimiter(0.5).limit(
            small_sub_b4_instance, schedule, caps
        )
        assert all(shrunk[k] == 5 for k in caps)

    def test_proportional_guarantees_progress(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=1).schedule
        caps = {k: 1 for k in small_sub_b4_instance.edges}
        shrunk = ProportionalLimiter(0.99).limit(
            small_sub_b4_instance, schedule, caps
        )
        assert sum(shrunk.values()) < sum(caps.values())

    def test_limiter_params_validated(self):
        with pytest.raises(ValueError):
            MinUtilizationLimiter(step=0)
        with pytest.raises(ValueError):
            ProportionalLimiter(1.0)


class TestPrune:
    def test_prune_never_lowers_profit(self, small_sub_b4_instance):
        schedule = solve_maa(small_sub_b4_instance, rng=2).schedule
        pruned = prune_unprofitable(small_sub_b4_instance, schedule)
        assert pruned.profit >= schedule.profit - 1e-9

    def test_prune_removes_lone_unprofitable_request(self, diamond_instance):
        # Request 1 (value 2) alone on its path costs 2 units... build a
        # schedule where request 2 (value 1.0) rides the expensive route
        # (marginal cost 4 > 1): pruning must decline it.
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 1})
        pruned = prune_unprofitable(diamond_instance, schedule)
        assert pruned.assignment[2] is None
        assert pruned.profit > schedule.profit

    def test_prune_keeps_profitable(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        pruned = prune_unprofitable(diamond_instance, schedule)
        assert pruned.assignment[0] == 0  # value 3 > cost 2

    def test_prune_input_unchanged(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 1})
        prune_unprofitable(diamond_instance, schedule)
        assert schedule.assignment == {0: 0, 1: 0, 2: 1}


class TestMetis:
    def test_profit_never_negative(self, small_sub_b4_instance):
        outcome = Metis(theta=5).solve(small_sub_b4_instance, rng=1)
        assert outcome.best.profit >= 0.0

    def test_best_schedule_validates(self, small_sub_b4_instance):
        outcome = Metis(theta=5).solve(small_sub_b4_instance, rng=1)
        assert outcome.best.schedule is not None
        report = validate_schedule(outcome.best.schedule)
        assert report.ok, report.errors

    def test_profit_at_least_init_maa(self, small_sub_b4_instance):
        outcome = Metis(theta=5).solve(small_sub_b4_instance, rng=1)
        assert outcome.best.profit >= outcome.initial_profit - 1e-9

    def test_more_theta_never_hurts(self, small_sub_b4_instance):
        short = Metis(theta=1, maa_rounds=1, local_search=False).solve(
            small_sub_b4_instance, rng=4
        )
        long = Metis(theta=12, maa_rounds=1, local_search=False).solve(
            small_sub_b4_instance, rng=4
        )
        assert long.best.profit >= short.best.profit - 1e-9

    def test_round_telemetry(self, small_sub_b4_instance):
        outcome = Metis(theta=4).solve(small_sub_b4_instance, rng=1)
        assert 0 < outcome.num_rounds <= 4
        for record in outcome.rounds:
            assert record.taa_accepted <= record.candidate_requests

    def test_empty_instance(self, small_sub_b4_instance):
        empty = small_sub_b4_instance.restrict([])
        outcome = Metis(theta=3).solve(empty, rng=0)
        assert outcome.best.profit == 0.0
        assert outcome.best.schedule is None

    def test_deterministic_for_seed(self, small_sub_b4_instance):
        a = Metis(theta=4).solve(small_sub_b4_instance, rng=9)
        b = Metis(theta=4).solve(small_sub_b4_instance, rng=9)
        assert a.best.profit == pytest.approx(b.best.profit)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            Metis(theta=0)
        with pytest.raises(ValueError):
            Metis(maa_rounds=0)

    def test_custom_limiter_used(self, small_sub_b4_instance):
        outcome = Metis(theta=3, limiter=ProportionalLimiter(0.5)).solve(
            small_sub_b4_instance, rng=1
        )
        assert outcome.best.profit >= 0.0

    def test_time_limit_plumbed_and_harmless(self, small_sub_b4_instance):
        # A generous limit must not change the alternation's outcome.
        bounded = Metis(theta=3, time_limit=120.0).solve(
            small_sub_b4_instance, rng=1
        )
        unbounded = Metis(theta=3).solve(small_sub_b4_instance, rng=1)
        assert bounded.best.profit == pytest.approx(unbounded.best.profit)

    def test_time_limit_validated(self):
        with pytest.raises(ValueError, match="time_limit"):
            Metis(time_limit=0.0)
