"""Tests for repro.sim.validator."""

import pytest

from repro.core.schedule import Schedule
from repro.sim.validator import validate_schedule


class TestValidateSchedule:
    def test_good_schedule_passes(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: 1})
        report = validate_schedule(schedule)
        assert report.ok
        assert report.revenue == pytest.approx(schedule.revenue)
        assert report.cost == pytest.approx(schedule.cost)
        assert report.profit == pytest.approx(schedule.profit)
        assert report.num_accepted == 2

    def test_detects_tampered_charging(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        # Tamper after construction: claim less bandwidth than the peak.
        schedule.charged[("A", "B")] = 0
        report = validate_schedule(schedule)
        assert not report.ok
        assert any("exceeds purchased" in e for e in report.errors)

    def test_detects_external_capacity_violation(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        report = validate_schedule(
            schedule, capacities={key: 0 for key in diamond_instance.edges}
        )
        assert not report.ok
        assert any("external capacity" in e for e in report.errors)

    def test_none_external_capacity_ignored(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: 0, 2: 0})
        report = validate_schedule(
            schedule, capacities={key: None for key in diamond_instance.edges}
        )
        assert report.ok

    def test_detects_accounting_drift(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: 0, 1: None, 2: None})
        # Simulate an accounting bug by tampering with the assignment dict
        # behind the cached loads.
        schedule.assignment[1] = 0
        report = validate_schedule(schedule)
        assert not report.ok

    def test_empty_schedule_ok(self, diamond_instance):
        schedule = Schedule(diamond_instance, {0: None, 1: None, 2: None})
        report = validate_schedule(schedule)
        assert report.ok
        assert report.profit == 0.0
