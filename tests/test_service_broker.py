"""Tests for repro.service.broker — the streaming admission broker."""

import pytest

import repro.core.online as online_mod
from repro.baselines.opt import solve_opt_spm
from repro.core.online import OnlineScheduler
from repro.core.schedule import Schedule
from repro.exceptions import SolverError
from repro.lp.result import RawSolution, SolveStatus
from repro.service.broker import Broker, BrokerConfig, run_cycle
from repro.service.cache import DecisionCache
from repro.service.ingest import TraceSource
from repro.sim.validator import validate_schedule

_SMALL = dict(
    topology="sub-b4",
    slots_per_cycle=12,
    requests_per_cycle=15,
    seed=7,
)


class TestSeedDeterminism:
    def test_same_seed_same_log_and_profit(self):
        config = BrokerConfig(num_cycles=2, **_SMALL)
        first = Broker(config).run()
        second = Broker(config).run()
        assert first.decision_log() == second.decision_log()
        assert first.profit == second.profit
        assert [c.profit for c in first.cycles] == [c.profit for c in second.cycles]

    def test_different_seed_differs(self):
        base = {**_SMALL, "seed": 7}
        other = {**_SMALL, "seed": 8}
        first = Broker(BrokerConfig(num_cycles=1, **base)).run()
        second = Broker(BrokerConfig(num_cycles=1, **other)).run()
        assert first.decision_log() != second.decision_log()


class TestOfflineDominance:
    def test_broker_profit_at_most_offline_opt(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        config = BrokerConfig(
            topology=instance.topology,
            num_cycles=1,
            slots_per_cycle=instance.num_slots,
        )
        source = TraceSource(instance.requests)
        report = Broker(config, source=source).run()
        offline = solve_opt_spm(instance)
        assert report.profit <= offline.profit + 1e-6
        assert report.profit >= 0.0

    def test_matches_online_scheduler_with_unit_window(self, small_sub_b4_instance):
        # window=1, no cache, no queue bound == the exact per-slot online
        # extension; the broker must reproduce its decisions verbatim.
        instance = small_sub_b4_instance
        config = BrokerConfig(
            topology=instance.topology,
            num_cycles=1,
            slots_per_cycle=instance.num_slots,
            window=1,
            cache_size=0,
        )
        report = Broker(config, source=TraceSource(instance.requests)).run()
        online = OnlineScheduler().run(instance)
        assert report.cycles[0].assignment == online.schedule.assignment
        assert report.profit == pytest.approx(online.profit)


class TestAccounting:
    def test_batch_ledger_consistent_with_schedule(self):
        config = BrokerConfig(num_cycles=1, **_SMALL)
        report = Broker(config).run()
        cycle = report.cycles[0]
        assert sum(b.revenue for b in cycle.batches) == pytest.approx(cycle.revenue)
        assert sum(b.incremental_cost for b in cycle.batches) == pytest.approx(
            cycle.cost
        )
        assert sum(b.accepted for b in cycle.batches) == cycle.accepted
        assert cycle.accepted + cycle.declined + cycle.shed == cycle.num_requests
        assert report.summary()["profit"] == pytest.approx(report.profit)

    def test_schedule_rebuilds_and_validates(self):
        config = BrokerConfig(num_cycles=1, **_SMALL)
        broker = Broker(config)
        report = broker.run()
        instance_requests = broker.source.cycle(0)
        from repro.core.instance import SPMInstance

        instance = SPMInstance.build(
            broker.topology, instance_requests, k_paths=config.k_paths
        )
        schedule = Schedule(instance, report.cycles[0].assignment)
        assert validate_schedule(schedule).ok
        assert schedule.profit == pytest.approx(report.cycles[0].profit)

    def test_empty_cycle(self):
        config = BrokerConfig(num_cycles=1, requests_per_cycle=0, topology="sub-b4")
        report = Broker(config).run()
        assert report.profit == 0.0
        assert report.cycles[0].num_requests == 0
        assert report.summary()["decisions"] == 0


class TestWindowsAndQueues:
    def test_wider_window_still_bounded_by_opt(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        offline = solve_opt_spm(instance)
        for window in (2, 4):
            config = BrokerConfig(
                topology=instance.topology,
                num_cycles=1,
                slots_per_cycle=instance.num_slots,
                window=window,
            )
            report = Broker(config, source=TraceSource(instance.requests)).run()
            assert report.profit <= offline.profit + 1e-6

    def test_max_batch_splits_solves(self):
        config = BrokerConfig(num_cycles=1, max_batch=1, **_SMALL)
        report = Broker(config).run()
        assert all(b.size == 1 for b in report.cycles[0].batches)
        # One MILP per request.
        assert len(report.cycles[0].batches) == report.cycles[0].num_requests

    def test_queue_capacity_sheds(self):
        config = BrokerConfig(
            num_cycles=1, window=12, queue_capacity=5, **_SMALL
        )
        report = Broker(config).run()
        cycle = report.cycles[0]
        assert cycle.shed > 0
        assert cycle.accepted + cycle.declined + cycle.shed == cycle.num_requests
        # Shed requests are declined in the final assignment.
        assert sum(1 for p in cycle.assignment.values() if p is None) >= cycle.shed
        assert report.summary()["shed"] == cycle.shed


class TestDecisionCache:
    def test_repeated_trace_hits_cache(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        config = BrokerConfig(
            topology=instance.topology,
            num_cycles=3,
            slots_per_cycle=instance.num_slots,
        )
        report = Broker(config, source=TraceSource(instance.requests)).run()
        summary = report.summary()
        assert summary["cache_hit_rate"] >= 0.5
        profits = [c.profit for c in report.cycles]
        assert profits[0] == pytest.approx(profits[1])
        assert profits[1] == pytest.approx(profits[2])

    def test_cache_replay_equals_solving(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        kwargs = dict(
            topology=instance.topology,
            num_cycles=2,
            slots_per_cycle=instance.num_slots,
        )
        source = TraceSource(instance.requests)
        cached = Broker(BrokerConfig(**kwargs), source=source).run()
        uncached = Broker(BrokerConfig(cache_size=0, **kwargs), source=source).run()
        assert cached.decision_log() == uncached.decision_log()
        assert uncached.summary()["cache_hits"] == 0


class TestWorkerPool:
    def test_pool_matches_serial(self):
        serial = Broker(BrokerConfig(num_cycles=3, workers=0, **_SMALL)).run()
        pooled = Broker(BrokerConfig(num_cycles=3, workers=2, **_SMALL)).run()
        assert pooled.decision_log() == serial.decision_log()
        assert pooled.profit == pytest.approx(serial.profit)
        assert len(pooled.cycles) == 3

    def test_single_cycle_stays_serial(self):
        # workers >= 2 with one cycle: nothing to parallelize, no pool spawn.
        report = Broker(BrokerConfig(num_cycles=1, workers=4, **_SMALL)).run()
        assert len(report.cycles) == 1


class TestCancellationAndLimits:
    def test_check_cancelled_aborts_cycle(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        with pytest.raises(SolverError, match="cancelled"):
            run_cycle(
                instance.topology,
                instance.requests,
                check_cancelled=lambda: True,
            )

    def test_time_limit_plumbs_through(self, small_sub_b4_instance):
        instance = small_sub_b4_instance
        result = run_cycle(
            instance.topology, instance.requests, time_limit=60.0,
            cache=DecisionCache(8),
        )
        assert result.accepted + result.declined == instance.num_requests


class TestGracefulDegradation:
    """Limit-hit solves degrade to declines/incumbents, never crashes."""

    def test_tiny_time_limit_completes_and_counts_timeouts(self):
        config = BrokerConfig(
            num_cycles=1, time_limit=1e-7, cache_size=0, **_SMALL
        )
        report = Broker(config).run()  # must not raise
        summary = report.summary()
        assert summary["accepted"] + summary["declined"] == summary["decisions"]
        # ~0 seconds leaves no incumbent: every solved batch is declined
        # and counted as timed out.
        assert summary["timed_out_batches"] == summary["batches"]
        assert summary["accepted"] == 0
        assert report.profit == 0.0

    def test_forced_timeout_declines_whole_batches(
        self, small_sub_b4_instance, monkeypatch
    ):
        monkeypatch.setattr(
            online_mod,
            "solve_compiled_raw",
            lambda *a, **k: RawSolution(
                status=SolveStatus.TIME_LIMIT, objective=float("nan")
            ),
        )
        instance = small_sub_b4_instance
        result = run_cycle(
            instance.topology, instance.requests, time_limit=1e-3
        )
        assert result.accepted == 0
        assert all(b.timed_out for b in result.batches)
        assert all(path is None for path in result.assignment.values())

    def test_forced_suboptimal_is_flagged_and_not_cached(
        self, small_sub_b4_instance, monkeypatch
    ):
        real = online_mod.solve_compiled_raw

        def relabel(*args, **kwargs):
            raw = real(*args, **kwargs)
            return RawSolution(
                status=SolveStatus.FEASIBLE, objective=raw.objective, x=raw.x
            )

        monkeypatch.setattr(online_mod, "solve_compiled_raw", relabel)
        instance = small_sub_b4_instance
        cache = DecisionCache(32)
        first = run_cycle(instance.topology, instance.requests, cache=cache)
        assert all(b.suboptimal for b in first.batches)
        # Only proven-optimal decisions enter the cache, so a replay of the
        # same cycle still solves every batch.
        second = run_cycle(instance.topology, instance.requests, cache=cache)
        assert not any(b.cache_hit for b in second.batches)
        # The relabelled incumbents are the real optima, so the decisions
        # themselves are unchanged.
        assert first.assignment == second.assignment

    def test_fast_path_off_matches_on(self):
        on = Broker(BrokerConfig(num_cycles=1, **_SMALL)).run()
        off = Broker(
            BrokerConfig(num_cycles=1, fast_path=False, **_SMALL)
        ).run()
        assert on.decision_log() == off.decision_log()
        assert on.profit == pytest.approx(off.profit)
        assert on.summary()["suboptimal_batches"] == 0
        assert on.summary()["timed_out_batches"] == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_cycles", 0),
            ("slots_per_cycle", 0),
            ("window", 0),
            ("requests_per_cycle", -1),
            ("workers", -1),
            ("cache_size", -1),
        ],
    )
    def test_rejects_bad_fields(self, field, value):
        with pytest.raises(ValueError):
            BrokerConfig(**{field: value})

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="unknown topology"):
            Broker(BrokerConfig(topology="nope"))

    def test_top_level_exports(self):
        import repro

        assert repro.Broker is Broker
        assert repro.BrokerConfig is BrokerConfig
        assert hasattr(repro, "Metis") and hasattr(repro, "SPMInstance")
