"""Smoke + shape tests for the figure experiments at reduced scale.

Each experiment runs on a small sweep so the suite stays fast; shape
assertions check the *relationships* the paper's figures rely on, not
absolute values.
"""

import math

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4a, run_fig4b, run_fig4cd
from repro.experiments.fig5 import run_fig5
from repro.workload.value_models import FlatRateValueModel, PriceAwareValueModel


@pytest.fixture(scope="module")
def fig3_result():
    cfg = ExperimentConfig(
        topology="sub-b4",
        request_counts=(40,),
        theta=10,
        maa_rounds=2,
        time_limit=120.0,
        value_model=FlatRateValueModel(0.6),
    )
    return run_fig3(cfg)


class TestFig3:
    def test_rows_per_solution(self, fig3_result):
        solutions = fig3_result.column("solution")
        assert solutions.count("Metis") == 1
        assert solutions.count("OPT(SPM)") == 1
        assert solutions.count("OPT(RL-SPM)") == 1

    def test_opt_dominates(self, fig3_result):
        by_solution = {
            row[1]: row for row in fig3_result.rows if not math.isnan(row[2])
        }
        opt = by_solution["OPT(SPM)"]
        metis = by_solution["Metis"]
        rl = by_solution["OPT(RL-SPM)"]
        assert opt[2] >= metis[2] - 1e-6, "OPT(SPM) has the best profit"
        assert opt[2] >= rl[2] - 1e-6

    def test_rl_spm_accepts_all(self, fig3_result):
        rl = next(r for r in fig3_result.rows if r[1] == "OPT(RL-SPM)")
        assert rl[3] == rl[0], "OPT(RL-SPM) accepts every request"

    def test_no_opt_mode(self):
        cfg = ExperimentConfig(
            topology="sub-b4", request_counts=(15,), theta=3, maa_rounds=1
        )
        result = run_fig3(cfg, include_opt=False)
        assert all(row[1] == "Metis" for row in result.rows)


class TestFig4a:
    def test_shape(self):
        cfg = ExperimentConfig(
            topology="b4", request_counts=(120,), max_duration=None
        )
        result = run_fig4a(cfg)
        row = result.rows[0]
        maa_cost, mincost_cost, ratio, lp_bound = row[1], row[2], row[3], row[4]
        assert maa_cost >= lp_bound - 1e-6, "LP lower-bounds the rounded cost"
        assert ratio == pytest.approx(mincost_cost / maa_cost)


class TestFig4b:
    def test_ratios_bounded(self):
        cfg = ExperimentConfig(
            topology="sub-b4", request_counts=(25,), time_limit=120.0
        )
        result = run_fig4b(cfg, num_roundings=40)
        for row in result.rows:
            mean, p95, mx, mn = row[2], row[3], row[4], row[5]
            assert 1.0 - 1e-9 <= mn <= mean <= mx
            assert p95 <= mx
            assert mx < 3.0, "rounding should stay within a small factor"

    def test_bad_roundings(self):
        with pytest.raises(ValueError):
            run_fig4b(num_roundings=0)


class TestFig4cd:
    def test_contended_regime_shape(self):
        cfg = ExperimentConfig(
            topology="b4",
            request_counts=(600,),
            max_duration=None,
            value_model=PriceAwareValueModel(markup=1.5, noise=0.9),
        )
        result = run_fig4cd(cfg)
        row = result.rows[0]
        taa_rev, amoeba_rev, taa_acc, amoeba_acc, lp = (
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
        )
        assert taa_rev <= lp + 1e-6, "LP upper-bounds TAA revenue"
        assert taa_rev >= 0.9 * amoeba_rev, (
            "TAA should be at least competitive with first-fit"
        )
        assert 0 < taa_acc <= 600 and 0 < amoeba_acc <= 600


class TestFig5:
    def test_shape(self):
        cfg = ExperimentConfig(
            topology="b4", request_counts=(200,), theta=12, maa_rounds=2
        )
        result = run_fig5(cfg)
        row = result.rows[0]
        metis_profit, eco_profit = row[1], row[2]
        metis_accepted, eco_accepted = row[3], row[4]
        assert metis_profit >= 0.9 * eco_profit, (
            "Metis should not lose badly to the greedy at this scale"
        )
        assert metis_accepted >= eco_accepted, (
            "paper: EcoFlow declines more requests than Metis"
        )
