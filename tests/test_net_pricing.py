"""Tests for repro.net.pricing."""

import pytest

from repro.net.pricing import REGION_PRICES, link_price, region_price


class TestRegionPrice:
    def test_baseline_regions(self):
        assert region_price("europe") == 1.0
        assert region_price("north_america") == 1.0

    def test_expensive_regions_above_baseline(self):
        for region in ("asia", "latin_america", "oceania", "africa"):
            assert region_price(region) > 1.0

    def test_case_insensitive(self):
        assert region_price("  Europe ") == 1.0
        assert region_price("ASIA") == REGION_PRICES["asia"]

    def test_unknown_region(self):
        with pytest.raises(KeyError, match="known regions"):
            region_price("atlantis")


class TestLinkPrice:
    def test_intra_region(self):
        assert link_price("europe", "europe") == 1.0

    def test_mean_of_endpoints(self):
        expected = (REGION_PRICES["north_america"] + REGION_PRICES["asia"]) / 2
        assert link_price("north_america", "asia") == expected

    def test_symmetric(self):
        assert link_price("asia", "europe") == link_price("europe", "asia")

    def test_relative_ordering(self):
        assert (
            link_price("europe", "europe")
            < link_price("europe", "asia")
            < link_price("asia", "asia")
            < link_price("oceania", "oceania")
        )
