"""Tests for repro.workload.patterns."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.net.topologies import sub_b4
from repro.workload.patterns import (
    SEASONAL_RETAIL,
    generate_structured_workload,
    gravity_pair_weights,
    seasonal_weights,
)


class TestSeasonalWeights:
    def test_retail_profile_shape(self):
        assert len(SEASONAL_RETAIL) == 12
        assert max(SEASONAL_RETAIL) == SEASONAL_RETAIL[10]  # November peak

    def test_sinusoid_bounds(self):
        weights = seasonal_weights(12, peak=2.0)
        assert len(weights) == 12
        assert min(weights) >= 1.0 - 1e-9
        assert max(weights) <= 2.0 + 1e-9

    def test_peak_one_is_flat(self):
        weights = seasonal_weights(6, peak=1.0)
        assert all(w == pytest.approx(1.0) for w in weights)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            seasonal_weights(0)
        with pytest.raises(WorkloadError):
            seasonal_weights(12, peak=0.5)


class TestGravityWeights:
    def test_no_self_pairs(self):
        weights = gravity_pair_weights(sub_b4(), rng=0)
        assert all(s != d for s, d in weights)
        n = sub_b4().num_datacenters
        assert len(weights) == n * (n - 1)

    def test_explicit_masses(self):
        topo = sub_b4()
        masses = {dc: 1.0 for dc in topo.datacenters}
        masses["DC1"] = 10.0
        weights = gravity_pair_weights(topo, masses)
        assert weights[("DC1", "DC2")] == pytest.approx(10.0)
        assert weights[("DC2", "DC3")] == pytest.approx(1.0)

    def test_missing_mass_rejected(self):
        topo = sub_b4()
        with pytest.raises(WorkloadError, match="missing"):
            gravity_pair_weights(topo, {"DC1": 1.0})


class TestStructuredWorkload:
    def test_deterministic(self):
        topo = sub_b4()
        a = generate_structured_workload(topo, 30, rng=5)
        b = generate_structured_workload(topo, 30, rng=5)
        for ra, rb in zip(a, b):
            assert (ra.source, ra.dest, ra.start, ra.rate) == (
                rb.source,
                rb.dest,
                rb.start,
                rb.rate,
            )

    def test_seasonality_biases_starts(self):
        topo = sub_b4()
        # All mass on slot 3.
        weights = [0.0] * 12
        weights[3] = 1.0
        workload = generate_structured_workload(
            topo, 50, slot_weights=weights, rng=1
        )
        assert all(req.start == 3 for req in workload)

    def test_gravity_biases_pairs(self):
        topo = sub_b4()
        masses = {dc: 0.01 for dc in topo.datacenters}
        masses["DC1"] = 100.0
        masses["DC2"] = 100.0
        pair_weights = gravity_pair_weights(topo, masses)
        workload = generate_structured_workload(
            topo, 60, pair_weights=pair_weights, rng=2
        )
        dominant = sum(
            1
            for req in workload
            if {req.source, req.dest} == {"DC1", "DC2"}
        )
        assert dominant >= 50, "heavy sites dominate the pair draw"

    def test_retail_profile_usable(self):
        topo = sub_b4()
        workload = generate_structured_workload(
            topo, 120, slot_weights=SEASONAL_RETAIL, rng=3
        )
        starts = np.array([req.start for req in workload])
        q4 = np.mean(starts >= 9)
        q1 = np.mean(starts <= 2)
        assert q4 > q1, "Q4-heavy profile shifts arrivals late"

    def test_validation(self):
        topo = sub_b4()
        with pytest.raises(WorkloadError):
            generate_structured_workload(topo, -1)
        with pytest.raises(WorkloadError):
            generate_structured_workload(topo, 5, slot_weights=[1.0] * 5)
        with pytest.raises(WorkloadError):
            generate_structured_workload(topo, 5, slot_weights=[0.0] * 12)

    def test_max_duration(self):
        topo = sub_b4()
        workload = generate_structured_workload(topo, 40, max_duration=2, rng=4)
        assert all(req.duration <= 2 for req in workload)

    def test_end_to_end_with_metis(self):
        from repro.core import Metis, SPMInstance

        topo = sub_b4()
        workload = generate_structured_workload(
            topo, 30, slot_weights=SEASONAL_RETAIL, rng=6
        )
        instance = SPMInstance.build(topo, workload)
        outcome = Metis(theta=3, maa_rounds=1).solve(instance, rng=0)
        assert outcome.best.profit >= 0.0
