"""Tests for repro.lp.model — construction and compilation."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.lp.model import Model


class TestModelConstruction:
    def test_duplicate_names_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError, match="duplicate"):
            m.add_var("x")

    def test_add_binary(self):
        m = Model()
        b = m.add_binary("b")
        assert b.is_integer
        assert (b.lower, b.upper) == (0.0, 1.0)

    def test_foreign_variable_rejected_in_constraint(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError, match="does not belong"):
            m2.add_constr(x <= 1)

    def test_foreign_variable_rejected_in_objective(self):
        m1, m2 = Model("a"), Model("b")
        x = m1.add_var("x")
        with pytest.raises(ModelError):
            m2.set_objective(x + 0, maximize=True)

    def test_non_constraint_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ModelError, match="expected Constraint"):
            m.add_constr(True)  # type: ignore[arg-type]

    def test_has_integer_vars(self):
        m = Model()
        m.add_var("x")
        assert not m.has_integer_vars
        m.add_binary("b")
        assert m.has_integer_vars


class TestCompilation:
    def test_empty_model_rejected(self):
        with pytest.raises(ModelError, match="no variables"):
            Model().compile()

    def test_senses_map_to_row_bounds(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(x <= 4)
        m.add_constr(x >= 1)
        m.add_constr(x == 2)
        m.set_objective(x + 0, maximize=False)
        compiled = m.compile()
        assert compiled.row_upper[0] == 4 and compiled.row_lower[0] == -np.inf
        assert compiled.row_lower[1] == 1 and compiled.row_upper[1] == np.inf
        assert compiled.row_lower[2] == compiled.row_upper[2] == 2

    def test_maximization_negates_objective(self):
        m = Model()
        x = m.add_var("x", 0, 1)
        m.set_objective(3 * x, maximize=True)
        compiled = m.compile()
        assert compiled.c[0] == -3.0
        assert compiled.sign == -1.0

    def test_relax_integrality(self):
        m = Model()
        m.add_binary("b")
        m.set_objective(m.variables[0] + 0, maximize=True)
        assert m.compile().integrality[0] == 1
        assert m.compile(relax_integrality=True).integrality[0] == 0

    def test_sparse_matrix_contents(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(2 * x + 3 * y <= 6)
        m.set_objective(x + y, maximize=False)
        a = m.compile().a_matrix.toarray()
        assert a.tolist() == [[2.0, 3.0]]


class TestFeasibilityHelpers:
    def test_check_feasible(self):
        m = Model()
        x = m.add_var("x", 0, 2)
        m.add_constr(x >= 1)
        assert m.check_feasible({x: 1.5})
        assert not m.check_feasible({x: 0.5}), "constraint violated"
        assert not m.check_feasible({x: 3.0}), "bound violated"

    def test_objective_value_in_original_sense(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(2 * x + 1, maximize=True)
        assert m.objective_value({x: 2.0}) == 5.0

    def test_repr(self):
        m = Model("demo")
        x = m.add_var("x")
        m.add_constr(x <= 1)
        m.set_objective(x + 0, maximize=True)
        assert "demo" in repr(m) and "max" in repr(m)
