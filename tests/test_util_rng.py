"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=8)
        b = ensure_rng(42).integers(0, 1_000_000, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=8)
        b = ensure_rng(2).integers(0, 1_000_000, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_deterministic_from_seed(self):
        first = [g.integers(0, 10**6) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 10**6) for g in spawn_rngs(9, 3)]
        assert first == second

    def test_children_mutually_independent_streams(self):
        children = spawn_rngs(9, 2)
        a = children[0].integers(0, 10**6, size=16)
        b = children[1].integers(0, 10**6, size=16)
        assert not np.array_equal(a, b)
