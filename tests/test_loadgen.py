"""Load-generator tests: arrival pacing, synthesis, end-to-end replay."""

from __future__ import annotations

import asyncio
import itertools

import pytest

from repro.exceptions import GatewayError
from repro.gateway import GatewayConfig, GatewayServer
from repro.loadgen import (
    BurstArrivals,
    ConstantArrivals,
    LoadGenerator,
    LoadReport,
    PoissonArrivals,
    make_arrivals,
    probe_gateway,
    synthesize_bids,
)


class TestArrivalProcesses:
    def test_constant_is_perfectly_paced(self):
        gaps = list(itertools.islice(ConstantArrivals(200.0).gaps(), 10))
        assert gaps == [pytest.approx(0.005)] * 10

    def test_poisson_mean_rate_and_determinism(self):
        process = PoissonArrivals(1000.0, seed=7)
        gaps = list(itertools.islice(process.gaps(), 10_000))
        assert sum(gaps) / len(gaps) == pytest.approx(1e-3, rel=0.05)
        again = list(itertools.islice(PoissonArrivals(1000.0, seed=7).gaps(), 10_000))
        assert gaps == again
        different = list(
            itertools.islice(PoissonArrivals(1000.0, seed=8).gaps(), 10_000)
        )
        assert gaps != different

    def test_burst_preserves_the_mean_rate(self):
        process = BurstArrivals(100.0, period=1.0, duty=0.2)
        # One full period's worth of gaps sums to the period.
        per_burst = 100  # rate/duty * period*duty
        gaps = list(itertools.islice(process.gaps(), per_burst))
        assert sum(gaps) == pytest.approx(1.0)
        # The off-phase silence rides on the first gap only.
        assert gaps[0] > gaps[1]
        assert gaps[1:] == [pytest.approx(gaps[1])] * (per_burst - 1)

    def test_make_arrivals_dispatch(self):
        assert isinstance(make_arrivals("constant", 10.0), ConstantArrivals)
        assert isinstance(make_arrivals("poisson", 10.0, seed=3), PoissonArrivals)
        assert isinstance(make_arrivals("burst", 10.0, duty=0.5), BurstArrivals)
        with pytest.raises(ValueError, match="process"):
            make_arrivals("fractal", 10.0)

    def test_rates_validated(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError):
                ConstantArrivals(bad)
        with pytest.raises(ValueError):
            BurstArrivals(10.0, duty=0.0)
        with pytest.raises(ValueError):
            BurstArrivals(10.0, period=-1.0)


class TestSynthesizeBids:
    def test_ids_are_sequential_and_unique(self, sub_b4_topology):
        bids = list(synthesize_bids(sub_b4_topology, num_bids=1300, chunk=512))
        assert [b.request_id for b in bids] == list(range(1300))

    def test_deterministic_in_seed(self, sub_b4_topology):
        first = list(synthesize_bids(sub_b4_topology, num_bids=100, seed=5))
        second = list(synthesize_bids(sub_b4_topology, num_bids=100, seed=5))
        other = list(synthesize_bids(sub_b4_topology, num_bids=100, seed=6))
        assert first == second
        assert first != other

    def test_respects_workload_bounds(self, sub_b4_topology):
        nodes = set(sub_b4_topology.datacenters)
        for bid in synthesize_bids(sub_b4_topology, num_bids=64, num_slots=6):
            assert bid.source in nodes and bid.dest in nodes
            assert 0 <= bid.start <= bid.end < 6
            assert bid.rate > 0 and bid.value > 0

    def test_validation(self, sub_b4_topology):
        with pytest.raises(ValueError):
            list(synthesize_bids(sub_b4_topology, num_bids=-1))
        with pytest.raises(ValueError):
            list(synthesize_bids(sub_b4_topology, num_bids=1, chunk=0))


class TestLoadReport:
    def test_identity_and_merge(self):
        a = LoadReport(submitted=10, accepted=4, rejected=3, shed=2, errored=1)
        assert a.reconciles() and a.responded == 10
        b = LoadReport(submitted=5, accepted=2, lost=3)
        assert b.reconciles()
        a.merge(b)
        assert a.submitted == 15 and a.lost == 3
        assert a.reconciles()

    def test_violation_raises(self):
        broken = LoadReport(submitted=5, accepted=1)
        assert not broken.reconciles()
        with pytest.raises(GatewayError, match="submitted=5"):
            broken.assert_reconciled()

    def test_rate_and_dict(self):
        report = LoadReport(submitted=8, accepted=8, duration_seconds=2.0)
        assert report.decisions_per_sec == pytest.approx(4.0)
        payload = report.to_dict()
        assert payload["decisions_per_sec"] == pytest.approx(4.0)
        assert "p99_ms" in payload["latency"]


class TestLoadGeneratorLive:
    def test_replay_against_a_live_gateway_reconciles_exactly(self):
        async def scenario():
            config = GatewayConfig(
                topology="sub-b4",
                slots_per_cycle=4,
                slot_seconds=0.05,
                queue_capacity=8,
                time_limit=5.0,
            )
            server = GatewayServer(config)
            await server.start()
            host, port = server.address
            hello = await probe_gateway(host, port)
            topology = server.topology
            bids = list(
                synthesize_bids(
                    topology,
                    num_bids=120,
                    num_slots=int(hello["slots_per_cycle"]),
                    seed=3,
                )
            )
            generator = LoadGenerator(
                host, port, arrivals=ConstantArrivals(2000.0), connections=3
            )
            report = await generator.run(bids)
            await server.stop()
            return server, report

        server, report = asyncio.run(scenario())
        report.assert_reconciled()
        assert report.submitted == 120 and report.lost == 0
        assert report.connections == 3
        # Client-side and server-side ledgers agree exactly.
        counters = server.counters
        assert report.accepted == counters.accepted
        assert report.rejected == counters.rejected
        assert report.shed == counters.shed
        assert report.errored == counters.errored == 0
        # Overdriving an 8-deep queue at 2000/s must shed something.
        assert report.shed > 0
        assert report.latency.total == 120
        assert report.decisions_per_sec > 0

    def test_probe_rejects_a_non_gateway(self):
        async def scenario():
            async def not_a_gateway(reader, writer):
                writer.write(b'{"type": "decision"}\n')
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(not_a_gateway, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            with pytest.raises(GatewayError, match="hello"):
                await probe_gateway(host, port)
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())
