"""Tests for the service-layer components: clock, cache, ingest, telemetry, pool."""

import numpy as np
import pytest

from repro.core.instance import SPMInstance
from repro.exceptions import WorkloadError
from repro.service.cache import DecisionCache
from repro.service.clock import SimClock, Tick
from repro.service.ingest import AdmissionQueue, GeneratorSource, TraceSource
from repro.service.pool import SolverPool
from repro.service.telemetry import BatchRecord, TelemetryCollector
from repro.workload.generator import WorkloadConfig
from repro.workload.request import RequestSet

from tests.conftest import make_request


class TestSimClock:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimClock(0)
        with pytest.raises(ValueError):
            SimClock(12, window=0)
        with pytest.raises(ValueError):
            SimClock(12, num_cycles=0)

    def test_windows_partition_cycle(self):
        clock = SimClock(10, window=4)
        ticks = list(clock.windows(0))
        assert [(t.window_start, t.window_stop) for t in ticks] == [
            (0, 4), (4, 8), (8, 10),
        ]
        covered = [s for t in ticks for s in t.slots]
        assert covered == list(range(10))

    def test_ticks_roll_across_cycles(self):
        clock = SimClock(3, window=2, num_cycles=2)
        ticks = list(clock.ticks())
        assert [t.cycle for t in ticks] == [0, 0, 1, 1]
        assert clock.windows_per_cycle == 2
        assert clock.total_slots == 6

    def test_window_of(self):
        clock = SimClock(10, window=4)
        assert [clock.window_of(s) for s in (0, 3, 4, 9)] == [0, 0, 1, 2]
        with pytest.raises(ValueError):
            clock.window_of(10)

    def test_slot_by_slot_default(self):
        ticks = list(SimClock(5).windows(0))
        assert len(ticks) == 5
        assert all(t.window_stop - t.window_start == 1 for t in ticks)


@pytest.fixture
def tiny_instance(diamond):
    requests = RequestSet(
        [make_request(0, rate=0.3, value=1.0), make_request(1, rate=0.4, value=2.0)],
        num_slots=2,
    )
    return SPMInstance.build(diamond, requests, k_paths=2)


class TestDecisionCache:
    def test_roundtrip_and_counters(self, tiny_instance):
        cache = DecisionCache(maxsize=4)
        state = np.zeros((tiny_instance.num_edges, 2))
        charged = np.zeros(tiny_instance.num_edges)
        key = cache.make_key(tiny_instance, [0, 1], state, charged)
        assert cache.get(key) is None
        cache.put(key, [0, None])
        assert cache.get(key) == (0, None)
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_state_fingerprint_sensitivity(self, tiny_instance):
        state = np.zeros((tiny_instance.num_edges, 2))
        charged = np.zeros(tiny_instance.num_edges)
        base = DecisionCache.state_fingerprint(state, charged)
        state[0, 0] = 0.25
        assert DecisionCache.state_fingerprint(state, charged) != base
        state[0, 0] = 0.0
        charged[0] = 1.0
        assert DecisionCache.state_fingerprint(state, charged) != base

    def test_batch_signature_is_id_free(self, diamond):
        # Two requests identical except for their ids sign the same.
        a = RequestSet([make_request(5, rate=0.3, value=1.0)], num_slots=1)
        b = RequestSet([make_request(9, rate=0.3, value=1.0)], num_slots=1)
        inst_a = SPMInstance.build(diamond, a, k_paths=2)
        inst_b = SPMInstance.build(diamond, b, k_paths=2)
        assert DecisionCache.batch_signature(
            inst_a, [5]
        ) == DecisionCache.batch_signature(inst_b, [9])

    def test_lru_eviction(self):
        cache = DecisionCache(maxsize=2)
        cache.put((b"a", ()), [0])
        cache.put((b"b", ()), [1])
        assert cache.get((b"a", ())) is not None  # refresh a
        cache.put((b"c", ()), [2])  # evicts b
        assert (b"b", ()) not in cache
        assert (b"a", ()) in cache and (b"c", ()) in cache
        assert len(cache) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionCache(maxsize=0)


class TestAdmissionQueue:
    def test_fifo_drain(self):
        queue = AdmissionQueue()
        reqs = [make_request(i, start=0, end=0) for i in range(3)]
        for r in reqs:
            assert queue.offer(r)
        assert queue.drain(2) == reqs[:2]
        assert queue.drain() == reqs[2:]
        assert not queue

    def test_bounded_queue_sheds(self):
        queue = AdmissionQueue(capacity=2)
        reqs = [make_request(i, start=0, end=0) for i in range(4)]
        outcomes = [queue.offer(r) for r in reqs]
        assert outcomes == [True, True, False, False]
        assert queue.shed == 2
        assert len(queue) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue().drain(0)


class TestSources:
    def test_generator_source_deterministic_per_cycle(self, sub_b4_topology):
        config = WorkloadConfig(num_requests=10, num_slots=6)
        source = GeneratorSource(sub_b4_topology, config, seed=3)
        again = GeneratorSource(sub_b4_topology, config, seed=3)
        first = source.cycle(2)
        assert [r.value for r in first] == [r.value for r in again.cycle(2)]
        # Different cycles draw different workloads.
        assert [r.value for r in first] != [r.value for r in source.cycle(3)]

    def test_trace_source_repeat(self, diamond_requests):
        source = TraceSource(diamond_requests)
        assert source.cycle(0) is diamond_requests
        assert source.cycle(5) is diamond_requests

    def test_trace_source_once(self, diamond_requests):
        source = TraceSource(diamond_requests, repeat=False)
        assert len(source.cycle(0)) == len(diamond_requests)
        later = source.cycle(1)
        assert len(later) == 0
        assert later.num_slots == diamond_requests.num_slots

    def test_trace_source_idle_cycles_share_one_empty_set(self, diamond_requests):
        # Regression: repeat=False used to allocate a fresh RequestSet per
        # idle cycle; repeated idle cycles must return equal (and cached)
        # sets so long idle tails cost nothing.
        source = TraceSource(diamond_requests, repeat=False)
        first, second = source.cycle(1), source.cycle(2)
        assert first is second
        assert list(first) == list(second) == []
        assert first.num_slots == diamond_requests.num_slots

    def test_trace_source_from_jsonl(self, diamond_requests, tmp_path):
        from repro.workload.traces import save_trace_jsonl

        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(diamond_requests, diamond_requests.num_slots, path)
        source = TraceSource(path)
        assert [r.request_id for r in source.cycle(0)] == [0, 1, 2]

    def test_trace_source_rejects_junk(self):
        with pytest.raises(WorkloadError):
            TraceSource(42)


def _record(cycle=0, size=2, accepted=1, solver_seconds=0.01, cache_hit=False,
            revenue=1.5, incremental_cost=1.0, shed=0):
    return BatchRecord(
        cycle=cycle, window_start=0, size=size, accepted=accepted,
        declined=size - accepted, shed=shed, revenue=revenue,
        incremental_cost=incremental_cost, solver_seconds=solver_seconds,
        cache_hit=cache_hit,
    )


class TestTelemetry:
    def test_summary_math(self):
        collector = TelemetryCollector()
        collector.record_batch(_record(solver_seconds=0.01))
        collector.record_batch(_record(solver_seconds=0.03, cache_hit=True))
        collector.record_cycle(0, 1.0)
        collector.wall_seconds = 2.0
        summary = collector.summary()
        assert summary["decisions"] == 4
        assert summary["accepted"] == 2
        assert summary["cache_hit_rate"] == 0.5
        assert summary["decisions_per_sec"] == pytest.approx(2.0)
        assert summary["profit"] == 1.0
        assert summary["latency_max_ms"] == pytest.approx(30.0)
        assert summary["latency_p50_ms"] == pytest.approx(20.0)

    def test_empty_summary(self):
        summary = TelemetryCollector().summary()
        assert summary["decisions"] == 0
        assert summary["cache_hit_rate"] == 0.0
        assert summary["decisions_per_sec"] == 0.0

    def test_dump_json(self, tmp_path):
        import json

        collector = TelemetryCollector()
        collector.record_batch(_record())
        collector.record_cycle(0, 0.5)
        out = tmp_path / "telemetry.json"
        collector.dump_json(out)
        payload = json.loads(out.read_text())
        assert payload["summary"]["batches"] == 1
        assert payload["batches"][0]["size"] == 2

    def test_dump_json_is_atomic(self, tmp_path, monkeypatch):
        import json
        import os

        collector = TelemetryCollector()
        collector.record_batch(_record())
        out = tmp_path / "telemetry.json"
        collector.dump_json(out)
        before = out.read_text()

        # An interrupted dump must leave the previous file intact and no
        # temp litter: fail the final rename and check nothing changed.
        def exploding_replace(src, dst):
            raise KeyboardInterrupt("interrupted mid-dump")

        monkeypatch.setattr(os, "replace", exploding_replace)
        collector.record_batch(_record())
        with pytest.raises(KeyboardInterrupt):
            collector.dump_json(out)
        monkeypatch.undo()
        assert out.read_text() == before
        assert json.loads(before)["summary"]["batches"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["telemetry.json"]

    def test_summary_has_durability_counters(self):
        summary = TelemetryCollector().summary()
        assert summary["recovered_batches"] == 0
        assert summary["wal_bytes"] == 0
        assert summary["snapshot_seconds"] == 0.0
        assert summary["worker_restarts"] == 0


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"task {x} failed")


def _die_once(args):
    """Abruptly kill the worker on payload 2, exactly once (latched)."""
    import os

    x, latch = args
    if x == 2:
        try:
            fd = os.open(latch, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(1)
    return x * 10


def _always_die(x):
    import os

    os._exit(1)


class TestSolverPool:
    def test_map_preserves_order(self):
        with SolverPool(2, cache_size=0) as pool:
            assert pool.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_failure_propagates_and_cancels(self):
        with pytest.raises(RuntimeError, match="task 1 failed"):
            with SolverPool(2, cache_size=0) as pool:
                pool.map(_boom, [1, 2, 3])

    def test_dead_worker_restarts_instead_of_poisoning(self, tmp_path):
        latch = str(tmp_path / "die.latch")
        with SolverPool(2, cache_size=0) as pool:
            results = pool.map(_die_once, [(x, latch) for x in [1, 2, 3]])
            assert results == [10, 20, 30]
            assert pool.worker_restarts == 1

    def test_restart_budget_exhausts(self):
        from repro.exceptions import SolverError

        # Every retry dies again; the pool must give up after
        # max_restarts rather than loop forever.
        with pytest.raises(SolverError, match="max_restarts"):
            with SolverPool(2, cache_size=0, max_restarts=1) as pool:
                pool.map(_always_die, [1])

    def test_validation(self):
        with pytest.raises(ValueError):
            SolverPool(0)
        with pytest.raises(ValueError):
            SolverPool(1, max_restarts=-1)
