"""Tests for repro.lp.constraint."""

import pytest

from repro.exceptions import ModelError
from repro.lp.constraint import Constraint
from repro.lp.expr import LinExpr, Variable


class TestConstraint:
    def setup_method(self):
        self.x = Variable("x")
        self.y = Variable("y")

    def test_invalid_sense(self):
        with pytest.raises(ModelError):
            Constraint(LinExpr({self.x: 1.0}), "<")

    def test_non_expr_rejected(self):
        with pytest.raises(ModelError):
            Constraint("x <= 1", "<=")  # type: ignore[arg-type]

    def test_satisfaction_le(self):
        constr = self.x + self.y <= 3
        assert constr.is_satisfied({self.x: 1.0, self.y: 1.0})
        assert constr.is_satisfied({self.x: 3.0, self.y: 0.0})
        assert not constr.is_satisfied({self.x: 4.0, self.y: 0.0})

    def test_satisfaction_ge(self):
        constr = self.x >= 2
        assert constr.is_satisfied({self.x: 2.0})
        assert not constr.is_satisfied({self.x: 1.0})

    def test_satisfaction_eq_with_tolerance(self):
        constr = self.x == 1
        assert constr.is_satisfied({self.x: 1.0 + 1e-9})
        assert not constr.is_satisfied({self.x: 1.01})

    def test_violation_magnitude(self):
        constr = self.x <= 1
        assert constr.violation({self.x: 3.0}) == pytest.approx(2.0)
        assert constr.violation({self.x: 0.5}) == 0.0
        eq = self.x == 1
        assert eq.violation({self.x: 0.0}) == pytest.approx(1.0)

    def test_named(self):
        constr = Constraint(LinExpr({self.x: 1.0}), "<=", name="cap")
        assert "cap" in repr(constr)
